"""Concept-level matching: lifting element matches to summary matches.

"A common outcome was a strong match from the fields of one concept to the
fields of a corresponding concept in the other schema ... When this
occurred, we also recorded a concept-level match.  24 of these concept-level
matches were thus identified" (CIDR 2009, section 3.3).

Given two summaries and an element-level match result, the aggregate score
of concept pair (A, B) is the symmetrised mean-best-match of their member
elements' scores -- the same aggregation the structural voter uses for
containers, applied at the summary level.  Pairs clearing a threshold become
:class:`ConceptMatch` records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.match.engine import MatchResult
from repro.summarize.concepts import Concept, Summary

__all__ = ["ConceptMatch", "concept_match_matrix", "match_concepts"]


@dataclass(frozen=True)
class ConceptMatch:
    """A validated correspondence between two summary concepts."""

    source_concept_id: str
    target_concept_id: str
    score: float
    source_label: str = ""
    target_label: str = ""


def concept_match_matrix(
    source_summary: Summary,
    target_summary: Summary,
    result: MatchResult,
) -> tuple[list[Concept], list[Concept], np.ndarray]:
    """Aggregate element scores into a concepts x concepts matrix.

    Concepts with no elements inside the match grid score 0 against
    everything.  Returns (source_concepts, target_concepts, scores).
    """
    source_concepts = source_summary.concepts
    target_concepts = target_summary.concepts
    matrix = result.matrix
    source_index = {sid: i for i, sid in enumerate(matrix.source_ids)}
    target_index = {tid: j for j, tid in enumerate(matrix.target_ids)}

    source_members = [
        [source_index[eid] for eid in source_summary.elements_of(c.concept_id)
         if eid in source_index]
        for c in source_concepts
    ]
    target_members = [
        [target_index[eid] for eid in target_summary.elements_of(c.concept_id)
         if eid in target_index]
        for c in target_concepts
    ]

    scores = np.zeros((len(source_concepts), len(target_concepts)))
    raw = matrix.scores
    for row, source_ids in enumerate(source_members):
        if not source_ids:
            continue
        for col, target_ids in enumerate(target_members):
            if not target_ids:
                continue
            block = raw[np.ix_(source_ids, target_ids)]
            forward = block.max(axis=1).mean()
            backward = block.max(axis=0).mean()
            scores[row, col] = 0.5 * (forward + backward)
    return source_concepts, target_concepts, scores


def match_concepts(
    source_summary: Summary,
    target_summary: Summary,
    result: MatchResult,
    threshold: float = 0.10,
    one_to_one: bool = True,
) -> list[ConceptMatch]:
    """Concept-level matches above ``threshold``, best first.

    With ``one_to_one`` (the paper recorded a single label-to-label match
    per concept), a greedy best-first assignment enforces that each concept
    participates in at most one match.
    """
    source_concepts, target_concepts, scores = concept_match_matrix(
        source_summary, target_summary, result
    )
    order = np.dstack(np.unravel_index(np.argsort(-scores, axis=None), scores.shape))[0]
    matches: list[ConceptMatch] = []
    used_source: set[int] = set()
    used_target: set[int] = set()
    for row, col in order:
        score = float(scores[row, col])
        if score < threshold:
            break
        if one_to_one and (row in used_source or col in used_target):
            continue
        matches.append(
            ConceptMatch(
                source_concept_id=source_concepts[row].concept_id,
                target_concept_id=target_concepts[col].concept_id,
                score=score,
                source_label=source_concepts[row].label,
                target_label=target_concepts[col].label,
            )
        )
        used_source.add(row)
        used_target.add(col)
    return matches
