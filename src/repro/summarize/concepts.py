"""Concepts and summaries: the SUMMARIZE(S) operator's data model.

Lesson #1 (CIDR 2009, section 4.2): "industrial-scale schema matching
systems must also support summarization.  This operator would take a schema
S as its input and generate a simpler representation S' as its output.  The
operator must also generate a mapping that relates the elements of S to
those of S'."

Here S' is a :class:`Summary`: a flat list of :class:`Concept` labels (as the
paper's engineers used) plus the element->concept mapping, where each element
maps to **at most one** concept (also the paper's convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schema.schema import Schema

__all__ = ["Concept", "Summary"]


@dataclass(frozen=True)
class Concept:
    """A domain concept label ("Event", "Person") within one summary."""

    concept_id: str
    label: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.concept_id:
            raise ValueError("concept_id must be non-empty")
        if not self.label:
            raise ValueError(f"concept {self.concept_id!r} must have a label")


class Summary:
    """S' -- a set of concepts plus the S -> S' element mapping.

    The summary is bound to one schema; assignments must reference existing
    elements, and each element carries at most one concept label.
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._concepts: dict[str, Concept] = {}
        self._element_to_concept: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Concept management
    # ------------------------------------------------------------------
    def add_concept(self, label: str, description: str = "", concept_id: str | None = None) -> Concept:
        """Register a concept; ids derive from labels unless given."""
        derived = concept_id if concept_id is not None else label.lower().replace(" ", "_")
        if derived in self._concepts:
            raise ValueError(f"duplicate concept id {derived!r}")
        concept = Concept(concept_id=derived, label=label, description=description)
        self._concepts[derived] = concept
        return concept

    def concept(self, concept_id: str) -> Concept:
        try:
            return self._concepts[concept_id]
        except KeyError:
            raise KeyError(f"no concept {concept_id!r} in summary of {self.schema.name!r}") from None

    @property
    def concepts(self) -> list[Concept]:
        return list(self._concepts.values())

    def __len__(self) -> int:
        """Number of concepts (the paper's 140 / 51 counts)."""
        return len(self._concepts)

    def __contains__(self, concept_id: str) -> bool:
        return concept_id in self._concepts

    # ------------------------------------------------------------------
    # Element assignment
    # ------------------------------------------------------------------
    def assign(self, element_id: str, concept_id: str) -> None:
        """Label one element with one concept (reassignment overwrites)."""
        if element_id not in self.schema:
            raise KeyError(f"element {element_id!r} not in schema {self.schema.name!r}")
        if concept_id not in self._concepts:
            raise KeyError(f"concept {concept_id!r} not registered")
        self._element_to_concept[element_id] = concept_id

    def assign_subtree(self, root_id: str, concept_id: str) -> int:
        """Label a whole sub-tree; returns the number of elements labelled.

        This is how the engineers worked: "the 'All_Event_Vitals' table of SA
        consisted of attributes corresponding to a concept they labeled
        'Event'".
        """
        count = 0
        for element in self.schema.subtree(root_id):
            self.assign(element.element_id, concept_id)
            count += 1
        return count

    def concept_of(self, element_id: str) -> Concept | None:
        concept_id = self._element_to_concept.get(element_id)
        if concept_id is None:
            return None
        return self._concepts[concept_id]

    def elements_of(self, concept_id: str) -> list[str]:
        """All element ids labelled with ``concept_id`` (schema order)."""
        if concept_id not in self._concepts:
            raise KeyError(f"concept {concept_id!r} not registered")
        return [
            element.element_id
            for element in self.schema
            if self._element_to_concept.get(element.element_id) == concept_id
        ]

    def assigned_ids(self) -> set[str]:
        return set(self._element_to_concept)

    def unassigned_ids(self) -> set[str]:
        return {element.element_id for element in self.schema} - self.assigned_ids()

    def coverage(self) -> float:
        """Fraction of schema elements carrying a concept label."""
        if len(self.schema) == 0:
            return 0.0
        return len(self._element_to_concept) / len(self.schema)

    def concept_sizes(self) -> dict[str, int]:
        """Elements per concept (for reports and effort estimation)."""
        sizes = {concept_id: 0 for concept_id in self._concepts}
        for concept_id in self._element_to_concept.values():
            sizes[concept_id] += 1
        return sizes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Summary({self.schema.name!r}, concepts={len(self)}, "
            f"coverage={self.coverage():.0%})"
        )
