"""Manual summarization helpers: how the paper's engineers actually worked.

"Through inspection, they identified 140 schema elements corresponding to
useful abstract concepts in SA and 51 in SB" -- i.e. top-level containers
became concepts and their sub-trees inherited the label.  These helpers
mechanise that workflow so scripted "engineers" (and tests) can reproduce it.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.schema.element import SchemaElement
from repro.schema.schema import Schema
from repro.summarize.concepts import Summary
from repro.text.pipeline import LinguisticPipeline

__all__ = ["summarize_by_roots", "summarize_with_labels"]


def _default_labeler(element: SchemaElement) -> str:
    """Humanise a container name into a concept label.

    ``ALL_EVENT_VITALS`` -> ``All Event Vitals`` -- close to what an engineer
    would type, and stable for grouping.
    """
    pipeline = LinguisticPipeline(
        use_stemming=False, schema_stopwords=False, drop_digits=True
    )
    words = pipeline.terms(element.name)
    if not words:
        words = [element.name.lower()]
    return " ".join(word.capitalize() for word in words)


def summarize_by_roots(
    schema: Schema,
    labeler: Callable[[SchemaElement], str] | None = None,
    roots: Iterable[str] | None = None,
) -> Summary:
    """One concept per root container, sub-trees inherit the label.

    Parameters
    ----------
    labeler:
        Maps a root element to its concept label; defaults to a humanised
        version of the element name.
    roots:
        Restrict to these root element ids (defaults to all roots) -- the
        engineers only kept the "useful abstract" containers.
    """
    label_of = labeler if labeler is not None else _default_labeler
    summary = Summary(schema)
    chosen = (
        [schema.element(root_id) for root_id in roots]
        if roots is not None
        else schema.roots()
    )
    for root in chosen:
        label = label_of(root)
        concept_id = f"{root.element_id}#concept"
        summary.add_concept(label, description=root.documentation, concept_id=concept_id)
        summary.assign_subtree(root.element_id, concept_id)
    return summary


def summarize_with_labels(
    schema: Schema, assignments: dict[str, str]
) -> Summary:
    """Build a summary from explicit ``{root_element_id: label}`` decisions.

    Multiple roots may share a label (PERSON_MASTER and PERSON_ADDRESS both
    "Person"); the concept is created once and both sub-trees inherit it.
    """
    summary = Summary(schema)
    label_to_concept: dict[str, str] = {}
    for root_id, label in assignments.items():
        concept_id = label_to_concept.get(label)
        if concept_id is None:
            concept = summary.add_concept(label)
            concept_id = concept.concept_id
            label_to_concept[label] = concept_id
        summary.assign_subtree(root_id, concept_id)
    return summary
