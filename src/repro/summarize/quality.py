"""Summary quality: scoring a summarization against reference concepts.

Bench E13 measures how well automatic summarizers approximate the concepts
the (scripted) engineers produced.  Standard clustering-agreement measures
apply, treating concept assignments as a clustering of elements:

* coverage      -- fraction of elements the candidate labels at all;
* purity        -- majority-reference-concept mass of candidate concepts;
* inverse purity-- the symmetric counterpart (reference against candidate);
* pairwise F1   -- precision/recall over co-labelled element pairs.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations

from repro.summarize.concepts import Summary

__all__ = ["coverage", "purity", "inverse_purity", "pairwise_f1", "summary_agreement"]


def _assignments(summary: Summary) -> dict[str, str]:
    return {
        element_id: summary.concept_of(element_id).concept_id
        for element_id in summary.assigned_ids()
    }


def coverage(candidate: Summary) -> float:
    """Fraction of schema elements the candidate labels."""
    return candidate.coverage()


def purity(candidate: Summary, reference: Summary) -> float:
    """Mean majority-overlap of candidate concepts with reference concepts.

    For each candidate concept, the largest fraction of its elements that a
    single reference concept accounts for, weighted by concept size.  Only
    elements labelled by both summaries participate.
    """
    reference_of = _assignments(reference)
    total = 0
    agreeing = 0
    for concept in candidate.concepts:
        members = [
            element_id
            for element_id in candidate.elements_of(concept.concept_id)
            if element_id in reference_of
        ]
        if not members:
            continue
        counts = Counter(reference_of[element_id] for element_id in members)
        agreeing += counts.most_common(1)[0][1]
        total += len(members)
    if total == 0:
        return 0.0
    return agreeing / total


def inverse_purity(candidate: Summary, reference: Summary) -> float:
    """Purity with the roles swapped (does the candidate split concepts?)."""
    return purity(reference, candidate)


def pairwise_f1(candidate: Summary, reference: Summary) -> float:
    """F1 over element pairs co-labelled by each summary.

    A pair is positive in a summary when both elements carry the same
    concept.  Quadratic in concept sizes; intended for evaluation scale.
    """
    candidate_of = _assignments(candidate)
    reference_of = _assignments(reference)
    shared = sorted(set(candidate_of) & set(reference_of))
    true_positive = 0
    candidate_positive = 0
    reference_positive = 0
    for left, right in combinations(shared, 2):
        same_candidate = candidate_of[left] == candidate_of[right]
        same_reference = reference_of[left] == reference_of[right]
        candidate_positive += same_candidate
        reference_positive += same_reference
        true_positive += same_candidate and same_reference
    if candidate_positive == 0 or reference_positive == 0:
        return 0.0
    precision = true_positive / candidate_positive
    recall = true_positive / reference_positive
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def summary_agreement(candidate: Summary, reference: Summary) -> dict[str, float]:
    """All quality measures in one report dict."""
    return {
        "coverage": coverage(candidate),
        "purity": purity(candidate, reference),
        "inverse_purity": inverse_purity(candidate, reference),
        "pairwise_f1": pairwise_f1(candidate, reference),
        "n_concepts": float(len(candidate)),
        "n_reference_concepts": float(len(reference)),
    }
