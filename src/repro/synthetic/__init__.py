"""Synthetic workloads: the stand-ins for the paper's military schemata."""

from repro.synthetic.casestudy import (
    PAPER_MATCH_SECONDS,
    PAPER_SA_CONCEPTS,
    PAPER_SA_ELEMENTS,
    PAPER_SB_CONCEPTS,
    PAPER_SB_ELEMENTS,
    PAPER_SB_MATCHED_ELEMENTS,
    PAPER_SB_UNMATCHED_ELEMENTS,
    PAPER_SHARED_CONCEPTS,
    PAPER_SPREADSHEET_CONCEPT_ROWS,
    ExtendedStudy,
    case_study,
    case_study_spec,
    extended_study,
)
from repro.synthetic.chain import MappingChain, generate_mapping_chain
from repro.synthetic.corpus import (
    ClusteredCorpus,
    generate_clustered_corpus,
    generate_enterprise_corpus,
    generate_scaled_corpus,
)
from repro.synthetic.domain import ConceptSpec, DomainOntology, Entity, Facet, Qualifier
from repro.synthetic.instances import InstanceTable, generate_instances
from repro.synthetic.generator import (
    GeneratedSchema,
    PairSpec,
    SchemaPair,
    allocate,
    generate_pair,
    generate_schema,
)
from repro.synthetic.naming import NamingStyle, perturb_gloss, render_name

__all__ = [
    "ClusteredCorpus",
    "ConceptSpec",
    "DomainOntology",
    "Entity",
    "ExtendedStudy",
    "Facet",
    "GeneratedSchema",
    "InstanceTable",
    "MappingChain",
    "NamingStyle",
    "PAPER_MATCH_SECONDS",
    "PAPER_SA_CONCEPTS",
    "PAPER_SA_ELEMENTS",
    "PAPER_SB_CONCEPTS",
    "PAPER_SB_ELEMENTS",
    "PAPER_SB_MATCHED_ELEMENTS",
    "PAPER_SB_UNMATCHED_ELEMENTS",
    "PAPER_SHARED_CONCEPTS",
    "PAPER_SPREADSHEET_CONCEPT_ROWS",
    "PairSpec",
    "Qualifier",
    "SchemaPair",
    "allocate",
    "case_study",
    "case_study_spec",
    "extended_study",
    "generate_clustered_corpus",
    "generate_enterprise_corpus",
    "generate_instances",
    "generate_scaled_corpus",
    "generate_mapping_chain",
    "generate_pair",
    "generate_schema",
    "perturb_gloss",
    "render_name",
]
