"""The section-3 case study, regenerated with the paper's exact counts.

"Schema A (SA) is relational, contains 1378 elements ... Schema B (SB) is an
XML Schema, contains 784 elements" (3.1); "they identified 140 schema
elements corresponding to useful abstract concepts in SA and 51 in SB" and
"24 of these concept-level matches were thus identified" (3.3); "only 34% of
SB matched SA and 66% of SB (or 517 elements) did not" (3.4).

:func:`case_study` builds a synthetic pair satisfying every one of those
counts simultaneously (the derived ones are asserted, not hoped for):

============================  =======
SA elements                     1378
SA concept roots                 140
SB elements                      784
SB concept roots                  51
shared concepts                   24
SB elements matched              267   (34.06% of 784)
SB elements unmatched            517   (65.94%)
============================  =======

:func:`extended_study` adds the follow-on schemata SC..SF for the
comprehensive-vocabulary expansion ("They gave us four additional large
schemata", 3.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.synthetic.domain import DomainOntology
from repro.synthetic.generator import (
    GeneratedSchema,
    PairSpec,
    SchemaPair,
    allocate,
    facet_order,
    generate_pair,
    generate_schema,
)
from repro.synthetic.naming import NamingStyle

__all__ = [
    "PAPER_SA_ELEMENTS",
    "PAPER_SB_ELEMENTS",
    "PAPER_SA_CONCEPTS",
    "PAPER_SB_CONCEPTS",
    "PAPER_SHARED_CONCEPTS",
    "PAPER_SB_MATCHED_ELEMENTS",
    "PAPER_SB_UNMATCHED_ELEMENTS",
    "PAPER_MATCH_SECONDS",
    "PAPER_SPREADSHEET_CONCEPT_ROWS",
    "case_study_spec",
    "case_study",
    "extended_study",
    "ExtendedStudy",
]

# The paper's published numbers (section 3).
PAPER_SA_ELEMENTS = 1378
PAPER_SB_ELEMENTS = 784
PAPER_SA_CONCEPTS = 140
PAPER_SB_CONCEPTS = 51
PAPER_SHARED_CONCEPTS = 24
PAPER_SB_UNMATCHED_ELEMENTS = 517
PAPER_SB_MATCHED_ELEMENTS = PAPER_SB_ELEMENTS - PAPER_SB_UNMATCHED_ELEMENTS  # 267
PAPER_MATCH_SECONDS = 10.2
PAPER_SPREADSHEET_CONCEPT_ROWS = (
    PAPER_SA_CONCEPTS + PAPER_SB_CONCEPTS - PAPER_SHARED_CONCEPTS
)  # 167


def case_study_spec() -> PairSpec:
    """The PairSpec carrying the paper's counts."""
    return PairSpec(
        n_source_concepts=PAPER_SA_CONCEPTS,
        n_target_concepts=PAPER_SB_CONCEPTS,
        n_shared_concepts=PAPER_SHARED_CONCEPTS,
        source_elements=PAPER_SA_ELEMENTS,
        target_elements=PAPER_SB_ELEMENTS,
        matched_target_elements=PAPER_SB_MATCHED_ELEMENTS,
        source_style=NamingStyle.legacy_relational(),
        target_style=NamingStyle.xml_exchange(),
        source_name="SA",
        target_name="SB",
    )


@lru_cache(maxsize=4)
def case_study(seed: int = 2009) -> SchemaPair:
    """Build (and cache) the synthetic section-3 pair; counts are asserted."""
    pair = generate_pair(case_study_spec(), seed=seed)
    assert len(pair.source.schema) == PAPER_SA_ELEMENTS
    assert len(pair.target.schema) == PAPER_SB_ELEMENTS
    assert len(pair.source.schema.roots()) == PAPER_SA_CONCEPTS
    assert len(pair.target.schema.roots()) == PAPER_SB_CONCEPTS
    assert len(pair.shared_concepts) == PAPER_SHARED_CONCEPTS
    assert len(pair.matched_target_ids) == PAPER_SB_MATCHED_ELEMENTS
    assert len(pair.unmatched_target_ids) == PAPER_SB_UNMATCHED_ELEMENTS
    return pair


@dataclass
class ExtendedStudy:
    """The comprehensive-vocabulary expansion: SA plus SC, SD, SE, SF."""

    pair: SchemaPair
    family: dict[str, GeneratedSchema]       # name -> schema, includes "SA"

    @property
    def names(self) -> list[str]:
        return list(self.family)

    def schemata(self) -> list[GeneratedSchema]:
        return list(self.family.values())


_FAMILY_STYLES = {
    "SC": NamingStyle.legacy_relational(),
    "SD": NamingStyle.xml_exchange(),
    "SE": NamingStyle(case="lower_snake", synonym_probability=0.2,
                      abbreviate_probability=0.2, numeric_suffix_probability=0.05),
    "SF": NamingStyle(case="camel", synonym_probability=0.3,
                      abbreviate_probability=0.1, numeric_suffix_probability=0.0),
}
_FAMILY_KINDS = {"SC": "relational", "SD": "xml", "SE": "relational", "SF": "xml"}


@lru_cache(maxsize=2)
def extended_study(
    seed: int = 2009,
    concepts_from_sa: int = 30,
    family_core: int = 8,
    unique_per_schema: int = 10,
    children_per_concept: int = 6,
) -> ExtendedStudy:
    """Generate the {SA, SC, SD, SE, SF} family for the N-way study.

    Each additional schema draws ``concepts_from_sa`` concepts from SA's
    concept set (a different sample per schema), shares a ``family_core``
    common to all four new schemata (but absent from SA), and adds
    ``unique_per_schema`` concepts of its own -- producing a non-trivial
    population of the 2^5 - 1 partition cells.
    """
    ontology = DomainOntology()
    pair = case_study(seed)
    sa_concepts = sorted(pair.source.concept_keys)
    rng = random.Random(f"{seed}::family")

    used = set(sa_concepts) | set(pair.target.concept_keys)
    core = ontology.sample_concepts(family_core, rng, exclude=used)
    used |= set(core)

    family: dict[str, GeneratedSchema] = {"SA": pair.source}
    for name in ("SC", "SD", "SE", "SF"):
        from_sa = rng.sample(sa_concepts, concepts_from_sa)
        unique = ontology.sample_concepts(unique_per_schema, rng, exclude=used)
        used |= set(unique)
        keys = from_sa + core + unique
        capacities = [len(facet_order(ontology, key)) for key in keys]
        children = allocate(
            children_per_concept * len(keys), capacities, minimum=2
        )
        family[name] = generate_schema(
            name,
            keys,
            children,
            style=_FAMILY_STYLES[name],
            kind=_FAMILY_KINDS[name],
            seed=f"{seed}::{name}",
            ontology=ontology,
        )
    return ExtendedStudy(pair=pair, family=family)
