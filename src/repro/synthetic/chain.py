"""Mapping chains: N renderings of one conceptual schema, for network benches.

The mapping network's home scenario (paper section 5): an enterprise holds
many systems that are all views of the same conceptual model, and only
*adjacent* systems were ever matched -- the migration lineage S0 -> S1 ->
... -> S(N-1).  Answering S0 -> Sk then means composing along the chain.
:func:`generate_mapping_chain` builds that workload: every schema renders
the SAME concepts and facet prefixes (so any two chain members share full
element-level ground truth) under rotating naming styles and kinds, and
:meth:`MappingChain.truth_pairs` yields the ground-truth correspondences
for *any* pair -- adjacent (the stored mappings) or distant (what
composition must recover).  Bench E18 is the consumer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.synthetic.domain import DomainOntology
from repro.synthetic.generator import (
    GeneratedSchema,
    facet_order,
    generate_schema,
)
from repro.synthetic.naming import NamingStyle

__all__ = ["MappingChain", "generate_mapping_chain"]

_STYLE_ROTATION = (
    NamingStyle.legacy_relational(),
    NamingStyle.xml_exchange(),
    NamingStyle(case="lower_snake", synonym_probability=0.2, abbreviate_probability=0.25),
    NamingStyle(case="camel", synonym_probability=0.3, abbreviate_probability=0.1),
)
_KIND_ROTATION = ("relational", "xml", "relational", "xml")


@dataclass
class MappingChain:
    """Generated chain schemata plus element-level ground truth for any pair."""

    schemata: list[GeneratedSchema]
    concept_keys: list[str]

    @property
    def names(self) -> list[str]:
        return [generated.schema.name for generated in self.schemata]

    def __len__(self) -> int:
        return len(self.schemata)

    def truth_pairs(self, i: int, j: int) -> set[tuple[str, str]]:
        """Ground-truth (source element, target element) pairs schema i -> j.

        Every chain member renders the same (concept, facet) identities,
        so the truth for any pair -- adjacent or k hops apart -- is the
        identity-preserving bijection.
        """
        source = self.schemata[i]
        target = self.schemata[j]
        target_by_identity = {
            identity: element_id
            for element_id, identity in target.facet_of_element.items()
        }
        pairs: set[tuple[str, str]] = set()
        for element_id, identity in source.facet_of_element.items():
            target_id = target_by_identity.get(identity)
            if target_id is not None:
                pairs.add((element_id, target_id))
        return pairs


def generate_mapping_chain(
    n_schemata: int = 20,
    n_concepts: int = 5,
    children_per_concept: int = 5,
    seed: int = 2009,
    ontology: DomainOntology | None = None,
) -> MappingChain:
    """A chain of ``n_schemata`` renderings of one conceptual schema.

    Schema ``i`` is named ``N{i:02d}`` and takes the rotation's ``i % 4``-th
    naming style/kind, so adjacent chain members always differ in
    convention (the realistic lineage: relational legacy system, XML
    exchange format, snake_case warehouse, camelCase service).  All
    members share the same concept keys and the same facet *prefix* per
    concept, which is what makes :meth:`MappingChain.truth_pairs` total.
    """
    if n_schemata < 2:
        raise ValueError(f"a chain needs at least two schemata, got {n_schemata}")
    ontology = ontology if ontology is not None else DomainOntology()
    rng = random.Random(f"chain::{seed}")
    keys = ontology.sample_concepts(n_concepts, rng)
    children = [
        min(children_per_concept, len(facet_order(ontology, key))) for key in keys
    ]
    schemata: list[GeneratedSchema] = []
    for index in range(n_schemata):
        rotation = index % len(_STYLE_ROTATION)
        schemata.append(
            generate_schema(
                f"N{index:02d}",
                keys,
                children,
                style=_STYLE_ROTATION[rotation],
                kind=_KIND_ROTATION[rotation],
                seed=f"{seed}::chain::{index}",
                ontology=ontology,
            )
        )
    return MappingChain(schemata=schemata, concept_keys=list(keys))
