"""Repository corpora with planted structure, for clustering and search.

The paper's registry scenarios (section 2: "thousands of schemata" in the
DoD MDR; section 5: schema clustering and schema search) need a corpus whose
true structure is known.  :func:`generate_clustered_corpus` plants disjoint
concept *domains* (communities of interest) and emits several schemata per
domain; recovering the domains is the clustering task (E9), and ranking
same-domain schemata first for a query schema is the search task (E10).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.synthetic.domain import DomainOntology
from repro.synthetic.generator import (
    GeneratedSchema,
    allocate,
    facet_order,
    generate_schema,
)
from repro.synthetic.naming import NamingStyle

__all__ = [
    "ClusteredCorpus",
    "generate_clustered_corpus",
    "generate_enterprise_corpus",
]

_STYLE_ROTATION = (
    NamingStyle.legacy_relational(),
    NamingStyle.xml_exchange(),
    NamingStyle(case="lower_snake", synonym_probability=0.2, abbreviate_probability=0.25),
    NamingStyle(case="camel", synonym_probability=0.3, abbreviate_probability=0.1),
)
_KIND_ROTATION = ("relational", "xml", "relational", "xml")


@dataclass
class ClusteredCorpus:
    """Generated schemata plus the planted domain labels."""

    schemata: list[GeneratedSchema]
    domain_of: dict[str, int]                 # schema name -> planted domain index
    domain_concepts: list[list[str]]          # per-domain concept pools

    @property
    def names(self) -> list[str]:
        return [generated.schema.name for generated in self.schemata]

    def labels(self) -> list[int]:
        """Planted labels aligned with :attr:`schemata` order."""
        return [self.domain_of[generated.schema.name] for generated in self.schemata]

    def by_name(self, name: str) -> GeneratedSchema:
        for generated in self.schemata:
            if generated.schema.name == name:
                return generated
        raise KeyError(f"no schema named {name!r} in corpus")


def generate_clustered_corpus(
    n_domains: int = 4,
    schemata_per_domain: int = 6,
    concepts_per_domain: int = 12,
    concepts_per_schema: int = 8,
    noise_concepts: int = 1,
    children_per_concept: int = 6,
    seed: int = 2009,
    ontology: DomainOntology | None = None,
) -> ClusteredCorpus:
    """Plant ``n_domains`` disjoint concept pools and emit schemata over them.

    Each schema samples ``concepts_per_schema`` concepts from its domain's
    pool plus ``noise_concepts`` from other domains' pools (real registries
    are not perfectly separated), with rotating naming styles and kinds.
    """
    if concepts_per_schema > concepts_per_domain:
        raise ValueError("concepts_per_schema cannot exceed the domain pool size")
    ontology = ontology if ontology is not None else DomainOntology()
    rng = random.Random(f"corpus::{seed}")

    domain_concepts: list[list[str]] = []
    used: set[str] = set()
    for _ in range(n_domains):
        pool = ontology.sample_concepts(concepts_per_domain, rng, exclude=used)
        used |= set(pool)
        domain_concepts.append(pool)

    schemata: list[GeneratedSchema] = []
    domain_of: dict[str, int] = {}
    for domain_index in range(n_domains):
        for ordinal in range(schemata_per_domain):
            name = f"D{domain_index}S{ordinal}"
            keys = rng.sample(domain_concepts[domain_index], concepts_per_schema)
            for _ in range(noise_concepts):
                other_domain = rng.randrange(n_domains - 1)
                if other_domain >= domain_index:
                    other_domain += 1
                noise_key = rng.choice(domain_concepts[other_domain])
                if noise_key not in keys:
                    keys.append(noise_key)
            capacities = [len(facet_order(ontology, key)) for key in keys]
            children = allocate(
                children_per_concept * len(keys), capacities, minimum=2
            )
            rotation = (domain_index * schemata_per_domain + ordinal) % len(
                _STYLE_ROTATION
            )
            schemata.append(
                generate_schema(
                    name,
                    keys,
                    children,
                    style=_STYLE_ROTATION[rotation],
                    kind=_KIND_ROTATION[rotation],
                    seed=f"{seed}::{name}",
                    ontology=ontology,
                )
            )
            domain_of[name] = domain_index

    return ClusteredCorpus(
        schemata=schemata, domain_of=domain_of, domain_concepts=domain_concepts
    )


def generate_enterprise_corpus(
    n_schemata: int = 100,
    n_domains: int = 10,
    concepts_per_domain: int = 10,
    concepts_per_schema: int = 6,
    children_per_concept: int = 5,
    seed: int = 2009,
    ontology: DomainOntology | None = None,
) -> ClusteredCorpus:
    """A repository-scale corpus: ``n_schemata`` schemata over ``n_domains``.

    The paper's section-2 registry setting ("hundreds to thousands of
    schemata") sized for the E17 corpus-matching bench: domains stay
    disjoint concept pools (so same-domain schemata are the ground-truth
    relevant set for any query schema), schemata stay small enough that a
    hundred of them register, index, and match in seconds.  Domains are
    filled round-robin, so ``n_schemata`` need not divide evenly.
    """
    if n_schemata < n_domains:
        raise ValueError(
            f"need at least one schema per domain ({n_schemata} < {n_domains})"
        )
    per_domain = -(-n_schemata // n_domains)  # ceil
    corpus = generate_clustered_corpus(
        n_domains=n_domains,
        schemata_per_domain=per_domain,
        concepts_per_domain=concepts_per_domain,
        concepts_per_schema=concepts_per_schema,
        children_per_concept=children_per_concept,
        seed=seed,
        ontology=ontology,
    )
    if len(corpus.schemata) == n_schemata:
        return corpus
    # Trim the overshoot; the generation order means the last domain(s)
    # simply hold fewer schemata, and domain_of stays the ground truth.
    kept = corpus.schemata[:n_schemata]
    kept_names = {generated.schema.name for generated in kept}
    return ClusteredCorpus(
        schemata=kept,
        domain_of={
            name: domain
            for name, domain in corpus.domain_of.items()
            if name in kept_names
        },
        domain_concepts=corpus.domain_concepts,
    )
