"""Repository corpora with planted structure, for clustering and search.

The paper's registry scenarios (section 2: "thousands of schemata" in the
DoD MDR; section 5: schema clustering and schema search) need a corpus whose
true structure is known.  :func:`generate_clustered_corpus` plants disjoint
concept *domains* (communities of interest) and emits several schemata per
domain; recovering the domains is the clustering task (E9), and ranking
same-domain schemata first for a query schema is the search task (E10).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.schema.serialize import schema_from_dict, schema_to_dict
from repro.synthetic.domain import COMMON_FACETS, DomainOntology
from repro.synthetic.generator import (
    GeneratedSchema,
    allocate,
    facet_order,
    generate_schema,
)
from repro.synthetic.naming import NamingStyle
from repro.text.tokenize import split_identifier

__all__ = [
    "ClusteredCorpus",
    "generate_clustered_corpus",
    "generate_enterprise_corpus",
    "generate_scaled_corpus",
]

_STYLE_ROTATION = (
    NamingStyle.legacy_relational(),
    NamingStyle.xml_exchange(),
    NamingStyle(case="lower_snake", synonym_probability=0.2, abbreviate_probability=0.25),
    NamingStyle(case="camel", synonym_probability=0.3, abbreviate_probability=0.1),
)
_KIND_ROTATION = ("relational", "xml", "relational", "xml")


@dataclass
class ClusteredCorpus:
    """Generated schemata plus the planted domain labels."""

    schemata: list[GeneratedSchema]
    domain_of: dict[str, int]                 # schema name -> planted domain index
    domain_concepts: list[list[str]]          # per-domain concept pools

    @property
    def names(self) -> list[str]:
        return [generated.schema.name for generated in self.schemata]

    def labels(self) -> list[int]:
        """Planted labels aligned with :attr:`schemata` order."""
        return [self.domain_of[generated.schema.name] for generated in self.schemata]

    def by_name(self, name: str) -> GeneratedSchema:
        for generated in self.schemata:
            if generated.schema.name == name:
                return generated
        raise KeyError(f"no schema named {name!r} in corpus")


def generate_clustered_corpus(
    n_domains: int = 4,
    schemata_per_domain: int = 6,
    concepts_per_domain: int = 12,
    concepts_per_schema: int = 8,
    noise_concepts: int = 1,
    children_per_concept: int = 6,
    seed: int = 2009,
    ontology: DomainOntology | None = None,
) -> ClusteredCorpus:
    """Plant ``n_domains`` disjoint concept pools and emit schemata over them.

    Each schema samples ``concepts_per_schema`` concepts from its domain's
    pool plus ``noise_concepts`` from other domains' pools (real registries
    are not perfectly separated), with rotating naming styles and kinds.
    """
    if concepts_per_schema > concepts_per_domain:
        raise ValueError("concepts_per_schema cannot exceed the domain pool size")
    ontology = ontology if ontology is not None else DomainOntology()
    rng = random.Random(f"corpus::{seed}")

    domain_concepts: list[list[str]] = []
    used: set[str] = set()
    for _ in range(n_domains):
        pool = ontology.sample_concepts(concepts_per_domain, rng, exclude=used)
        used |= set(pool)
        domain_concepts.append(pool)

    schemata: list[GeneratedSchema] = []
    domain_of: dict[str, int] = {}
    for domain_index in range(n_domains):
        for ordinal in range(schemata_per_domain):
            name = f"D{domain_index}S{ordinal}"
            keys = rng.sample(domain_concepts[domain_index], concepts_per_schema)
            for _ in range(noise_concepts):
                other_domain = rng.randrange(n_domains - 1)
                if other_domain >= domain_index:
                    other_domain += 1
                noise_key = rng.choice(domain_concepts[other_domain])
                if noise_key not in keys:
                    keys.append(noise_key)
            capacities = [len(facet_order(ontology, key)) for key in keys]
            children = allocate(
                children_per_concept * len(keys), capacities, minimum=2
            )
            rotation = (domain_index * schemata_per_domain + ordinal) % len(
                _STYLE_ROTATION
            )
            schemata.append(
                generate_schema(
                    name,
                    keys,
                    children,
                    style=_STYLE_ROTATION[rotation],
                    kind=_KIND_ROTATION[rotation],
                    seed=f"{seed}::{name}",
                    ontology=ontology,
                )
            )
            domain_of[name] = domain_index

    return ClusteredCorpus(
        schemata=schemata, domain_of=domain_of, domain_concepts=domain_concepts
    )


def generate_enterprise_corpus(
    n_schemata: int = 100,
    n_domains: int = 10,
    concepts_per_domain: int = 10,
    concepts_per_schema: int = 6,
    children_per_concept: int = 5,
    seed: int = 2009,
    ontology: DomainOntology | None = None,
) -> ClusteredCorpus:
    """A repository-scale corpus: ``n_schemata`` schemata over ``n_domains``.

    The paper's section-2 registry setting ("hundreds to thousands of
    schemata") sized for the E17 corpus-matching bench: domains stay
    disjoint concept pools (so same-domain schemata are the ground-truth
    relevant set for any query schema), schemata stay small enough that a
    hundred of them register, index, and match in seconds.  Domains are
    filled round-robin, so ``n_schemata`` need not divide evenly.
    """
    if n_schemata < n_domains:
        raise ValueError(
            f"need at least one schema per domain ({n_schemata} < {n_domains})"
        )
    per_domain = -(-n_schemata // n_domains)  # ceil
    corpus = generate_clustered_corpus(
        n_domains=n_domains,
        schemata_per_domain=per_domain,
        concepts_per_domain=concepts_per_domain,
        concepts_per_schema=concepts_per_schema,
        children_per_concept=children_per_concept,
        seed=seed,
        ontology=ontology,
    )
    if len(corpus.schemata) == n_schemata:
        return corpus
    # Trim the overshoot; the generation order means the last domain(s)
    # simply hold fewer schemata, and domain_of stays the ground truth.
    kept = corpus.schemata[:n_schemata]
    kept_names = {generated.schema.name for generated in kept}
    return ClusteredCorpus(
        schemata=kept,
        domain_of={
            name: domain
            for name, domain in corpus.domain_of.items()
            if name in kept_names
        },
        domain_concepts=corpus.domain_concepts,
    )


#: Tokens every domain shares, dialect or not: the common bookkeeping
#: facets appear in (almost) every real schema, so their document
#: frequency approaches the corpus size -- exactly the low-idf long tail
#: retrieval pruning exists to skip.
_SHARED_VOCAB = frozenset(
    token.lower() for facet in COMMON_FACETS for token in facet.tokens
)


def _dialect_tag(domain_index: int) -> str:
    """A letters-only tag for a domain, e.g. ``dxa``, ``dxb``, ``dxba``.

    Fused onto lowercase tokens it survives the identifier splitter as
    ONE token (a lowercase run), which is what makes a dialected domain
    vocabulary disjoint from every other domain's.  The ``dx`` prefix
    keeps tags clear of real ontology vocabulary; letters only, because a
    digit would split the fused token back apart.
    """
    digits = []
    value = domain_index
    while True:
        digits.append(chr(ord("a") + value % 26))
        value //= 26
        if not value:
            break
    return "dx" + "".join(reversed(digits))


def _dialect_text(text: str, tag: str, joiner: str) -> str:
    tokens = [
        token.lower() if not token.isalpha() or token.lower() in _SHARED_VOCAB
        else tag + token.lower()
        for token in split_identifier(text)
    ]
    return joiner.join(tokens) if tokens else text


def _dialect_payload(payload: dict, name: str, tag: str) -> dict:
    """Re-voice one serialised schema into a domain dialect.

    Every alphabetic token of element names and documentation gets the
    domain tag fused on -- EXCEPT the common-facet vocabulary, which
    stays shared corpus-wide.  Element ids, structure, types, and the
    schema kind are untouched, so the dialected schema profiles and
    validates exactly like its base.
    """
    out = dict(payload)
    out["name"] = name
    if out.get("documentation"):
        out["documentation"] = _dialect_text(out["documentation"], tag, " ")
    elements = []
    for element in payload["elements"]:
        element = dict(element)
        element["name"] = _dialect_text(element["name"], tag, "_")
        if element.get("documentation"):
            element["documentation"] = _dialect_text(
                element["documentation"], tag, " "
            )
        elements.append(element)
    out["elements"] = elements
    return out


def generate_scaled_corpus(
    n_schemata: int,
    schemata_per_domain: int = 50,
    n_base_domains: int = 8,
    concepts_per_domain: int = 10,
    concepts_per_schema: int = 5,
    children_per_concept: int = 3,
    seed: int = 2009,
    ontology: DomainOntology | None = None,
) -> ClusteredCorpus:
    """A 10k-schema-scale corpus: many domains, constant domain size.

    The ontology holds a few hundred concept identities, so truly
    disjoint concept pools cap out near thirty domains --
    :func:`generate_enterprise_corpus` territory.  This generator scales
    past that with *dialects*: a small set of base domains is generated
    once, and each scaled domain re-voices one of them by fusing a
    domain tag onto every schema-specific token (common bookkeeping
    facets stay shared corpus-wide, see ``_SHARED_VOCAB``).  The result
    at any size:

    * each domain's vocabulary is disjoint from every other domain's,
      so a query schema's true candidate set is its own domain --
      constant at ``schemata_per_domain`` as ``n_schemata`` grows
      (``n_domains`` scales instead), which is what lets bench E21 hold
      p50 retrieval latency flat from 1k to 10k;
    * the shared facet tokens have document frequency ~= corpus size,
      the low-idf long tail that an unpruned scorer must scan in full;
    * ``domain_of`` stays exact ground truth (``D{domain}S{ordinal}``
      names, domain-major order), so clustering/search quality harnesses
      work unchanged.
    """
    if n_schemata < 1:
        raise ValueError(f"n_schemata must be >= 1, got {n_schemata}")
    if schemata_per_domain < 1:
        raise ValueError(
            f"schemata_per_domain must be >= 1, got {schemata_per_domain}"
        )
    if n_base_domains < 1:
        raise ValueError(f"n_base_domains must be >= 1, got {n_base_domains}")
    base = generate_clustered_corpus(
        n_domains=n_base_domains,
        schemata_per_domain=schemata_per_domain,
        concepts_per_domain=concepts_per_domain,
        concepts_per_schema=concepts_per_schema,
        children_per_concept=children_per_concept,
        seed=seed,
        ontology=ontology,
    )
    n_domains = -(-n_schemata // schemata_per_domain)  # ceil
    schemata: list[GeneratedSchema] = []
    domain_of: dict[str, int] = {}
    domain_concepts: list[list[str]] = []
    for domain_index in range(n_domains):
        base_domain = domain_index % n_base_domains
        domain_concepts.append(base.domain_concepts[base_domain])
        tag = _dialect_tag(domain_index)
        for ordinal in range(schemata_per_domain):
            if len(schemata) == n_schemata:
                break
            generated = base.schemata[base_domain * schemata_per_domain + ordinal]
            name = f"D{domain_index}S{ordinal}"
            payload = _dialect_payload(
                schema_to_dict(generated.schema), name, tag
            )
            schemata.append(
                GeneratedSchema(
                    schema=schema_from_dict(payload),
                    concept_of_root=generated.concept_of_root,
                    facet_of_element=generated.facet_of_element,
                )
            )
            domain_of[name] = domain_index
    return ClusteredCorpus(
        schemata=schemata, domain_of=domain_of, domain_concepts=domain_concepts
    )
