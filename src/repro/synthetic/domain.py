"""A military/enterprise domain ontology for synthetic schema generation.

The paper's customer schemata (SA, SB) are unavailable -- they were internal
military systems.  Per the reproduction's substitution rule, we generate
synthetic stand-ins from a domain ontology whose vocabulary matches the
paper's domain hints: "information about persons, vehicles, and military
units", concepts like "Event", elements like ``DATE_BEGIN_156`` and
``DATETIME_FIRST_INFO``, and an HMO example mentioning "blood test".

The ontology is three-layered:

* **entities** -- person, vehicle, unit, event ... each with entity-specific
  attribute *facets* (canonical token sequences + type + gloss);
* **qualifiers** -- master, address, status, history ... sub-aspects that
  combine with entities into concepts (``PERSON_ADDRESS``); each contributes
  its own facets;
* **common facets** -- identifiers, names, remarks, audit dates that appear
  everywhere.

A *concept* is an (entity, qualifier) combination; its facet universe is the
union of the three layers.  Generators sample concepts and facets from this
ontology and render them through differing naming conventions, producing
schema pairs with controlled, ground-truth-known overlap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["Facet", "Entity", "Qualifier", "ConceptSpec", "DomainOntology"]


@dataclass(frozen=True)
class Facet:
    """One attribute concept: canonical tokens, a type family, and a gloss.

    ``gloss`` may contain ``{entity}`` which is filled with the owning
    concept's entity name at generation time.
    """

    tokens: tuple[str, ...]
    type_family: str
    gloss: str

    def __post_init__(self) -> None:
        if not self.tokens:
            raise ValueError("facet needs at least one token")


def _facets(*rows: tuple[str, str, str]) -> tuple[Facet, ...]:
    return tuple(
        Facet(tuple(tokens.split()), type_family, gloss)
        for tokens, type_family, gloss in rows
    )


@dataclass(frozen=True)
class Entity:
    """A core domain entity with its specific facets."""

    name: str
    gloss: str
    facets: tuple[Facet, ...]


@dataclass(frozen=True)
class Qualifier:
    """A sub-aspect combinable with entities (``PERSON_ADDRESS`` etc.)."""

    name: str
    gloss: str
    facets: tuple[Facet, ...]


COMMON_FACETS: tuple[Facet, ...] = _facets(
    ("identifier", "identifier", "unique identifier assigned to the {entity} record"),
    ("name", "string", "name of the {entity}"),
    ("short name", "string", "abbreviated name of the {entity}"),
    ("description text", "string", "free text description of the {entity}"),
    ("remarks", "string", "additional remarks recorded about the {entity}"),
    ("category code", "string", "code categorizing the {entity}"),
    ("status code", "string", "code giving the current status of the {entity}"),
    ("priority level", "integer", "priority level assigned to the {entity}"),
    ("security classification", "string", "security classification of the {entity} record"),
    ("source system", "string", "system from which the {entity} record originated"),
    ("date created", "datetime", "date and time the {entity} record was created"),
    ("date updated", "datetime", "date and time the {entity} record was last updated"),
    ("date begin", "date", "date on which the {entity} became effective"),
    ("date end", "date", "date on which the {entity} ceased to be effective"),
    ("reporting organization", "string", "organization that reported the {entity}"),
    ("version number", "integer", "version number of the {entity} record"),
)

_ENTITY_ROWS: tuple[tuple[str, str, tuple[Facet, ...]], ...] = (
    ("person", "an individual person tracked by the system", _facets(
        ("family name", "string", "family name of the person"),
        ("given name", "string", "given name of the person"),
        ("middle name", "string", "middle name of the person"),
        ("birth date", "date", "date of birth of the person"),
        ("gender code", "string", "code for the gender of the person"),
        ("nationality code", "string", "code for the nationality of the person"),
        ("blood type", "string", "blood type of the person"),
        ("height", "decimal", "height of the person in centimeters"),
        ("weight", "decimal", "weight of the person in kilograms"),
        ("eye color", "string", "eye color of the person"),
        ("marital status", "string", "marital status of the person"),
        ("rank code", "string", "military rank code of the person"),
    )),
    ("vehicle", "a ground vehicle owned or observed", _facets(
        ("registration number", "identifier", "registration number of the vehicle"),
        ("make", "string", "manufacturer of the vehicle"),
        ("model", "string", "model designation of the vehicle"),
        ("model year", "integer", "model year of the vehicle"),
        ("color", "string", "exterior color of the vehicle"),
        ("fuel type", "string", "fuel type used by the vehicle"),
        ("engine number", "identifier", "engine serial number of the vehicle"),
        ("seating capacity", "integer", "seating capacity of the vehicle"),
        ("cargo capacity", "decimal", "cargo capacity of the vehicle in tons"),
        ("armor level", "string", "armor protection level of the vehicle"),
    )),
    ("unit", "a military unit or formation", _facets(
        ("unit identification code", "identifier", "unit identification code"),
        ("echelon code", "string", "echelon level of the unit"),
        ("branch code", "string", "service branch of the unit"),
        ("strength", "integer", "authorized personnel strength of the unit"),
        ("readiness level", "string", "readiness level of the unit"),
        ("parent unit", "identifier", "identifier of the parent unit"),
        ("home station", "string", "home station of the unit"),
        ("activation date", "date", "date the unit was activated"),
    )),
    ("event", "an operationally significant event", _facets(
        ("event type", "string", "type of the event"),
        ("date begin", "datetime", "date and time the event began"),
        ("date end", "datetime", "date and time the event ended"),
        ("severity code", "string", "severity code of the event"),
        ("casualty count", "integer", "number of casualties in the event"),
        ("cause code", "string", "code for the cause of the event"),
        ("verified indicator", "boolean", "whether the event has been verified"),
        ("related event", "identifier", "identifier of a related event"),
    )),
    ("location", "a geographic location", _facets(
        ("latitude", "decimal", "latitude of the location in decimal degrees"),
        ("longitude", "decimal", "longitude of the location in decimal degrees"),
        ("elevation", "decimal", "elevation of the location in meters"),
        ("country code", "string", "country code of the location"),
        ("region name", "string", "region containing the location"),
        ("grid reference", "string", "military grid reference of the location"),
        ("place name", "string", "common place name of the location"),
        ("terrain type", "string", "terrain classification at the location"),
    )),
    ("weapon", "a weapon system", _facets(
        ("serial number", "identifier", "serial number of the weapon"),
        ("caliber", "decimal", "caliber of the weapon in millimeters"),
        ("range", "decimal", "effective range of the weapon in meters"),
        ("ammunition type", "string", "ammunition type used by the weapon"),
        ("manufacturer", "string", "manufacturer of the weapon"),
        ("condition code", "string", "condition code of the weapon"),
        ("assigned person", "identifier", "person the weapon is assigned to"),
    )),
    ("aircraft", "a fixed or rotary wing aircraft", _facets(
        ("tail number", "identifier", "tail number of the aircraft"),
        ("airframe type", "string", "airframe type of the aircraft"),
        ("squadron", "string", "squadron operating the aircraft"),
        ("flight hours", "decimal", "total flight hours of the aircraft"),
        ("fuel capacity", "decimal", "fuel capacity of the aircraft in liters"),
        ("maximum altitude", "decimal", "service ceiling of the aircraft in meters"),
        ("crew size", "integer", "standard crew size of the aircraft"),
    )),
    ("vessel", "a naval vessel or watercraft", _facets(
        ("hull number", "identifier", "hull number of the vessel"),
        ("vessel class", "string", "class of the vessel"),
        ("displacement", "decimal", "displacement of the vessel in tons"),
        ("draft", "decimal", "draft of the vessel in meters"),
        ("home port", "string", "home port of the vessel"),
        ("flag country", "string", "flag country of the vessel"),
        ("crew complement", "integer", "crew complement of the vessel"),
    )),
    ("facility", "a fixed facility or installation", _facets(
        ("facility type", "string", "type of the facility"),
        ("capacity", "integer", "capacity of the facility"),
        ("operating status", "string", "operating status of the facility"),
        ("owner organization", "string", "organization that owns the facility"),
        ("construction date", "date", "date construction of the facility completed"),
        ("floor area", "decimal", "floor area of the facility in square meters"),
        ("power source", "string", "primary power source of the facility"),
    )),
    ("equipment", "a piece of equipment or materiel", _facets(
        ("serial number", "identifier", "serial number of the equipment item"),
        ("stock number", "identifier", "national stock number of the equipment"),
        ("condition code", "string", "condition code of the equipment"),
        ("acquisition cost", "decimal", "acquisition cost of the equipment"),
        ("warranty date", "date", "warranty expiration date of the equipment"),
        ("weight", "decimal", "weight of the equipment in kilograms"),
        ("custodian", "identifier", "custodian responsible for the equipment"),
    )),
    ("supply", "a supply item or consumable stock", _facets(
        ("stock number", "identifier", "stock number of the supply item"),
        ("quantity on hand", "integer", "quantity of the supply item on hand"),
        ("unit of issue", "string", "unit of issue for the supply item"),
        ("reorder point", "integer", "reorder point quantity for the supply item"),
        ("storage location", "string", "storage location of the supply item"),
        ("expiration date", "date", "expiration date of the supply item"),
        ("hazard class", "string", "hazardous material class of the supply item"),
    )),
    ("mission", "a planned or executed mission", _facets(
        ("mission type", "string", "type of the mission"),
        ("objective text", "string", "objective of the mission"),
        ("launch time", "datetime", "launch time of the mission"),
        ("recovery time", "datetime", "recovery time of the mission"),
        ("commander", "identifier", "commander responsible for the mission"),
        ("success indicator", "boolean", "whether the mission succeeded"),
        ("assigned unit", "identifier", "unit assigned to the mission"),
    )),
    ("message", "a transmitted message or communication", _facets(
        ("message type", "string", "type of the message"),
        ("transmission time", "datetime", "time the message was transmitted"),
        ("sender", "string", "sender of the message"),
        ("recipient", "string", "recipient of the message"),
        ("subject text", "string", "subject line of the message"),
        ("body text", "string", "body text of the message"),
        ("precedence code", "string", "precedence code of the message"),
    )),
    ("sensor", "a sensor or detection system", _facets(
        ("sensor type", "string", "type of the sensor"),
        ("detection range", "decimal", "detection range of the sensor in meters"),
        ("frequency band", "string", "frequency band of the sensor"),
        ("sweep rate", "decimal", "sweep rate of the sensor"),
        ("platform", "identifier", "platform carrying the sensor"),
        ("calibration date", "date", "last calibration date of the sensor"),
    )),
    ("target", "a designated target", _facets(
        ("target type", "string", "type of the target"),
        ("target number", "identifier", "assigned number of the target"),
        ("hardness code", "string", "hardness classification of the target"),
        ("collateral risk", "string", "collateral damage risk of the target"),
        ("engagement status", "string", "engagement status of the target"),
        ("assessed damage", "string", "assessed battle damage of the target"),
    )),
    ("route", "a movement route or corridor", _facets(
        ("route designator", "identifier", "designator of the route"),
        ("start point", "string", "start point of the route"),
        ("end point", "string", "end point of the route"),
        ("length", "decimal", "length of the route in kilometers"),
        ("trafficability", "string", "trafficability classification of the route"),
        ("checkpoint count", "integer", "number of checkpoints along the route"),
    )),
    ("order", "a command directive or order", _facets(
        ("order type", "string", "type of the order"),
        ("issuing authority", "string", "authority that issued the order"),
        ("effective time", "datetime", "time the order becomes effective"),
        ("expiration time", "datetime", "time the order expires"),
        ("reference number", "identifier", "reference number of the order"),
        ("acknowledged indicator", "boolean", "whether the order was acknowledged"),
    )),
    ("report", "an operational report", _facets(
        ("report type", "string", "type of the report"),
        ("reporting period", "string", "period covered by the report"),
        ("submitted time", "datetime", "time the report was submitted"),
        ("author", "string", "author of the report"),
        ("summary text", "string", "summary text of the report"),
        ("confidence level", "string", "confidence level of the reported information"),
    )),
    ("organization", "an organization or agency", _facets(
        ("organization type", "string", "type of the organization"),
        ("parent organization", "identifier", "parent of the organization"),
        ("point of contact", "string", "point of contact for the organization"),
        ("phone number", "string", "phone number of the organization"),
        ("web address", "string", "web address of the organization"),
        ("budget amount", "decimal", "annual budget of the organization"),
    )),
    ("casualty", "a casualty or medical case", _facets(
        ("injury type", "string", "type of injury sustained"),
        ("triage category", "string", "triage category assigned"),
        ("evacuation priority", "string", "evacuation priority of the casualty"),
        ("treatment facility", "identifier", "facility treating the casualty"),
        ("incident time", "datetime", "time the casualty occurred"),
        ("disposition", "string", "final disposition of the casualty"),
        ("blood test result", "string", "result of the casualty's blood test"),
    )),
    ("detainee", "a detained person", _facets(
        ("internment number", "identifier", "internment serial number of the detainee"),
        ("capture date", "date", "date the detainee was captured"),
        ("capture location", "string", "location where the detainee was captured"),
        ("holding facility", "identifier", "facility holding the detainee"),
        ("legal status", "string", "legal status of the detainee"),
        ("release date", "date", "date the detainee was released"),
    )),
    ("incident", "a reportable incident", _facets(
        ("incident type", "string", "type of the incident"),
        ("occurrence time", "datetime", "time the incident occurred"),
        ("severity level", "string", "severity level of the incident"),
        ("responder", "string", "first responder to the incident"),
        ("resolution text", "string", "resolution of the incident"),
        ("followup required", "boolean", "whether follow up action is required"),
    )),
    ("exercise", "a training exercise", _facets(
        ("exercise name", "string", "name of the exercise"),
        ("exercise type", "string", "type of the exercise"),
        ("participant count", "integer", "number of participants in the exercise"),
        ("scenario text", "string", "scenario description of the exercise"),
        ("start date", "date", "start date of the exercise"),
        ("completion date", "date", "completion date of the exercise"),
    )),
    ("contract", "a procurement contract", _facets(
        ("contract number", "identifier", "number of the contract"),
        ("vendor name", "string", "vendor awarded the contract"),
        ("award amount", "decimal", "award amount of the contract"),
        ("award date", "date", "date the contract was awarded"),
        ("completion date", "date", "scheduled completion date of the contract"),
        ("contracting officer", "string", "contracting officer responsible"),
    )),
    ("communication", "a communications link or channel", _facets(
        ("channel designator", "identifier", "designator of the communications channel"),
        ("frequency", "decimal", "operating frequency in megahertz"),
        ("encryption type", "string", "encryption type of the channel"),
        ("bandwidth", "decimal", "bandwidth of the channel"),
        ("net control station", "string", "net control station of the channel"),
    )),
    ("fuel", "a fuel stock or issue", _facets(
        ("fuel grade", "string", "grade of the fuel"),
        ("quantity", "decimal", "quantity of fuel in liters"),
        ("storage tank", "identifier", "tank where the fuel is stored"),
        ("issue date", "date", "date the fuel was issued"),
        ("receiving unit", "identifier", "unit receiving the fuel"),
    )),
    ("observation", "an intelligence observation or sighting", _facets(
        ("observation time", "datetime", "time of the observation"),
        ("observer", "string", "observer who made the observation"),
        ("reliability code", "string", "reliability code of the observation"),
        ("observed activity", "string", "activity observed"),
        ("equipment sighted", "string", "equipment sighted in the observation"),
        ("count estimate", "integer", "estimated count of observed entities"),
    )),
    ("task", "an assigned task or activity", _facets(
        ("task type", "string", "type of the task"),
        ("assigned to", "identifier", "who the task is assigned to"),
        ("due time", "datetime", "time the task is due"),
        ("completion status", "string", "completion status of the task"),
        ("estimated effort", "decimal", "estimated effort for the task in hours"),
    )),
    ("alert", "a warning or alert notification", _facets(
        ("alert type", "string", "type of the alert"),
        ("issue time", "datetime", "time the alert was issued"),
        ("expiry time", "datetime", "time the alert expires"),
        ("affected area", "string", "area affected by the alert"),
        ("alert level", "string", "level of the alert"),
    )),
    ("boundary", "a control boundary or zone", _facets(
        ("boundary type", "string", "type of the boundary"),
        ("controlling unit", "identifier", "unit controlling the boundary"),
        ("effective date", "date", "date the boundary becomes effective"),
        ("geometry text", "string", "geometry of the boundary"),
        ("restriction level", "string", "restriction level inside the boundary"),
    )),
)

_QUALIFIER_ROWS: tuple[tuple[str, str, tuple[Facet, ...]], ...] = (
    ("master", "the authoritative master record", _facets(
        ("record owner", "string", "owner of the master {entity} record"),
        ("validation status", "string", "validation status of the {entity} record"),
        ("merge candidate", "boolean", "whether the {entity} record is a merge candidate"),
    )),
    ("address", "postal and physical addresses", _facets(
        ("street address", "string", "street address of the {entity}"),
        ("city name", "string", "city of the {entity} address"),
        ("postal code", "string", "postal code of the {entity} address"),
        ("address type", "string", "type of the {entity} address"),
        ("state province", "string", "state or province of the {entity} address"),
    )),
    ("contact", "communication contact details", _facets(
        ("phone number", "string", "contact phone number for the {entity}"),
        ("email address", "string", "contact email address for the {entity}"),
        ("contact type", "string", "type of contact information"),
        ("preferred indicator", "boolean", "whether this is the preferred contact"),
    )),
    ("status", "status tracking over time", _facets(
        ("status time", "datetime", "time the {entity} status was recorded"),
        ("previous status", "string", "previous status of the {entity}"),
        ("status reason", "string", "reason for the {entity} status change"),
        ("recorded by", "string", "who recorded the {entity} status"),
    )),
    ("history", "historical change records", _facets(
        ("change time", "datetime", "time the {entity} change occurred"),
        ("changed field", "string", "field of the {entity} that changed"),
        ("old value", "string", "value before the {entity} change"),
        ("new value", "string", "value after the {entity} change"),
    )),
    ("assignment", "assignments and attachments", _facets(
        ("assignment start", "date", "start date of the {entity} assignment"),
        ("assignment end", "date", "end date of the {entity} assignment"),
        ("assignment role", "string", "role in the {entity} assignment"),
        ("assigning authority", "string", "authority making the {entity} assignment"),
    )),
    ("schedule", "planned schedules", _facets(
        ("scheduled start", "datetime", "scheduled start for the {entity}"),
        ("scheduled end", "datetime", "scheduled end for the {entity}"),
        ("recurrence rule", "string", "recurrence rule of the {entity} schedule"),
        ("timezone", "string", "timezone of the {entity} schedule"),
    )),
    ("maintenance", "maintenance and repair records", _facets(
        ("maintenance type", "string", "type of maintenance performed on the {entity}"),
        ("maintenance date", "date", "date maintenance was performed on the {entity}"),
        ("labor hours", "decimal", "labor hours spent maintaining the {entity}"),
        ("parts cost", "decimal", "parts cost for the {entity} maintenance"),
        ("next service date", "date", "next scheduled service date for the {entity}"),
    )),
    ("inventory", "inventory and accountability", _facets(
        ("inventory date", "date", "date the {entity} inventory was taken"),
        ("counted quantity", "integer", "counted quantity of the {entity}"),
        ("variance", "integer", "inventory variance for the {entity}"),
        ("inventoried by", "string", "who performed the {entity} inventory"),
    )),
    ("qualification", "skills and certifications", _facets(
        ("qualification type", "string", "type of {entity} qualification"),
        ("qualification date", "date", "date the {entity} qualification was earned"),
        ("expiration date", "date", "expiration date of the {entity} qualification"),
        ("certifying authority", "string", "authority certifying the {entity} qualification"),
    )),
    ("medical", "medical and health records", _facets(
        ("examination date", "date", "date of the {entity} medical examination"),
        ("fitness category", "string", "medical fitness category of the {entity}"),
        ("immunization status", "string", "immunization status of the {entity}"),
        ("physician", "string", "physician responsible for the {entity}"),
        ("blood test", "string", "blood test result for the {entity}"),
    )),
    ("movement", "movement and transport records", _facets(
        ("departure time", "datetime", "departure time of the {entity} movement"),
        ("arrival time", "datetime", "arrival time of the {entity} movement"),
        ("origin", "string", "origin of the {entity} movement"),
        ("destination", "string", "destination of the {entity} movement"),
        ("transport mode", "string", "transport mode of the {entity} movement"),
    )),
)


@dataclass(frozen=True)
class ConceptSpec:
    """A sampled abstract concept: (entity, qualifier?) plus chosen facets."""

    entity: Entity
    qualifier: Qualifier | None
    facets: tuple[Facet, ...]

    @property
    def tokens(self) -> tuple[str, ...]:
        if self.qualifier is None:
            return (self.entity.name,)
        return (self.entity.name, self.qualifier.name)

    @property
    def key(self) -> str:
        """Stable identity: entity[.qualifier]."""
        return ".".join(self.tokens)

    @property
    def gloss(self) -> str:
        if self.qualifier is None:
            return self.entity.gloss
        return f"{self.qualifier.gloss} for {self.entity.gloss}"

    def fill(self, gloss: str) -> str:
        """Instantiate a facet gloss template for this concept's entity."""
        return gloss.replace("{entity}", self.entity.name)


class DomainOntology:
    """The sampling interface over entities, qualifiers and facets."""

    def __init__(self) -> None:
        self.entities = tuple(
            Entity(name, gloss, facets) for name, gloss, facets in _ENTITY_ROWS
        )
        self.qualifiers = tuple(
            Qualifier(name, gloss, facets) for name, gloss, facets in _QUALIFIER_ROWS
        )
        self.common_facets = COMMON_FACETS
        self._by_name = {entity.name: entity for entity in self.entities}

    def entity(self, name: str) -> Entity:
        return self._by_name[name]

    @property
    def n_combinations(self) -> int:
        """Distinct (entity, qualifier?) concept identities available."""
        return len(self.entities) * (len(self.qualifiers) + 1)

    def concept_keys(self) -> list[str]:
        """All concept identities, deterministic order."""
        keys = [entity.name for entity in self.entities]
        keys.extend(
            f"{entity.name}.{qualifier.name}"
            for entity in self.entities
            for qualifier in self.qualifiers
        )
        return keys

    def facet_universe(self, key: str) -> list[Facet]:
        """All facets available to a concept identity, deterministic order."""
        entity_name, _, qualifier_name = key.partition(".")
        entity = self._by_name[entity_name]
        facets = list(entity.facets)
        if qualifier_name:
            qualifier = next(
                q for q in self.qualifiers if q.name == qualifier_name
            )
            facets.extend(qualifier.facets)
        facets.extend(self.common_facets)
        # Deduplicate by token sequence, keeping the most specific first.
        seen: set[tuple[str, ...]] = set()
        unique: list[Facet] = []
        for facet in facets:
            if facet.tokens not in seen:
                seen.add(facet.tokens)
                unique.append(facet)
        return unique

    def sample_concepts(
        self, n: int, rng: random.Random, exclude: set[str] = frozenset()
    ) -> list[str]:
        """Sample ``n`` distinct concept identities not in ``exclude``."""
        available = [key for key in self.concept_keys() if key not in exclude]
        if n > len(available):
            raise ValueError(
                f"requested {n} concepts but only {len(available)} identities remain"
            )
        return rng.sample(available, n)
