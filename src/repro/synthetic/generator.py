"""Schema-pair generator with controlled, ground-truth-known overlap.

The core of the synthetic substrate: given target element counts, concept
counts and an overlap budget (all taken from the paper's section 3 numbers
by :mod:`repro.synthetic.casestudy`), emit two schemata that

* render the *same* abstract facets through *different* naming conventions
  on the shared concepts (these are the ground-truth correspondences), and
* fill the rest with concept- and facet-disjoint material (the ground-truth
  non-matches).

Facet order per concept is fixed by a concept-key-seeded shuffle, so any two
schemata built over the same ontology agree on which facets of a concept are
"first" -- which keeps multi-schema (N-way) ground truth consistent without
global coordination.

Two hard-mode knobs dial difficulty past the paper's baseline (both default
off, leaving the historical RNG stream untouched):

* ``PairSpec.decoys`` plants near-miss columns in the target: re-renderings
  of ground-truth facet tokens hosted under *wrong* (target-only) concept
  roots, so a matcher sees two lexically similar candidates of which only
  one is correct.  Planted ids are reported in
  :attr:`SchemaPair.decoy_target_ids`.
* ``PairSpec.abbrev_gradient`` adds naming drift on the shared concepts
  only: the source abbreviates harder, the target substitutes more
  synonyms, so exactly the elements that carry ground truth get harder to
  match lexically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.schema.datatypes import DataType
from repro.schema.element import ElementKind
from repro.schema.schema import Schema
from repro.summarize.concepts import Summary
from repro.synthetic.domain import ConceptSpec, DomainOntology, Facet
from repro.synthetic.naming import NamingStyle, perturb_gloss, render_name

__all__ = ["GeneratedSchema", "SchemaPair", "PairSpec", "generate_pair", "generate_schema", "allocate"]

_RELATIONAL_DECLARED: dict[str, str] = {
    "string": "VARCHAR2(80)",
    "integer": "NUMBER(10)",
    "decimal": "NUMBER(12,2)",
    "date": "DATE",
    "datetime": "TIMESTAMP",
    "time": "TIMESTAMP",
    "boolean": "CHAR(1)",
    "identifier": "NUMBER(10)",
}

_XSD_DECLARED: dict[str, str] = {
    "string": "xs:string",
    "integer": "xs:integer",
    "decimal": "xs:decimal",
    "date": "xs:date",
    "datetime": "xs:dateTime",
    "time": "xs:time",
    "boolean": "xs:boolean",
    "identifier": "xs:ID",
}

_DATA_TYPE: dict[str, DataType] = {
    "string": DataType.STRING,
    "integer": DataType.INTEGER,
    "decimal": DataType.DECIMAL,
    "date": DataType.DATE,
    "datetime": DataType.DATETIME,
    "time": DataType.TIME,
    "boolean": DataType.BOOLEAN,
    "identifier": DataType.IDENTIFIER,
}


def allocate(
    total: int,
    capacities: list[int],
    minimum: int = 0,
) -> list[int]:
    """Distribute ``total`` units over buckets with per-bucket capacities.

    Every bucket receives at least ``minimum`` (capacity permitting), the
    remainder is spread as evenly as the caps allow, deterministically.
    Raises ``ValueError`` when the caps cannot absorb the total or the
    minimums cannot be met.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if any(cap < 0 for cap in capacities):
        raise ValueError("capacities must be non-negative")
    if sum(capacities) < total:
        raise ValueError(
            f"cannot allocate {total} units into capacity {sum(capacities)}"
        )
    shares = [min(minimum, cap) for cap in capacities]
    if sum(shares) > total:
        raise ValueError(
            f"minimum allocation {sum(shares)} already exceeds total {total}"
        )
    remaining = total - sum(shares)
    open_buckets = [i for i in range(len(capacities)) if shares[i] < capacities[i]]
    while remaining > 0 and open_buckets:
        per_bucket = max(1, remaining // len(open_buckets))
        next_open: list[int] = []
        for index in open_buckets:
            if remaining <= 0:
                break
            room = capacities[index] - shares[index]
            grant = min(per_bucket, room, remaining)
            shares[index] += grant
            remaining -= grant
            if shares[index] < capacities[index]:
                next_open.append(index)
        open_buckets = next_open
    if remaining > 0:
        raise ValueError(f"allocation failed with {remaining} units left over")
    return shares


def facet_order(ontology: DomainOntology, concept_key: str) -> list[Facet]:
    """The globally agreed facet order for one concept.

    Seeded by the concept key alone, so every generator call over the same
    ontology sees the same order -- the basis of cross-schema ground truth.

    Entity/qualifier-specific facets are biased toward the front of the
    order (real tables are mostly specific columns with a few audit/common
    ones), so generated concepts are discriminable rather than dominated by
    the common facets every concept shares.
    """
    universe = ontology.facet_universe(concept_key)
    common_tokens = {facet.tokens for facet in ontology.common_facets}
    specific = [facet for facet in universe if facet.tokens not in common_tokens]
    common = [facet for facet in universe if facet.tokens in common_tokens]
    rng = random.Random(f"facets::{concept_key}")
    rng.shuffle(specific)
    rng.shuffle(common)
    ordered: list[Facet] = []
    while specific or common:
        take_specific = specific and (not common or rng.random() < 0.7)
        ordered.append(specific.pop() if take_specific else common.pop())
    return ordered


@dataclass
class GeneratedSchema:
    """A generated schema plus its generation-time ground truth."""

    schema: Schema
    concept_of_root: dict[str, str]          # root element id -> concept key
    facet_of_element: dict[str, tuple[str, tuple[str, ...]]]
    # element id -> (concept key, facet tokens); roots map to (key, ())

    @property
    def concept_keys(self) -> set[str]:
        return set(self.concept_of_root.values())

    def root_of_concept(self, concept_key: str) -> str:
        for root_id, key in self.concept_of_root.items():
            if key == concept_key:
                return root_id
        raise KeyError(f"concept {concept_key!r} not in schema {self.schema.name!r}")

    def truth_summary(self) -> Summary:
        """The ground-truth summary: one concept per generated root."""
        summary = Summary(self.schema)
        for root_id, key in self.concept_of_root.items():
            label = " ".join(part.capitalize() for part in key.split("."))
            concept_id = f"{key}#truth"
            if concept_id not in summary:
                summary.add_concept(label, concept_id=concept_id)
            summary.assign_subtree(root_id, concept_id)
        return summary


@dataclass
class SchemaPair:
    """Two generated schemata plus the element-level ground truth."""

    source: GeneratedSchema
    target: GeneratedSchema
    shared_concepts: list[str]
    truth_pairs: set[tuple[str, str]]        # (source element id, target element id)
    decoy_target_ids: set[str] = field(default_factory=set)
    # target elements planted as near-miss decoys (never in truth_pairs)

    @property
    def matched_target_ids(self) -> set[str]:
        return {target_id for _, target_id in self.truth_pairs}

    @property
    def matched_source_ids(self) -> set[str]:
        return {source_id for source_id, _ in self.truth_pairs}

    @property
    def unmatched_target_ids(self) -> set[str]:
        all_ids = {element.element_id for element in self.target.schema}
        return all_ids - self.matched_target_ids

    @property
    def unmatched_source_ids(self) -> set[str]:
        all_ids = {element.element_id for element in self.source.schema}
        return all_ids - self.matched_source_ids

    def overlap_fraction_target(self) -> float:
        """Fraction of target elements with a ground-truth match (paper: 34%)."""
        return len(self.matched_target_ids) / len(self.target.schema)


@dataclass(frozen=True)
class PairSpec:
    """Targets for :func:`generate_pair` (defaults are modest test sizes)."""

    n_source_concepts: int = 20
    n_target_concepts: int = 10
    n_shared_concepts: int = 5
    source_elements: int = 180
    target_elements: int = 100
    matched_target_elements: int = 40        # includes the shared roots
    source_style: NamingStyle = field(default_factory=NamingStyle.legacy_relational)
    target_style: NamingStyle = field(default_factory=NamingStyle.xml_exchange)
    source_kind: str = "relational"
    target_kind: str = "xml"
    source_doc_coverage: float = 0.9
    target_doc_coverage: float = 0.75
    source_name: str = "SA"
    target_name: str = "SB"
    decoys: int = 0                          # near-miss columns planted in the target
    abbrev_gradient: float = 0.0             # extra shared-concept naming drift

    def __post_init__(self) -> None:
        if self.n_shared_concepts > min(self.n_source_concepts, self.n_target_concepts):
            raise ValueError("shared concepts exceed a side's concept count")
        if self.matched_target_elements < self.n_shared_concepts:
            raise ValueError(
                "matched_target_elements must cover at least the shared roots"
            )
        if self.source_elements <= self.n_source_concepts:
            raise ValueError("source_elements must exceed source concept count")
        if self.target_elements <= self.n_target_concepts:
            raise ValueError("target_elements must exceed target concept count")
        if self.decoys < 0:
            raise ValueError(f"decoys must be >= 0, got {self.decoys}")
        if self.decoys > 0 and self.n_shared_concepts == 0:
            raise ValueError("decoys mimic matched facets; need shared concepts")
        if self.decoys > 0 and self.n_target_concepts == self.n_shared_concepts:
            raise ValueError(
                "decoys need a target-only concept to host them; "
                "raise n_target_concepts above n_shared_concepts"
            )
        if not 0.0 <= self.abbrev_gradient <= 1.0:
            raise ValueError(
                f"abbrev_gradient must be in [0, 1], got {self.abbrev_gradient}"
            )


def _kinds(schema_kind: str) -> tuple[ElementKind, ElementKind, dict[str, str]]:
    if schema_kind == "relational":
        return ElementKind.TABLE, ElementKind.COLUMN, _RELATIONAL_DECLARED
    if schema_kind == "xml":
        return ElementKind.COMPLEX_TYPE, ElementKind.ELEMENT, _XSD_DECLARED
    raise ValueError(f"unknown schema kind {schema_kind!r}")


def _build_schema(
    name: str,
    kind: str,
    concept_facets: list[tuple[ConceptSpec, list[Facet]]],
    style: NamingStyle,
    doc_coverage: float,
    rng: random.Random,
    style_of: dict[str, NamingStyle] | None = None,
) -> GeneratedSchema:
    """Build one side.  ``style_of`` maps concept keys to per-concept style
    overrides (the abbreviation-gradient hook); ``None`` keeps the build --
    and the RNG stream -- identical to the single-style behaviour."""
    root_kind, child_kind, declared_map = _kinds(kind)
    schema = Schema(name, kind=kind)
    concept_of_root: dict[str, str] = {}
    facet_of_element: dict[str, tuple[str, tuple[str, ...]]] = {}

    for spec, facets in concept_facets:
        concept_style = style if style_of is None else style_of.get(spec.key, style)
        root_name = render_name(spec.tokens, concept_style, rng)
        root_doc = (
            perturb_gloss(spec.gloss, concept_style, rng)
            if rng.random() < doc_coverage
            else ""
        )
        root = schema.add_root(
            root_name,
            kind=root_kind,
            documentation=root_doc,
            data_type=DataType.COMPLEX,
        )
        concept_of_root[root.element_id] = spec.key
        facet_of_element[root.element_id] = (spec.key, ())
        for facet in facets:
            child_name = render_name(facet.tokens, concept_style, rng)
            child_doc = (
                perturb_gloss(spec.fill(facet.gloss), concept_style, rng)
                if rng.random() < doc_coverage
                else ""
            )
            child = schema.add_child(
                root,
                child_name,
                kind=child_kind,
                documentation=child_doc,
                data_type=_DATA_TYPE[facet.type_family],
                declared_type=declared_map[facet.type_family],
            )
            facet_of_element[child.element_id] = (spec.key, facet.tokens)
    schema.validate()
    return GeneratedSchema(
        schema=schema,
        concept_of_root=concept_of_root,
        facet_of_element=facet_of_element,
    )


def generate_schema(
    name: str,
    concept_keys: list[str],
    children_per_concept: list[int],
    style: NamingStyle,
    kind: str,
    seed: int | str,
    ontology: DomainOntology | None = None,
    doc_coverage: float = 0.85,
) -> GeneratedSchema:
    """Generate one schema taking a facet *prefix* for each concept.

    Prefix selection means any two schemata sharing a concept automatically
    share its first ``min(n, m)`` facets -- the N-way ground truth.
    """
    if len(concept_keys) != len(children_per_concept):
        raise ValueError("concept_keys and children_per_concept must align")
    ontology = ontology if ontology is not None else DomainOntology()
    rng = random.Random(seed)
    concept_facets: list[tuple[ConceptSpec, list[Facet]]] = []
    for key, n_children in zip(concept_keys, children_per_concept):
        order = facet_order(ontology, key)
        if n_children > len(order):
            raise ValueError(
                f"concept {key!r} has only {len(order)} facets, need {n_children}"
            )
        entity_name, _, qualifier_name = key.partition(".")
        entity = ontology.entity(entity_name)
        qualifier = (
            next(q for q in ontology.qualifiers if q.name == qualifier_name)
            if qualifier_name
            else None
        )
        spec = ConceptSpec(entity=entity, qualifier=qualifier, facets=tuple(order))
        concept_facets.append((spec, order[:n_children]))
    return _build_schema(name, kind, concept_facets, style, doc_coverage, rng)


def generate_pair(
    spec: PairSpec, seed: int | str = 2009, ontology: DomainOntology | None = None
) -> SchemaPair:
    """Generate a schema pair hitting the spec's counts exactly.

    The allocation is deterministic given (spec, seed): shared concepts get
    their matched facets first, then each side receives disjoint extra
    facets, then concept-only material fills the remaining element budget.
    """
    ontology = ontology if ontology is not None else DomainOntology()
    rng = random.Random(seed)

    shared = ontology.sample_concepts(spec.n_shared_concepts, rng)
    source_only = ontology.sample_concepts(
        spec.n_source_concepts - spec.n_shared_concepts, rng, exclude=set(shared)
    )
    target_only = ontology.sample_concepts(
        spec.n_target_concepts - spec.n_shared_concepts,
        rng,
        exclude=set(shared) | set(source_only),
    )

    orders = {key: facet_order(ontology, key) for key in shared + source_only + target_only}

    # --- matched children over shared concepts ------------------------------
    matched_children_total = spec.matched_target_elements - spec.n_shared_concepts
    matched_caps = [max(len(orders[key]) - 8, 1) for key in shared]
    matched_counts = allocate(matched_children_total, matched_caps, minimum=1)

    # --- source children ------------------------------------------------------
    source_children_total = spec.source_elements - spec.n_source_concepts
    source_extra_total = source_children_total - matched_children_total
    # Shared concepts: extras capped to leave >= 2 facets for target extras.
    source_buckets = shared + source_only
    source_caps = [
        (len(orders[key]) - matched_counts[index] - 2)
        if index < len(shared)
        else len(orders[key])
        for index, key in enumerate(source_buckets)
    ]
    source_extras = allocate(
        source_extra_total, [max(cap, 0) for cap in source_caps], minimum=0
    )

    # --- target children ------------------------------------------------------
    target_children_total = spec.target_elements - spec.n_target_concepts
    target_extra_total = target_children_total - matched_children_total
    target_buckets = shared + target_only
    target_caps = [
        (len(orders[key]) - matched_counts[index] - source_extras[index])
        if index < len(shared)
        else len(orders[key])
        for index, key in enumerate(target_buckets)
    ]
    target_extras = allocate(
        target_extra_total, [max(cap, 0) for cap in target_caps], minimum=0
    )

    # --- carve facet slices ----------------------------------------------------
    def concept_spec(key: str) -> ConceptSpec:
        entity_name, _, qualifier_name = key.partition(".")
        entity = ontology.entity(entity_name)
        qualifier = (
            next(q for q in ontology.qualifiers if q.name == qualifier_name)
            if qualifier_name
            else None
        )
        return ConceptSpec(entity=entity, qualifier=qualifier, facets=tuple(orders[key]))

    source_concepts: list[tuple[ConceptSpec, list[Facet]]] = []
    target_concepts: list[tuple[ConceptSpec, list[Facet]]] = []
    matched_facets_of: dict[str, list[Facet]] = {}

    for index, key in enumerate(shared):
        order = orders[key]
        m = matched_counts[index]
        es = source_extras[index]
        et = target_extras[index]
        matched = order[:m]
        matched_facets_of[key] = matched
        source_concepts.append((concept_spec(key), matched + order[m : m + es]))
        target_concepts.append((concept_spec(key), matched + order[m + es : m + es + et]))

    for offset, key in enumerate(source_only):
        n = source_extras[len(shared) + offset]
        source_concepts.append((concept_spec(key), orders[key][:n]))
    for offset, key in enumerate(target_only):
        n = target_extras[len(shared) + offset]
        target_concepts.append((concept_spec(key), orders[key][:n]))

    # Shuffle concept order so shared concepts are not clustered at the top.
    rng.shuffle(source_concepts)
    rng.shuffle(target_concepts)

    # Abbreviation gradient: extra drift on exactly the shared concepts --
    # the source abbreviates harder, the target synonym-substitutes harder.
    # style_of stays None at gradient zero so the RNG stream (and therefore
    # every historical pair) is unchanged.
    source_style_of: dict[str, NamingStyle] | None = None
    target_style_of: dict[str, NamingStyle] | None = None
    if spec.abbrev_gradient > 0.0:
        gradient = spec.abbrev_gradient
        source_style_of = {
            key: replace(
                spec.source_style,
                abbreviate_probability=min(
                    1.0, spec.source_style.abbreviate_probability + gradient
                ),
            )
            for key in shared
        }
        target_style_of = {
            key: replace(
                spec.target_style,
                synonym_probability=min(
                    1.0, spec.target_style.synonym_probability + gradient
                ),
            )
            for key in shared
        }

    source = _build_schema(
        spec.source_name,
        spec.source_kind,
        source_concepts,
        spec.source_style,
        spec.source_doc_coverage,
        random.Random(f"{seed}::source"),
        style_of=source_style_of,
    )
    target = _build_schema(
        spec.target_name,
        spec.target_kind,
        target_concepts,
        spec.target_style,
        spec.target_doc_coverage,
        random.Random(f"{seed}::target"),
        style_of=target_style_of,
    )

    # --- decoys: near-miss columns under wrong target roots ---------------------
    decoy_target_ids: set[str] = set()
    if spec.decoys > 0:
        decoy_rng = random.Random(f"{seed}::decoys")
        _, child_kind, declared_map = _kinds(spec.target_kind)
        mimicable = [
            (key, facet)
            for key in shared
            for facet in matched_facets_of[key]
        ]
        for _ in range(spec.decoys):
            concept_key, facet = decoy_rng.choice(mimicable)
            host_key = decoy_rng.choice(target_only)
            name = render_name(facet.tokens, spec.target_style, decoy_rng)
            documentation = (
                perturb_gloss(
                    concept_spec(concept_key).fill(facet.gloss),
                    spec.target_style,
                    decoy_rng,
                )
                if decoy_rng.random() < spec.target_doc_coverage
                else ""
            )
            decoy = target.schema.add_child(
                target.root_of_concept(host_key),
                name,
                kind=child_kind,
                documentation=documentation,
                data_type=_DATA_TYPE[facet.type_family],
                declared_type=declared_map[facet.type_family],
            )
            # Identity under the *host* concept: never matches the source
            # side, so the truth loop below cannot pair a decoy.
            target.facet_of_element[decoy.element_id] = (host_key, facet.tokens)
            decoy_target_ids.add(decoy.element_id)
        target.schema.validate()

    # --- ground truth -----------------------------------------------------------
    truth_pairs: set[tuple[str, str]] = set()
    source_by_identity = {
        identity: element_id for element_id, identity in source.facet_of_element.items()
    }
    for element_id, identity in target.facet_of_element.items():
        key, tokens = identity
        if key not in matched_facets_of:
            continue
        if tokens == () or any(facet.tokens == tokens for facet in matched_facets_of[key]):
            source_id = source_by_identity.get(identity)
            if source_id is not None:
                truth_pairs.add((source_id, element_id))

    return SchemaPair(
        source=source,
        target=target,
        shared_concepts=list(shared),
        truth_pairs=truth_pairs,
        decoy_target_ids=decoy_target_ids,
    )
