"""Synthetic data instances for generated schemata.

Section 3.2: Harmony leans on documentation "instead of data instances
because ... schema documentation is easier to obtain than data (which may
not yet exist, or may be sensitive)".  To make that trade-off *measurable*
(bench/ablation: what would instances add when they are available?), this
module synthesises plausible column values for generated schemata.

Values are driven by the element's type family and name tokens, seeded per
element, so two elements generated from the same facet produce overlapping
value populations across schemata -- the signal an instance matcher feeds
on -- while unrelated elements of the same type overlap far less.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.matchers.instance import InstanceTable
from repro.schema.datatypes import DataType
from repro.schema.schema import Schema

__all__ = ["InstanceTable", "generate_instances"]

_WORD_POOL = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo".split()
    + "lima mike november oscar papa quebec romeo sierra tango uniform".split()
)

_CODE_ALPHABET = "ABCDEFGHKMNPRSTUWXYZ"


def _facet_rng(tokens: Iterable[str], data_type: DataType) -> random.Random:
    """Seeded by the element's *semantic identity*, not its rendered name.

    Elements sharing canonical tokens + type produce overlapping value
    populations across schemata; the naming convention noise is invisible
    at the instance level, exactly as in real systems.
    """
    key = "::".join(sorted(set(tokens))) + f"::{data_type.value}"
    return random.Random(f"instances::{key}")


def _draw_value(rng: random.Random, data_type: DataType) -> str:
    if data_type is DataType.INTEGER:
        return str(rng.randint(0, 5000))
    if data_type is DataType.DECIMAL:
        return f"{rng.uniform(0, 1000):.2f}"
    if data_type is DataType.BOOLEAN:
        return rng.choice(("Y", "N"))
    if data_type is DataType.DATE:
        return (
            f"{rng.randint(1990, 2008):04d}-{rng.randint(1, 12):02d}-"
            f"{rng.randint(1, 28):02d}"
        )
    if data_type is DataType.DATETIME:
        return (
            f"{rng.randint(1990, 2008):04d}-{rng.randint(1, 12):02d}-"
            f"{rng.randint(1, 28):02d}T{rng.randint(0, 23):02d}:"
            f"{rng.randint(0, 59):02d}:00"
        )
    if data_type is DataType.TIME:
        return f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}"
    if data_type is DataType.IDENTIFIER:
        return f"{rng.choice(_CODE_ALPHABET)}{rng.randint(10000, 99999)}"
    # STRING and UNKNOWN: short categorical phrases from a per-facet pool.
    return " ".join(rng.sample(_WORD_POOL, rng.randint(1, 2)))


def generate_instances(
    schema: Schema,
    rows: int = 40,
    tokens_of: dict[str, tuple[str, ...]] | None = None,
) -> InstanceTable:
    """Synthesize ``rows`` values for every leaf element of ``schema``.

    ``tokens_of`` optionally maps element ids to canonical facet tokens
    (available from :class:`~repro.synthetic.generator.GeneratedSchema`'s
    ``facet_of_element``); without it, the element's own lowercased name is
    the identity, which still aligns exactly-equal names across schemata.
    """
    if rows <= 0:
        raise ValueError(f"rows must be positive, got {rows}")
    values: dict[str, list[str]] = {}
    for element in schema:
        if schema.children(element.element_id):
            continue
        if tokens_of is not None and element.element_id in tokens_of:
            identity: tuple[str, ...] = tokens_of[element.element_id]
        else:
            identity = (element.name.lower(),)
        rng = _facet_rng(identity, element.data_type)
        # A bounded per-facet population makes overlap possible: the same
        # facet yields draws from the same population in every schema.
        population = [_draw_value(rng, element.data_type) for _ in range(rows * 3)]
        sampler = random.Random(f"sample::{schema.name}::{element.element_id}")
        values[element.element_id] = [
            sampler.choice(population) for _ in range(rows)
        ]
    return InstanceTable(schema, values)
