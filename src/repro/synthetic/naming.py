"""Naming conventions: rendering canonical tokens as realistic identifiers.

The paper's hard pair ``DATE_BEGIN_156`` vs ``DATETIME_FIRST_INFO`` shows what
independent development does to a shared concept: different word choices
(begin/first), different granularity words (date/datetime), filler tokens
(info), numeric suffixes, and different case conventions.  A
:class:`NamingStyle` models those transformations as sampled perturbations of
a facet's canonical tokens:

* synonym substitution (generator-side synonym table -- intentionally a
  superset of the matcher's lexicon, so the matcher does not get a free ride);
* abbreviation (quantity -> QTY) using the inverse of the matcher's table;
* token dropping and filler insertion;
* numeric suffixes (system-assigned column numbers);
* case rendering (UPPER_SNAKE, PascalCase, camelCase, lower_snake).

All randomness flows through the caller's ``random.Random``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.text.abbrev import DEFAULT_ABBREVIATIONS

__all__ = ["NamingStyle", "render_name", "perturb_gloss", "GENERATOR_SYNONYMS"]

# Canonical token -> surface alternatives.  Deliberately broader than
# repro.text.thesaurus.DEFAULT_SYNSETS: some substitutions (e.g. appellation)
# are outside the matcher's lexicon, keeping the matching task honest.
GENERATOR_SYNONYMS: dict[str, tuple[str, ...]] = {
    "begin": ("start", "first", "initial", "onset"),
    "end": ("stop", "last", "final", "cease"),
    "person": ("individual", "people", "human"),
    "organization": ("agency", "institution"),
    "vehicle": ("conveyance", "transport"),
    "vessel": ("ship", "boat"),
    "aircraft": ("plane", "airframe"),
    "event": ("occurrence", "incident", "activity"),
    "location": ("place", "position", "site"),
    "date": ("datetime", "day"),
    "time": ("datetime", "timestamp", "instant"),
    "information": ("info", "data", "detail"),
    "weapon": ("armament", "munition", "ordnance"),
    "mission": ("operation", "sortie", "tasking"),
    "report": ("record", "log", "account"),
    "status": ("state", "condition", "disposition"),
    "quantity": ("amount", "count", "total"),
    "name": ("designation", "title", "appellation"),
    "identifier": ("identification", "key", "designator"),
    "address": ("residence", "domicile"),
    "country": ("nation",),
    "group": ("team", "squad", "party"),
    "commander": ("leader", "chief"),
    "facility": ("installation", "structure"),
    "equipment": ("gear", "materiel"),
    "route": ("path", "course", "track"),
    "destination": ("target", "objective"),
    "origin": ("source",),
    "speed": ("velocity", "rate"),
    "height": ("altitude", "stature"),
    "weight": ("mass",),
    "category": ("class", "kind", "type"),
    "message": ("communication", "transmission"),
    "injury": ("wound", "trauma"),
    "physician": ("doctor", "medic"),
    "hospital": ("clinic", "infirmary"),
    "supply": ("provision", "stock"),
    "fuel": ("petroleum", "gasoline"),
    "capture": ("seizure", "apprehension"),
    "observation": ("sighting", "detection"),
    "priority": ("precedence", "urgency"),
    "schedule": ("timetable", "calendar"),
    "contract": ("agreement", "arrangement"),
    "cost": ("price", "expense"),
    "owner": ("holder", "custodian"),
    "registration": ("enrollment", "license"),
    "test": ("exam", "screening", "assay"),
    "result": ("outcome", "finding"),
    "remarks": ("comments", "notes"),
    "description": ("narrative", "summary"),
    "created": ("entered", "recorded"),
    "updated": ("modified", "revised"),
    "family": ("last", "surname"),
    "given": ("first", "forename"),
    "code": ("indicator", "flag"),
    "number": ("numeral", "no"),
}

_FILLER_TOKENS = ("info", "data", "text", "value", "detail", "entry")

# Inverse abbreviation map: canonical word -> short form, from the shared
# table (single-word expansions only); when several abbreviations expand to
# the same word the shortest wins, deterministically.
_REVERSE_ABBREVIATIONS: dict[str, str] = {}
for _abbr, _expansion in sorted(DEFAULT_ABBREVIATIONS.items()):
    if " " in _expansion:
        continue
    current = _REVERSE_ABBREVIATIONS.get(_expansion)
    if current is None or len(_abbr) < len(current):
        _REVERSE_ABBREVIATIONS[_expansion] = _abbr

_CASES = ("upper_snake", "lower_snake", "pascal", "camel")


@dataclass(frozen=True)
class NamingStyle:
    """One schema's naming convention, as perturbation probabilities."""

    case: str = "upper_snake"
    synonym_probability: float = 0.25
    abbreviate_probability: float = 0.3
    drop_probability: float = 0.05
    filler_probability: float = 0.08
    numeric_suffix_probability: float = 0.15

    def __post_init__(self) -> None:
        if self.case not in _CASES:
            raise ValueError(f"unknown case {self.case!r}; options: {_CASES}")
        for name in (
            "synonym_probability",
            "abbreviate_probability",
            "drop_probability",
            "filler_probability",
            "numeric_suffix_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")

    @classmethod
    def legacy_relational(cls) -> "NamingStyle":
        """Oracle-era UPPER_SNAKE with heavy abbreviation and suffixes (SA)."""
        return cls(
            case="upper_snake",
            synonym_probability=0.15,
            abbreviate_probability=0.4,
            drop_probability=0.04,
            filler_probability=0.05,
            numeric_suffix_probability=0.25,
        )

    @classmethod
    def xml_exchange(cls) -> "NamingStyle":
        """PascalCase XML exchange style with synonym drift (SB)."""
        return cls(
            case="pascal",
            synonym_probability=0.35,
            abbreviate_probability=0.08,
            drop_probability=0.05,
            filler_probability=0.12,
            numeric_suffix_probability=0.0,
        )

    @classmethod
    def clean(cls) -> "NamingStyle":
        """No perturbation at all (for tests and easy baselines)."""
        return cls(
            case="lower_snake",
            synonym_probability=0.0,
            abbreviate_probability=0.0,
            drop_probability=0.0,
            filler_probability=0.0,
            numeric_suffix_probability=0.0,
        )


def _render_case(tokens: list[str], case: str) -> str:
    if case == "upper_snake":
        return "_".join(token.upper() for token in tokens)
    if case == "lower_snake":
        return "_".join(token.lower() for token in tokens)
    if case == "pascal":
        return "".join(token.capitalize() for token in tokens)
    # camel
    head, *rest = tokens
    return head.lower() + "".join(token.capitalize() for token in rest)


def render_name(
    tokens: tuple[str, ...], style: NamingStyle, rng: random.Random
) -> str:
    """Render canonical tokens through a naming style.

    At least one token always survives dropping, so names are never empty.
    """
    working = list(tokens)

    # Synonym substitution (token-wise, independent draws).
    for index, token in enumerate(working):
        alternatives = GENERATOR_SYNONYMS.get(token)
        if alternatives and rng.random() < style.synonym_probability:
            working[index] = rng.choice(alternatives)

    # Token dropping (keep at least one).
    if len(working) > 1:
        working = [
            token
            for token in working
            if rng.random() >= style.drop_probability
        ] or [working[0]]

    # Abbreviation.
    for index, token in enumerate(working):
        short = _REVERSE_ABBREVIATIONS.get(token)
        if short and rng.random() < style.abbreviate_probability:
            working[index] = short

    # Filler insertion (one token, at the end -- DATETIME_FIRST_INFO style).
    if rng.random() < style.filler_probability:
        working.append(rng.choice(_FILLER_TOKENS))

    # Numeric suffix (system-assigned column numbers -- DATE_BEGIN_156).
    if rng.random() < style.numeric_suffix_probability:
        working.append(str(rng.randint(100, 999)))

    return _render_case(working, style.case)


def perturb_gloss(gloss: str, style: NamingStyle, rng: random.Random) -> str:
    """Paraphrase a documentation gloss in the same spirit as names.

    Word-level synonym substitution at the style's synonym probability, plus
    occasional tail truncation; glosses keep their leading words so they stay
    readable.
    """
    words = gloss.split()
    for index, word in enumerate(words):
        alternatives = GENERATOR_SYNONYMS.get(word)
        if alternatives and rng.random() < style.synonym_probability:
            words[index] = rng.choice(alternatives)
    if len(words) > 6 and rng.random() < 0.15:
        words = words[: rng.randint(5, len(words) - 1)]
    return " ".join(words)
