"""End-to-end observability: span trees, latency histograms, fleet stats.

The paper's managed-workflow argument, applied to this repo's own
serving stack: you cannot tune a match pipeline you cannot see.  Four
stdlib-only pieces:

* :mod:`repro.telemetry.tracer` -- per-request span trees with a no-op
  disabled path (one context-variable read per instrumentation site);
* :mod:`repro.telemetry.histogram` -- fixed-bucket latency histograms
  whose bucket counts merge exactly;
* :mod:`repro.telemetry.board` -- fixed-slot per-worker stats regions
  over one mmapped file, so any prefork worker reports fleet totals;
* :mod:`repro.telemetry.tracelog` -- the slow-request JSONL log and the
  ``repro trace`` summariser.
"""

from repro.telemetry.board import (
    BOARD_ENDPOINTS,
    BOARD_SPAN_KINDS,
    REGION_BYTES,
    FleetStats,
    StatsBoard,
    aggregate_snapshots,
)
from repro.telemetry.histogram import (
    BUCKET_BOUNDS_SECONDS,
    N_BUCKETS,
    LatencyHistogram,
    bucket_index,
    estimate_quantile,
    summarize_counts,
)
from repro.telemetry.tracelog import (
    TraceLogWriter,
    format_trace_summary,
    read_trace_log,
    summarize_trace_log,
)
from repro.telemetry.tracer import (
    SPAN_KINDS,
    Span,
    Trace,
    Tracer,
    activate_trace,
    current_trace,
    request_trace,
    span,
    stage_totals,
    validate_trace,
)

__all__ = [
    "BOARD_ENDPOINTS",
    "BOARD_SPAN_KINDS",
    "BUCKET_BOUNDS_SECONDS",
    "N_BUCKETS",
    "REGION_BYTES",
    "FleetStats",
    "LatencyHistogram",
    "SPAN_KINDS",
    "Span",
    "StatsBoard",
    "Trace",
    "TraceLogWriter",
    "Tracer",
    "activate_trace",
    "aggregate_snapshots",
    "bucket_index",
    "current_trace",
    "estimate_quantile",
    "format_trace_summary",
    "read_trace_log",
    "request_trace",
    "span",
    "stage_totals",
    "summarize_counts",
    "summarize_trace_log",
    "validate_trace",
]
