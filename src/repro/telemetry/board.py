"""The stats board: fixed-slot counters any process can read, sum, trust.

The prefork pool (:mod:`repro.server.procpool`) gives every worker its
own interpreter -- and, before this module, its own invisible counters:
``/metrics`` answered by whichever worker accepted the connection showed
one N-th of the fleet.  The cross-worker channel follows the same
post-fork discipline as the store and the caches: the parent creates ONE
stats file sized for the pool before forking, each worker mmaps its own
fixed-offset region after forking, and any worker answers ``/metrics``
by reading every region and summing.

The region layout is deliberately binary and fixed (little-endian u64
slots: per-endpoint request/error/cache counters plus latency bucket
counts, per-span-kind histograms, and gauge blocks for the cache /
cascade / corpus subsystems).  Fixed slots are what make the two halves
of the contract hold:

* a worker records one request with a handful of in-place 8-byte adds
  under its own lock -- no serialisation, no syscall past the page
  cache, cheap enough for the per-request path;
* fleet totals are *exact* sums: histogram bucket counts add, counters
  add, and the reader computes per-worker and fleet blocks from one
  pass over the same bytes, so ``totals == sum(workers)`` by
  construction (asserted under a multi-client hammer in bench E24).

:class:`StatsBoard` over a private ``bytearray`` is the threaded
server's metrics storage too -- one code path, with or without a fleet.
"""

from __future__ import annotations

import mmap
import os
import struct
import threading
from typing import Any, Iterable, Mapping, Sequence

from repro.telemetry.histogram import (
    N_BUCKETS,
    bucket_index,
    summarize_counts,
)
from repro.telemetry.tracer import SPAN_KINDS

__all__ = [
    "BOARD_ENDPOINTS",
    "BOARD_SPAN_KINDS",
    "REGION_BYTES",
    "FleetStats",
    "StatsBoard",
    "aggregate_snapshots",
]

#: Every endpoint the server records; unknown paths bucket under
#: ``(unknown)`` (the server already enforces that), so the set is closed
#: and each gets a fixed slot range.
BOARD_ENDPOINTS: tuple[str, ...] = (
    "/match",
    "/corpus-match",
    "/network-match",
    "/healthz",
    "/metrics",
    "/schemas",
    "(unknown)",
)

#: Span kinds with board slots; unlisted kinds fold into ``(other)``.
BOARD_SPAN_KINDS: tuple[str, ...] = SPAN_KINDS + ("(other)",)

_ENDPOINT_FIELDS = ("requests", "errors", "cache_hits", "cache_misses")
_ENDPOINT_SLOTS = len(_ENDPOINT_FIELDS) + 1 + N_BUCKETS  # + seconds_ns
_SPAN_SLOTS = 2 + N_BUCKETS  # count, seconds_ns, buckets

_CACHE_GAUGES = ("hits", "misses", "invalidations", "evictions", "errors", "entries")
_CASCADE_GAUGES = (
    "requests", "ambiguous", "escalated", "oracle_calls",
    "oracle_cache_hits", "truncated",
)
_CORPUS_GAUGES = ("initialized", "n_indexed")

_PID_SLOT = 0
_ENDPOINT_BASE = 1
_SPAN_BASE = _ENDPOINT_BASE + len(BOARD_ENDPOINTS) * _ENDPOINT_SLOTS
_GAUGE_BASE = _SPAN_BASE + len(BOARD_SPAN_KINDS) * _SPAN_SLOTS
_TOTAL_SLOTS = _GAUGE_BASE + len(_CACHE_GAUGES) + len(_CASCADE_GAUGES) + len(
    _CORPUS_GAUGES
)

#: One worker's region, page-aligned so regions never share a cache line.
REGION_BYTES = ((_TOTAL_SLOTS * 8 + 4095) // 4096) * 4096

_ENDPOINT_INDEX = {name: i for i, name in enumerate(BOARD_ENDPOINTS)}
_SPAN_INDEX = {name: i for i, name in enumerate(BOARD_SPAN_KINDS)}

_U64 = struct.Struct("<Q")


class StatsBoard:
    """Fixed-slot metrics over any writable buffer (bytearray or mmap)."""

    def __init__(self, buffer=None):
        self._buf = buffer if buffer is not None else bytearray(REGION_BYTES)
        if len(self._buf) < _TOTAL_SLOTS * 8:
            raise ValueError(
                f"stats buffer needs {_TOTAL_SLOTS * 8} bytes, got {len(self._buf)}"
            )
        self._lock = threading.Lock()

    # -- slot primitives (callers hold the lock) ------------------------
    def _get(self, slot: int) -> int:
        return _U64.unpack_from(self._buf, slot * 8)[0]

    def _set(self, slot: int, value: int) -> None:
        _U64.pack_into(self._buf, slot * 8, value & 0xFFFFFFFFFFFFFFFF)

    def _add(self, slot: int, delta: int) -> None:
        self._set(slot, self._get(slot) + delta)

    # -- writers --------------------------------------------------------
    def set_pid(self, pid: int) -> None:
        with self._lock:
            self._set(_PID_SLOT, pid)

    def record_endpoint(
        self,
        endpoint: str,
        seconds: float,
        error: bool = False,
        cache: str | None = None,
    ) -> None:
        base = _ENDPOINT_BASE + _ENDPOINT_INDEX.get(
            endpoint, _ENDPOINT_INDEX["(unknown)"]
        ) * _ENDPOINT_SLOTS
        with self._lock:
            self._add(base + 0, 1)
            if error:
                self._add(base + 1, 1)
            if cache == "hit":
                self._add(base + 2, 1)
            elif cache == "miss":
                self._add(base + 3, 1)
            self._add(base + 4, int(seconds * 1e9))
            self._add(base + 5 + bucket_index(seconds), 1)

    def record_span(self, kind: str, seconds: float) -> None:
        base = _SPAN_BASE + _SPAN_INDEX.get(kind, _SPAN_INDEX["(other)"]) * _SPAN_SLOTS
        with self._lock:
            self._add(base + 0, 1)
            self._add(base + 1, int(seconds * 1e9))
            self._add(base + 2 + bucket_index(seconds), 1)

    def record_trace(self, payload: Mapping[str, Any]) -> None:
        """Fold one serialised trace's spans into the per-kind histograms."""
        for record in payload.get("spans", ()):
            self.record_span(
                record.get("kind", "(other)"), float(record.get("seconds", 0.0))
            )

    def set_gauges(
        self,
        cache: Mapping[str, Any] | None = None,
        cascade: Mapping[str, Any] | None = None,
        corpus: Mapping[str, Any] | None = None,
    ) -> None:
        """Overwrite the gauge blocks with the subsystems' live values.

        Gauges are owned by live objects (cache stats, cascade counters,
        corpus index); the board mirrors them so OTHER workers can read
        and sum them.  Absolute writes, not deltas.
        """
        with self._lock:
            slot = _GAUGE_BASE
            for names, values in (
                (_CACHE_GAUGES, cache),
                (_CASCADE_GAUGES, cascade),
                (_CORPUS_GAUGES, corpus),
            ):
                for name in names:
                    if values is not None:
                        self._set(slot, int(values.get(name, 0) or 0))
                    slot += 1

    # -- reader ---------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Decode the whole region (endpoints with zero requests omitted)."""
        with self._lock:
            raw = bytes(self._buf[: _TOTAL_SLOTS * 8])
        slots = list(struct.unpack(f"<{_TOTAL_SLOTS}Q", raw))
        endpoints: dict[str, Any] = {}
        for name, position in _ENDPOINT_INDEX.items():
            base = _ENDPOINT_BASE + position * _ENDPOINT_SLOTS
            requests = slots[base]
            if requests == 0:
                continue
            seconds_total = slots[base + 4] / 1e9
            counts = slots[base + 5: base + 5 + N_BUCKETS]
            endpoints[name] = {
                "requests": requests,
                "errors": slots[base + 1],
                "cache_hits": slots[base + 2],
                "cache_misses": slots[base + 3],
                "seconds_total": seconds_total,
                "latency": summarize_counts(counts, seconds_total),
            }
        spans: dict[str, Any] = {}
        for name, position in _SPAN_INDEX.items():
            base = _SPAN_BASE + position * _SPAN_SLOTS
            count = slots[base]
            if count == 0:
                continue
            seconds_total = slots[base + 1] / 1e9
            counts = slots[base + 2: base + 2 + N_BUCKETS]
            spans[name] = summarize_counts(counts, seconds_total)
        slot = _GAUGE_BASE
        gauges: dict[str, dict[str, int]] = {}
        for block, names in (
            ("cache", _CACHE_GAUGES),
            ("cascade", _CASCADE_GAUGES),
            ("corpus", _CORPUS_GAUGES),
        ):
            gauges[block] = {
                name: slots[slot + offset] for offset, name in enumerate(names)
            }
            slot += len(names)
        return {
            "pid": slots[_PID_SLOT],
            "endpoints": dict(sorted(endpoints.items())),
            "spans": dict(sorted(spans.items())),
            **gauges,
        }


def _sum_summaries(summaries: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    counts = [0] * N_BUCKETS
    seconds_total = 0.0
    for summary in summaries:
        for index, count in enumerate(summary.get("buckets", ())):
            counts[index] += count
        seconds_total += summary.get("seconds_total", 0.0)
    return summarize_counts(counts, seconds_total)


def aggregate_snapshots(snapshots: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Exact fleet totals: counters and bucket counts summed, quantiles
    recomputed from the summed buckets."""
    endpoints: dict[str, Any] = {}
    names = sorted({n for snap in snapshots for n in snap.get("endpoints", {})})
    for name in names:
        blocks = [
            snap["endpoints"][name]
            for snap in snapshots
            if name in snap.get("endpoints", {})
        ]
        endpoints[name] = {
            "requests": sum(b["requests"] for b in blocks),
            "errors": sum(b["errors"] for b in blocks),
            "cache_hits": sum(b["cache_hits"] for b in blocks),
            "cache_misses": sum(b["cache_misses"] for b in blocks),
            "seconds_total": sum(b["seconds_total"] for b in blocks),
            "latency": _sum_summaries(b["latency"] for b in blocks),
        }
    spans: dict[str, Any] = {}
    kinds = sorted({k for snap in snapshots for k in snap.get("spans", {})})
    for kind in kinds:
        spans[kind] = _sum_summaries(
            snap["spans"][kind] for snap in snapshots if kind in snap.get("spans", {})
        )
    totals: dict[str, Any] = {"endpoints": endpoints, "spans": spans}
    for block in ("cache", "cascade"):
        keys = sorted({k for snap in snapshots for k in snap.get(block, {})})
        totals[block] = {
            key: sum(snap.get(block, {}).get(key, 0) for snap in snapshots)
            for key in keys
        }
    corpus_blocks = [snap.get("corpus", {}) for snap in snapshots]
    totals["corpus"] = {
        "workers_initialized": sum(
            1 for block in corpus_blocks if block.get("initialized")
        ),
        # Every worker indexes the same shared repository; the fleet view
        # is the largest published snapshot, not a meaningless sum.
        "n_indexed": max(
            (block.get("n_indexed", 0) for block in corpus_blocks), default=0
        ),
    }
    return totals


class FleetStats:
    """The per-pool stats file: one fixed region per prefork worker.

    Lifecycle mirrors the pool's other shared resources: the parent calls
    :meth:`create` BEFORE forking (so the file exists and has its final
    size when any worker starts), each worker calls :meth:`attach` AFTER
    forking and records into :meth:`worker_board` of its own index, and
    any worker's ``/metrics`` handler calls :meth:`payload` to read every
    region and sum.
    """

    def __init__(self, path: str, file, mapped: mmap.mmap):
        self.path = path
        self._file = file
        self._mmap = mapped
        self._views: list[memoryview] = []
        self.n_workers = len(mapped) // REGION_BYTES

    @classmethod
    def create(cls, path: str, n_workers: int) -> None:
        """Parent-side: (re)create the zeroed file sized for the pool."""
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        with open(path, "wb") as handle:
            handle.write(b"\x00" * (n_workers * REGION_BYTES))

    @classmethod
    def attach(cls, path: str) -> "FleetStats":
        """Worker-side: map the shared file created by the parent."""
        file = open(path, "r+b")
        try:
            mapped = mmap.mmap(file.fileno(), 0)
        except Exception:
            file.close()
            raise
        return cls(path, file, mapped)

    def worker_board(self, index: int) -> StatsBoard:
        """The live board over this worker's region (records in place)."""
        if not 0 <= index < self.n_workers:
            raise ValueError(
                f"worker index {index} out of range for {self.n_workers} regions"
            )
        view = memoryview(self._mmap)[
            index * REGION_BYTES: (index + 1) * REGION_BYTES
        ]
        self._views.append(view)
        return StatsBoard(buffer=view)

    def snapshots(self) -> list[dict[str, Any]]:
        """Decode every ATTACHED worker region (pid slot set)."""
        results = []
        for index in range(self.n_workers):
            region = bytes(
                self._mmap[index * REGION_BYTES: (index + 1) * REGION_BYTES]
            )
            snapshot = StatsBoard(buffer=bytearray(region)).snapshot()
            if snapshot["pid"]:
                results.append(snapshot)
        return results

    def payload(self) -> dict[str, Any]:
        """The ``fleet`` block of ``/metrics``: per-worker + exact totals."""
        workers = self.snapshots()
        return {
            "n_workers": self.n_workers,
            "workers": workers,
            "totals": aggregate_snapshots(workers),
        }

    def close(self) -> None:
        # Boards handed out via worker_board hold memoryview exports over
        # the mapping; release them or mmap.close() raises BufferError.
        for view in self._views:
            view.release()
        self._views.clear()
        try:
            self._mmap.close()
        finally:
            self._file.close()

    @staticmethod
    def remove(path: str) -> None:
        """Parent-side cleanup after the pool drains (missing file is fine)."""
        try:
            os.remove(path)
        except OSError:
            pass
