"""Fixed-bucket latency histograms: p50/p95/p99 instead of flat totals.

A mean over a counter pair ("requests", "seconds_total") hides exactly
what the paper's workflow argument needs visible: the tail.  One slow
corpus sweep among a thousand cache hits disappears into the average but
dominates the p99.  :class:`LatencyHistogram` is the replacement -- a
fixed log-spaced bucket ladder (0.5ms .. 10s, plus overflow) every
endpoint and span kind observes into.

Fixed buckets are the deliberate choice over exact reservoirs:

* observation is O(log buckets) (one bisect) and lock-cheap,
* two histograms MERGE by adding bucket counts -- which is what makes
  fleet aggregation exact: per-worker counts sum to fleet counts with no
  approximation beyond the shared bucket resolution (see
  :mod:`repro.telemetry.board`),
* quantiles interpolate inside the winning bucket, so p50/p95/p99 are
  bounded by bucket width, never by sample count.

The bucket bounds are shared module constants: the stats board packs raw
bucket counts into its per-worker slots and any reader rebuilds the same
quantiles from them.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Any, Iterable, Sequence

__all__ = [
    "BUCKET_BOUNDS_SECONDS",
    "N_BUCKETS",
    "LatencyHistogram",
    "bucket_index",
    "estimate_quantile",
    "summarize_counts",
]

#: Upper bounds (seconds) of the finite buckets, log-spaced 1-2.5-5 per
#: decade from 0.5ms to 10s -- wide enough for a cache hit and a cold
#: corpus sweep on one ladder.  Observations above the last bound land in
#: the overflow bucket.
BUCKET_BOUNDS_SECONDS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Finite buckets plus the overflow bucket.
N_BUCKETS = len(BUCKET_BOUNDS_SECONDS) + 1


def bucket_index(seconds: float) -> int:
    """The bucket one observation falls into (last index = overflow)."""
    return bisect_right(BUCKET_BOUNDS_SECONDS, seconds)


def estimate_quantile(counts: Sequence[int], q: float) -> float:
    """The ``q``-quantile (0..1) estimated from bucket counts.

    Linear interpolation inside the winning bucket; the overflow bucket
    reports its lower bound (the last finite bound) -- a deliberate
    under-estimate that keeps the value finite.
    """
    total = sum(counts)
    if total <= 0:
        return 0.0
    rank = q * total
    cumulative = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= rank:
            low = BUCKET_BOUNDS_SECONDS[index - 1] if index > 0 else 0.0
            if index >= len(BUCKET_BOUNDS_SECONDS):
                return BUCKET_BOUNDS_SECONDS[-1]
            high = BUCKET_BOUNDS_SECONDS[index]
            fraction = (rank - cumulative) / count
            return low + (high - low) * fraction
        cumulative += count
    return BUCKET_BOUNDS_SECONDS[-1]


def summarize_counts(
    counts: Sequence[int], seconds_total: float
) -> dict[str, Any]:
    """The JSON summary block every histogram consumer renders."""
    count = sum(counts)
    return {
        "count": count,
        "seconds_total": seconds_total,
        "p50": estimate_quantile(counts, 0.50),
        "p95": estimate_quantile(counts, 0.95),
        "p99": estimate_quantile(counts, 0.99),
        "buckets": list(counts),
    }


class LatencyHistogram:
    """A thread-safe fixed-bucket histogram over the shared ladder."""

    __slots__ = ("_lock", "_counts", "_seconds_total")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * N_BUCKETS
        self._seconds_total = 0.0

    def observe(self, seconds: float) -> None:
        index = bucket_index(seconds)
        with self._lock:
            self._counts[index] += 1
            self._seconds_total += seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram in (bucket-wise addition, exact)."""
        other_counts, other_total = other.snapshot()
        with self._lock:
            for index, count in enumerate(other_counts):
                self._counts[index] += count
            self._seconds_total += other_total

    def merge_counts(
        self, counts: Iterable[int], seconds_total: float
    ) -> None:
        """Fold raw bucket counts in (the fleet-aggregation path)."""
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += count
            self._seconds_total += seconds_total

    def snapshot(self) -> tuple[list[int], float]:
        with self._lock:
            return list(self._counts), self._seconds_total

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def seconds_total(self) -> float:
        with self._lock:
            return self._seconds_total

    def quantile(self, q: float) -> float:
        counts, _ = self.snapshot()
        return estimate_quantile(counts, q)

    def to_dict(self) -> dict[str, Any]:
        counts, seconds_total = self.snapshot()
        return summarize_counts(counts, seconds_total)
