"""The slow-request trace log: JSONL span trees above a latency threshold.

Histograms (:mod:`repro.telemetry.board`) answer "how slow"; the trace
log answers "slow WHERE".  When a request's wall time crosses the
``--slow-ms`` threshold the server appends its full serialised span tree
as one JSON line, so an operator can run ``repro trace server.jsonl``
the morning after and read a per-stage breakdown of exactly the requests
that hurt.

One line per trace, written with a single ``write()`` + flush: small
appends to an ``O_APPEND`` file interleave at line granularity, which is
what lets every prefork worker share one log path without a cross-
process lock.  The summariser computes EXACT percentiles from the raw
span durations -- slow traces are few by construction, so there is no
need for the bucket ladder here.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterable, Iterator, Mapping

__all__ = [
    "TraceLogWriter",
    "format_trace_summary",
    "read_trace_log",
    "summarize_trace_log",
]


class TraceLogWriter:
    """Appends serialised traces for requests slower than ``slow_ms``."""

    def __init__(self, path: str, slow_ms: float = 250.0) -> None:
        if slow_ms < 0:
            raise ValueError(f"slow_ms must be >= 0, got {slow_ms}")
        self.path = str(path)
        self.slow_seconds = slow_ms / 1000.0
        self._lock = threading.Lock()
        self._file = None

    def maybe_write(
        self,
        endpoint: str,
        trace_payload: Mapping[str, Any],
        elapsed_seconds: float,
    ) -> bool:
        """Append the trace if the request was slow enough; report whether
        a line was written."""
        if elapsed_seconds < self.slow_seconds:
            return False
        record = {
            "endpoint": endpoint,
            "elapsed_seconds": elapsed_seconds,
            **trace_payload,
        }
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            if self._file is None:
                # Lazy append-mode open: the file exists only once
                # something slow actually happened.
                self._file = open(self.path, "a", encoding="utf-8")
            self._file.write(line)
            self._file.flush()
        return True

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


def read_trace_log(path: str) -> Iterator[dict[str, Any]]:
    """Yield trace records from a JSONL log (blank lines skipped)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON ({error})"
                ) from error
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{line_number}: expected a JSON object, "
                    f"got {type(record).__name__}"
                )
            yield record


def _exact_percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile over raw durations."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] + (sorted_values[high] - sorted_values[low]) * fraction


def summarize_trace_log(
    records: Iterable[Mapping[str, Any]],
) -> dict[str, Any]:
    """Per-stage time breakdown across every trace in the log.

    ``share`` is each stage's fraction of the summed span time (spans
    nest, so shares can describe overlapping time; the table is an
    attribution of where spans ran, not a partition of wall time).
    """
    durations: dict[str, list[float]] = {}
    endpoints: dict[str, int] = {}
    n_traces = 0
    total_elapsed = 0.0
    for record in records:
        n_traces += 1
        total_elapsed += float(record.get("elapsed_seconds", 0.0))
        endpoint = record.get("endpoint", "(unknown)")
        endpoints[endpoint] = endpoints.get(endpoint, 0) + 1
        for span in record.get("spans", ()):
            kind = span.get("kind", "(other)")
            durations.setdefault(kind, []).append(float(span.get("seconds", 0.0)))
    span_seconds = sum(sum(values) for values in durations.values())
    stages: dict[str, Any] = {}
    for kind in sorted(
        durations, key=lambda name: sum(durations[name]), reverse=True
    ):
        values = sorted(durations[kind])
        seconds_total = sum(values)
        stages[kind] = {
            "spans": len(values),
            "seconds_total": seconds_total,
            "share": (seconds_total / span_seconds) if span_seconds > 0 else 0.0,
            "p50": _exact_percentile(values, 0.50),
            "p95": _exact_percentile(values, 0.95),
            "max": values[-1],
        }
    return {
        "n_traces": n_traces,
        "total_seconds": total_elapsed,
        "endpoints": dict(sorted(endpoints.items())),
        "stages": stages,
    }


def format_trace_summary(summary: Mapping[str, Any]) -> str:
    """Render the summary as the fixed-width table ``repro trace`` prints."""
    lines = [
        f"traces: {summary['n_traces']}   "
        f"total elapsed: {summary['total_seconds']:.3f}s",
    ]
    endpoints = summary.get("endpoints", {})
    if endpoints:
        lines.append(
            "endpoints: "
            + ", ".join(f"{name} x{count}" for name, count in endpoints.items())
        )
    stages = summary.get("stages", {})
    if not stages:
        lines.append("(no spans recorded)")
        return "\n".join(lines)
    header = (
        f"{'stage':<24} {'spans':>6} {'total_s':>9} {'share':>7} "
        f"{'p50_ms':>9} {'p95_ms':>9} {'max_ms':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for kind, stage in stages.items():
        lines.append(
            f"{kind:<24} {stage['spans']:>6} {stage['seconds_total']:>9.3f} "
            f"{stage['share'] * 100:>6.1f}% "
            f"{stage['p50'] * 1000:>9.2f} {stage['p95'] * 1000:>9.2f} "
            f"{stage['max'] * 1000:>9.2f}"
        )
    return "\n".join(lines)
