"""Span-tree tracing: where one MATCH request's time actually went.

The paper's operational argument is that enterprise matching must be a
*managed* workflow -- and a workflow cannot be managed blind.  A
:class:`Trace` is one request's execution tree: nested spans covering the
pipeline stages (``service.match`` -> ``route.compile`` ->
``engine.score`` / ``runner.batch`` -> ``cascade.escalate`` ->
``cache.get``/``cache.put`` -> ``repository.read``/``repository.write``),
each with a start offset and duration off the monotonic clock.

**Near-zero overhead when disabled.**  Instrumentation sites call the
free function :func:`span`, which reads one :class:`contextvars.ContextVar`;
with no active trace it returns a shared no-op context manager and records
nothing -- no allocation, no lock, no timestamps.  Tracing activates only
when a request opts in (``MatchOptions.trace``) or the server samples it
for its slow-request log, via :func:`request_trace` / :func:`activate_trace`.
Bench E24 gates the disabled-path cost at <= 2% of an E19-style request.

**Thread-safety.**  Span *parentage* rides on a context variable, so
nesting is correct per thread (and propagates into thread pools when the
caller copies its context -- the batch runner does, see
``repro.batch.runner``); the span *list* appends under the trace's lock,
so concurrent fan-out workers record into one tree safely.

The serialised form (:meth:`Trace.to_dict`) is what the envelopes carry,
what ``serve --trace-log`` writes as JSONL, and what ``repro trace``
summarizes; :func:`validate_trace` checks the structural invariants
(indices, nesting, timing) and is what the CI smoke asserts.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextvars import ContextVar
from typing import Any, Mapping

__all__ = [
    "SPAN_KINDS",
    "Span",
    "Trace",
    "Tracer",
    "activate_trace",
    "current_trace",
    "request_trace",
    "span",
    "stage_totals",
    "validate_trace",
]

#: Every span kind the pipeline emits, in rough pipeline order.  The fleet
#: stats board allocates one histogram slot per kind, so the list is fixed;
#: an unlisted kind still traces fine but aggregates under ``(other)``.
SPAN_KINDS: tuple[str, ...] = (
    "service.match",
    "service.corpus_match",
    "service.network_match",
    "route.compile",
    "corpus.retrieve",
    "network.route",
    "engine.score",
    "runner.batch",
    "cascade.escalate",
    "reuse.apply",
    "envelope.build",
    "cache.get",
    "cache.put",
    "repository.read",
    "repository.write",
)

#: The active trace (None = tracing disabled, the overwhelmingly common
#: case) and the index of the innermost open span within it.
_ACTIVE_TRACE: ContextVar["Trace | None"] = ContextVar(
    "harmonia_trace", default=None
)
_ACTIVE_SPAN: ContextVar[int | None] = ContextVar(
    "harmonia_span", default=None
)


class Span:
    """One timed stage of a trace (mutable: closed in place on exit)."""

    __slots__ = ("kind", "parent", "start_seconds", "seconds", "attrs")

    def __init__(
        self,
        kind: str,
        parent: int | None,
        start_seconds: float,
        seconds: float = 0.0,
        attrs: dict[str, Any] | None = None,
    ):
        self.kind = kind
        self.parent = parent
        self.start_seconds = start_seconds
        self.seconds = seconds
        self.attrs = attrs

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": self.kind,
            "parent": self.parent,
            "start_seconds": self.start_seconds,
            "seconds": self.seconds,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        return payload


class _NullSpan:
    """The disabled path: one shared instance, no state, no timing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span: registers on enter, stamps its duration on exit."""

    __slots__ = ("_trace", "_record", "_started", "_token")

    def __init__(self, trace: "Trace", kind: str, attrs: dict[str, Any]):
        self._trace = trace
        self._record = Span(kind, None, 0.0, attrs=dict(attrs) if attrs else None)
        self._started = 0.0
        self._token = None

    def __enter__(self) -> "_LiveSpan":
        record = self._record
        record.parent = _ACTIVE_SPAN.get()
        self._started = time.perf_counter()
        record.start_seconds = self._started - self._trace.started_at
        index = self._trace._append(record)
        self._token = _ACTIVE_SPAN.set(index)
        return self

    def __exit__(self, *exc) -> bool:
        self._record.seconds = time.perf_counter() - self._started
        _ACTIVE_SPAN.reset(self._token)
        return False

    def annotate(self, **attrs) -> None:
        """Attach result facts (counts, routes) to the open span."""
        record = self._record
        if record.attrs is None:
            record.attrs = {}
        record.attrs.update(attrs)


class Trace:
    """One request's span tree, identified by a random trace id."""

    def __init__(self, trace_id: str | None = None):
        self.trace_id = trace_id if trace_id is not None else uuid.uuid4().hex[:16]
        self.started_at = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    def _append(self, record: Span) -> int:
        with self._lock:
            self._spans.append(record)
            return len(self._spans) - 1

    def span(self, kind: str, **attrs) -> _LiveSpan:
        return _LiveSpan(self, kind, attrs)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    @property
    def total_seconds(self) -> float:
        """The root span's duration (0.0 before any span closes)."""
        with self._lock:
            for record in self._spans:
                if record.parent is None:
                    return record.seconds
        return 0.0

    def to_dict(self) -> dict[str, Any]:
        """The serialised tree carried in envelopes and the trace log."""
        with self._lock:
            spans = [record.to_dict() for record in self._spans]
        return {
            "trace_id": self.trace_id,
            "total_seconds": next(
                (s["seconds"] for s in spans if s["parent"] is None), 0.0
            ),
            "spans": spans,
        }


class Tracer:
    """The trace factory: the sampling-rate knob over :class:`Trace`.

    ``sample_rate`` admits that fraction of :meth:`sample` calls,
    deterministically (a cumulative quota, not a coin flip): rate 1.0
    admits everything, 0.0 nothing, 0.25 exactly every fourth request.
    The service consults it for ``MatchOptions.trace`` opt-ins; the
    server consults it for slow-log sampling.
    """

    def __init__(self, sample_rate: float = 1.0, enabled: bool = True):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        self.enabled = enabled
        self._lock = threading.Lock()
        self._seen = 0
        self._taken = 0

    def sample(self) -> bool:
        """Admit or reject one request against the cumulative quota."""
        if not self.enabled or self.sample_rate <= 0.0:
            return False
        with self._lock:
            self._seen += 1
            due = int(self._seen * self.sample_rate + 1e-9)
            if self._taken < due:
                self._taken += 1
                return True
            return False

    def start(self) -> Trace | None:
        """A new trace when sampling admits, else None."""
        return Trace() if self.sample() else None


# ----------------------------------------------------------------------
# The instrumentation surface (what the hot paths actually call)
# ----------------------------------------------------------------------
def span(kind: str, **attrs):
    """A context manager timing one stage of the ACTIVE trace.

    The single hot-path entry point: with no active trace this is one
    context-variable read returning a shared no-op, so instrumenting a
    code path costs nothing when nobody asked for a trace.
    """
    trace = _ACTIVE_TRACE.get()
    if trace is None:
        return _NULL_SPAN
    return _LiveSpan(trace, kind, attrs)


def current_trace() -> Trace | None:
    """The trace the calling context is recording into (None = disabled)."""
    return _ACTIVE_TRACE.get()


class _TraceActivation:
    """Context manager installing (and always removing) an active trace."""

    __slots__ = ("_trace", "_token")

    def __init__(self, trace: Trace | None):
        self._trace = trace
        self._token = None

    def __enter__(self) -> Trace | None:
        if self._trace is not None:
            self._token = _ACTIVE_TRACE.set(self._trace)
        return self._trace

    def __exit__(self, *exc) -> bool:
        if self._token is not None:
            _ACTIVE_TRACE.reset(self._token)
        return False


def activate_trace(trace: Trace | None) -> _TraceActivation:
    """Install ``trace`` as the context's active trace (None = no-op)."""
    return _TraceActivation(trace)


class _NullRequestTrace:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_REQUEST_TRACE = _NullRequestTrace()


class _RequestTrace:
    """An opted-in request's trace: reuse the ambient one or start fresh."""

    __slots__ = ("_tracer", "_activation")

    def __init__(self, tracer: Tracer | None):
        self._tracer = tracer
        self._activation: _TraceActivation | None = None

    def __enter__(self) -> Trace | None:
        active = _ACTIVE_TRACE.get()
        if active is not None:
            # The serving tier already opened a trace for this request;
            # record into (and return) that one rather than forking a
            # second tree for the same execution.
            return active
        trace = self._tracer.start() if self._tracer is not None else Trace()
        if trace is None:
            return None
        self._activation = _TraceActivation(trace)
        return self._activation.__enter__()

    def __exit__(self, *exc) -> bool:
        if self._activation is not None:
            self._activation.__exit__(*exc)
        return False


def request_trace(tracer: Tracer | None, opted: bool):
    """The per-request trace gate the service front doors use.

    ``opted=False`` (the default for every request) returns a shared
    no-op yielding ``None`` -- the disabled path allocates nothing.
    ``opted=True`` yields the ambient trace when the server already
    opened one, otherwise a fresh trace if ``tracer`` sampling admits.
    """
    if not opted:
        return _NULL_REQUEST_TRACE
    return _RequestTrace(tracer)


# ----------------------------------------------------------------------
# Serialised-trace queries (payload dicts, not live Trace objects)
# ----------------------------------------------------------------------
def stage_totals(payload: Mapping[str, Any]) -> dict[str, float]:
    """Summed seconds per span kind of one serialised trace."""
    totals: dict[str, float] = {}
    for record in payload.get("spans", ()):
        kind = record.get("kind", "(other)")
        totals[kind] = totals.get(kind, 0.0) + float(record.get("seconds", 0.0))
    return totals


def validate_trace(
    payload: Mapping[str, Any], tolerance_seconds: float = 1e-4
) -> list[str]:
    """Structural problems of one serialised trace ([] = valid span tree).

    Checks: a non-empty id and span list, at least one root, parents that
    exist and precede their children (spans append in enter order, so a
    parent's index is always lower), and child intervals nested inside
    their parent's within ``tolerance_seconds``.
    """
    problems: list[str] = []
    if not payload.get("trace_id"):
        problems.append("missing trace_id")
    spans = payload.get("spans")
    if not isinstance(spans, list) or not spans:
        problems.append("no spans")
        return problems
    roots = 0
    for index, record in enumerate(spans):
        parent = record.get("parent")
        start = record.get("start_seconds")
        seconds = record.get("seconds")
        if not isinstance(start, (int, float)) or not isinstance(
            seconds, (int, float)
        ):
            problems.append(f"span {index}: non-numeric timing")
            continue
        if seconds < 0 or start < -tolerance_seconds:
            problems.append(f"span {index}: negative timing")
        if parent is None:
            roots += 1
            continue
        if not isinstance(parent, int) or not 0 <= parent < len(spans):
            problems.append(f"span {index}: parent {parent!r} does not exist")
            continue
        if parent >= index:
            problems.append(f"span {index}: parent {parent} does not precede it")
            continue
        outer = spans[parent]
        outer_start = outer.get("start_seconds", 0.0)
        outer_end = outer_start + outer.get("seconds", 0.0)
        if start < outer_start - tolerance_seconds:
            problems.append(f"span {index}: starts before its parent")
        if start + seconds > outer_end + tolerance_seconds:
            problems.append(f"span {index}: ends after its parent")
    if roots == 0:
        problems.append("no root span")
    return problems
