"""Linguistic substrate: tokenization, stemming, string metrics, TF-IDF.

This package implements the "linguistic preprocessing" half of the Harmony
architecture from the CIDR 2009 paper plus the string/set similarity metrics
the match voters are built on.
"""

from repro.text.abbrev import AbbreviationTable
from repro.text.pipeline import LinguisticPipeline, TermBag
from repro.text.similarity import (
    dice_coefficient,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    monge_elkan,
    ngram_similarity,
)
from repro.text.stem import stem
from repro.text.tfidf import TfidfModel, cosine, tfidf_similarity_matrix
from repro.text.thesaurus import SynonymLexicon
from repro.text.tokenize import char_ngrams, split_identifier, tokenize

__all__ = [
    "AbbreviationTable",
    "LinguisticPipeline",
    "SynonymLexicon",
    "TermBag",
    "TfidfModel",
    "char_ngrams",
    "cosine",
    "dice_coefficient",
    "jaccard",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_similarity",
    "monge_elkan",
    "ngram_similarity",
    "split_identifier",
    "stem",
    "tfidf_similarity_matrix",
    "tokenize",
]
