"""Abbreviation expansion for schema identifiers.

Enterprise schemata -- the military schemata of the CIDR 2009 case study
included -- abbreviate aggressively: ``QTY`` for quantity, ``DT`` for date,
``ORG`` for organization.  Expanding abbreviations to canonical words before
stemming dramatically improves token-overlap evidence between schemata that
follow different conventions.

The default table below covers common database/military-enterprise
abbreviations.  Deployments can extend it::

    table = AbbreviationTable.default().extend({"posn": "position"})
    table.expand("posn")        # -> ["position"]

Multi-word expansions are supported (``dob`` -> ``date of birth`` yields the
tokens ``["date", "of", "birth"]``).
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["AbbreviationTable", "DEFAULT_ABBREVIATIONS"]

DEFAULT_ABBREVIATIONS: dict[str, str] = {
    "abbr": "abbreviation",
    "acct": "account",
    "addr": "address",
    "adm": "administration",
    "alt": "altitude",
    "amt": "amount",
    "appt": "appointment",
    "arr": "arrival",
    "asgn": "assignment",
    "assoc": "association",
    "auth": "authorization",
    "avg": "average",
    "bday": "birth date",
    "bldg": "building",
    "bgn": "begin",
    "cap": "capacity",
    "cat": "category",
    "chg": "change",
    "cmd": "command",
    "cnt": "count",
    "comm": "communication",
    "coord": "coordinate",
    "ctry": "country",
    "curr": "current",
    "decl": "declaration",
    "dep": "departure",
    "dept": "department",
    "dest": "destination",
    "dim": "dimension",
    "dist": "distance",
    "dob": "date of birth",
    "doc": "document",
    "dsg": "designation",
    "dt": "date",
    "datetime": "date time",
    "dtg": "date time group",
    "dttm": "date time",
    "eff": "effective",
    "elev": "elevation",
    "eqp": "equipment",
    "equip": "equipment",
    "est": "estimate",
    "evt": "event",
    "exp": "expiration",
    "fac": "facility",
    "freq": "frequency",
    "geo": "geographic",
    "gov": "government",
    "gp": "group",
    "grp": "group",
    "hosp": "hospital",
    "hq": "headquarters",
    "ht": "height",
    "info": "information",
    "jur": "jurisdiction",
    "lang": "language",
    "lat": "latitude",
    "loc": "location",
    "lon": "longitude",
    "lvl": "level",
    "max": "maximum",
    "med": "medical",
    "mfr": "manufacturer",
    "mgr": "manager",
    "mil": "military",
    "min": "minimum",
    "msg": "message",
    "msn": "mission",
    "mun": "munition",
    "nat": "national",
    "nav": "navigation",
    "obj": "objective",
    "obs": "observation",
    "op": "operation",
    "opr": "operator",
    "ord": "order",
    "org": "organization",
    "orig": "origin",
    "pct": "percent",
    "per": "person",
    "pers": "person",
    "phys": "physical",
    "pos": "position",
    "prec": "precision",
    "prim": "primary",
    "prio": "priority",
    "proc": "procedure",
    "prof": "profession",
    "pt": "point",
    "qty": "quantity",
    "qual": "qualification",
    "rec": "record",
    "reg": "registration",
    "rel": "relationship",
    "rpt": "report",
    "rte": "route",
    "sched": "schedule",
    "sec": "security",
    "sig": "signal",
    "spec": "specification",
    "sqd": "squad",
    "src": "source",
    "sta": "station",
    "stat": "status",
    "std": "standard",
    "sts": "status",
    "svc": "service",
    "tm": "team",
    "tgt": "target",
    "tran": "transaction",
    "trk": "track",
    "trn": "transport",
    "uic": "unit identification code",
    "veh": "vehicle",
    "vsl": "vessel",
    "wgt": "weight",
    "wpn": "weapon",
    "wt": "weight",
    "xfer": "transfer",
    "xmit": "transmit",
}


class AbbreviationTable:
    """An immutable-by-convention lookup from abbreviation to expansion.

    Instances are cheap wrappers around a dict; :meth:`extend` returns a new
    table so the module-level default is never mutated by callers.
    """

    def __init__(self, entries: Mapping[str, str]):
        self._entries = {key.lower(): value.lower() for key, value in entries.items()}

    @classmethod
    def default(cls) -> "AbbreviationTable":
        """The built-in enterprise/military abbreviation table."""
        return cls(DEFAULT_ABBREVIATIONS)

    @classmethod
    def empty(cls) -> "AbbreviationTable":
        return cls({})

    def extend(self, extra: Mapping[str, str]) -> "AbbreviationTable":
        """Return a new table with ``extra`` entries merged in (extra wins)."""
        merged = dict(self._entries)
        merged.update({key.lower(): value.lower() for key, value in extra.items()})
        return AbbreviationTable(merged)

    def expand(self, token: str) -> list[str]:
        """Expand one token; unknown tokens pass through unchanged.

        >>> AbbreviationTable.default().expand("qty")
        ['quantity']
        >>> AbbreviationTable.default().expand("dob")
        ['date', 'of', 'birth']
        """
        expansion = self._entries.get(token.lower())
        if expansion is None:
            return [token.lower()]
        return expansion.split()

    def expand_all(self, tokens: Iterable[str]) -> list[str]:
        """Expand every token in sequence, flattening multi-word expansions."""
        result: list[str] = []
        for token in tokens:
            result.extend(self.expand(token))
        return result

    def __contains__(self, token: str) -> bool:
        return token.lower() in self._entries

    def __len__(self) -> int:
        return len(self._entries)
