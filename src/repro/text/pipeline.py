"""The linguistic preprocessing pipeline.

This is the front half of the Harmony architecture (CIDR 2009, section 3.2):
"It begins with linguistic preprocessing (e.g., tokenization and stemming) of
element names and any associated documentation."

A :class:`LinguisticPipeline` composes, in order:

1. identifier/prose tokenization  (:mod:`repro.text.tokenize`)
2. abbreviation expansion         (:mod:`repro.text.abbrev`)
3. stopword removal               (:mod:`repro.text.stopwords`)
4. Porter stemming                (:mod:`repro.text.stem`)

and produces a :class:`TermBag`: the multiset of normalised terms for one
schema element name or documentation string.  Voters consume term bags;
nothing downstream re-tokenizes raw strings.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.text.abbrev import AbbreviationTable
from repro.text.stem import stem
from repro.text.stopwords import is_stopword
from repro.text.tokenize import tokenize

__all__ = ["TermBag", "LinguisticPipeline"]


@dataclass(frozen=True)
class TermBag:
    """A multiset of normalised terms with convenience set/count views."""

    counts: tuple[tuple[str, int], ...]

    @classmethod
    def from_terms(cls, terms: Iterable[str]) -> "TermBag":
        counter = Counter(terms)
        return cls(counts=tuple(sorted(counter.items())))

    @property
    def terms(self) -> list[str]:
        """Terms with multiplicity, in sorted order."""
        expanded: list[str] = []
        for term, count in self.counts:
            expanded.extend([term] * count)
        return expanded

    @property
    def term_set(self) -> frozenset[str]:
        return frozenset(term for term, _ in self.counts)

    @property
    def total(self) -> int:
        """Total token count (evidence mass for the voters)."""
        return sum(count for _, count in self.counts)

    def __len__(self) -> int:
        return len(self.counts)

    def __bool__(self) -> bool:
        return bool(self.counts)

    def __or__(self, other: "TermBag") -> "TermBag":
        merged = Counter(dict(self.counts))
        merged.update(dict(other.counts))
        return TermBag(counts=tuple(sorted(merged.items())))


class LinguisticPipeline:
    """Configurable tokenize -> expand -> filter -> stem pipeline.

    Parameters
    ----------
    abbreviations:
        Abbreviation table; defaults to the built-in enterprise table.
        Pass ``AbbreviationTable.empty()`` to disable expansion.
    use_stemming:
        Disable to keep surface forms (useful in ablations).
    schema_stopwords:
        When true, also remove schema-noise words ("id", "code", ...).
        Name processing sets this; documentation processing leaves it off.
    drop_digits:
        Remove purely numeric tokens (system-assigned suffixes).
    min_token_length:
        Drop very short tokens after expansion.
    """

    def __init__(
        self,
        abbreviations: AbbreviationTable | None = None,
        use_stemming: bool = True,
        schema_stopwords: bool = False,
        drop_digits: bool = True,
        min_token_length: int = 1,
    ):
        self._abbreviations = (
            abbreviations if abbreviations is not None else AbbreviationTable.default()
        )
        self._use_stemming = use_stemming
        self._schema_stopwords = schema_stopwords
        self._drop_digits = drop_digits
        self._min_token_length = min_token_length

    @classmethod
    def for_names(cls) -> "LinguisticPipeline":
        """The default pipeline for element names (schema stopwords on)."""
        return cls(schema_stopwords=True)

    @classmethod
    def for_documentation(cls) -> "LinguisticPipeline":
        """The default pipeline for documentation prose."""
        return cls(schema_stopwords=False)

    def terms(self, text: str) -> list[str]:
        """Run the full pipeline on a raw string, returning normalised terms."""
        tokens = tokenize(
            text, drop_digits=self._drop_digits, min_length=self._min_token_length
        )
        tokens = self._abbreviations.expand_all(tokens)
        tokens = [
            token
            for token in tokens
            if not is_stopword(token, schema_mode=self._schema_stopwords)
        ]
        if self._use_stemming:
            tokens = [stem(token) for token in tokens]
        return tokens

    def bag(self, text: str) -> TermBag:
        """Run the pipeline and package the result as a :class:`TermBag`."""
        return TermBag.from_terms(self.terms(text))

    def bag_many(self, texts: Iterable[str]) -> TermBag:
        """Union bag over several strings (e.g. name + documentation)."""
        combined: Counter[str] = Counter()
        for text in texts:
            combined.update(self.terms(text))
        return TermBag.from_terms(combined.elements())
