"""String and set similarity metrics used by the match voters.

All similarities are normalised to ``[0, 1]`` where 1 means identical.
Distances (:func:`levenshtein`) are raw edit counts.  Every function is pure
and deterministic.

These implementations favour clarity; the vectorised hot paths live
elsewhere: :mod:`repro.matchers.setsim` computes whole similarity
*matrices* via sparse products, and the voters' bulk
``score_block``/``score_pairs`` APIs (see :mod:`repro.matchers.base` and
:mod:`repro.batch`) score full grids or blocked candidate lists from
cached :class:`~repro.matchers.profile.FeatureSpace` matrices.  Per-pair
calls here only need to be fast enough for interactive use and tests.
"""

from __future__ import annotations

from typing import Collection, Sequence

from repro.text.tokenize import char_ngrams

__all__ = [
    "levenshtein",
    "levenshtein_similarity",
    "jaro",
    "jaro_winkler",
    "dice_coefficient",
    "jaccard",
    "overlap_coefficient",
    "ngram_similarity",
    "longest_common_substring",
    "lcs_similarity",
    "monge_elkan",
]


def levenshtein(left: str, right: str) -> int:
    """Classic edit distance (insert / delete / substitute, unit costs).

    >>> levenshtein("kitten", "sitting")
    3
    """
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    # Keep the shorter string in the inner dimension for less memory traffic.
    if len(right) > len(left):
        left, right = right, left
    previous = list(range(len(right) + 1))
    for row, left_char in enumerate(left, start=1):
        current = [row]
        for col, right_char in enumerate(right, start=1):
            cost = 0 if left_char == right_char else 1
            current.append(
                min(
                    previous[col] + 1,        # deletion
                    current[col - 1] + 1,     # insertion
                    previous[col - 1] + cost, # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(left: str, right: str) -> float:
    """Edit distance normalised to a similarity: ``1 - d / max(|a|, |b|)``.

    >>> levenshtein_similarity("date", "date")
    1.0
    """
    if not left and not right:
        return 1.0
    longest = max(len(left), len(right))
    return 1.0 - levenshtein(left, right) / longest


def jaro(left: str, right: str) -> float:
    """Jaro similarity: transposition-aware matching of short strings."""
    if left == right:
        return 1.0
    len_left, len_right = len(left), len(right)
    if len_left == 0 or len_right == 0:
        return 0.0

    match_window = max(len_left, len_right) // 2 - 1
    match_window = max(match_window, 0)

    left_matched = [False] * len_left
    right_matched = [False] * len_right
    matches = 0
    for i, char in enumerate(left):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len_right)
        for j in range(start, end):
            if right_matched[j] or right[j] != char:
                continue
            left_matched[i] = True
            right_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i in range(len_left):
        if not left_matched[i]:
            continue
        while not right_matched[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len_left
        + matches / len_right
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(left: str, right: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted for shared prefixes (up to 4 characters).

    ``prefix_scale`` must lie in [0, 0.25] so the result stays within [0, 1].
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    base = jaro(left, right)
    prefix = 0
    for l_char, r_char in zip(left, right):
        if l_char != r_char or prefix == 4:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def dice_coefficient(left: Collection, right: Collection) -> float:
    """Sorensen-Dice over two collections (treated as sets)."""
    left_set, right_set = set(left), set(right)
    if not left_set and not right_set:
        return 1.0
    if not left_set or not right_set:
        return 0.0
    shared = len(left_set & right_set)
    return 2.0 * shared / (len(left_set) + len(right_set))


def jaccard(left: Collection, right: Collection) -> float:
    """Jaccard over two collections (treated as sets)."""
    left_set, right_set = set(left), set(right)
    if not left_set and not right_set:
        return 1.0
    union = len(left_set | right_set)
    if union == 0:
        return 0.0
    return len(left_set & right_set) / union


def overlap_coefficient(left: Collection, right: Collection) -> float:
    """Szymkiewicz-Simpson overlap: ``|A ∩ B| / min(|A|, |B|)``.

    Useful when one schema's names are strict abbreviations of the other's.
    """
    left_set, right_set = set(left), set(right)
    if not left_set and not right_set:
        return 1.0
    if not left_set or not right_set:
        return 0.0
    return len(left_set & right_set) / min(len(left_set), len(right_set))


def ngram_similarity(left: str, right: str, n: int = 3) -> float:
    """Dice coefficient over padded character n-grams.

    >>> ngram_similarity("night", "nacht") > 0
    True
    """
    return dice_coefficient(char_ngrams(left, n), char_ngrams(right, n))


def longest_common_substring(left: str, right: str) -> int:
    """Length of the longest contiguous shared substring."""
    if not left or not right:
        return 0
    previous = [0] * (len(right) + 1)
    best = 0
    for left_char in left:
        current = [0] * (len(right) + 1)
        for col, right_char in enumerate(right, start=1):
            if left_char == right_char:
                current[col] = previous[col - 1] + 1
                if current[col] > best:
                    best = current[col]
        previous = current
    return best


def lcs_similarity(left: str, right: str) -> float:
    """Longest common substring length normalised by the shorter string."""
    if not left and not right:
        return 1.0
    if not left or not right:
        return 0.0
    return longest_common_substring(left, right) / min(len(left), len(right))


def monge_elkan(
    left_tokens: Sequence[str],
    right_tokens: Sequence[str],
    base=jaro_winkler,
) -> float:
    """Monge-Elkan token-set similarity: mean best-match of left tokens.

    Asymmetric by definition; callers wanting symmetry should average both
    directions.  With no tokens on the left, returns 0 (no evidence).
    """
    if not left_tokens:
        return 0.0
    if not right_tokens:
        return 0.0
    total = 0.0
    for l_token in left_tokens:
        total += max(base(l_token, r_token) for r_token in right_tokens)
    return total / len(left_tokens)
