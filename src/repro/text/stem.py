"""Porter stemmer, implemented from scratch.

Harmony's linguistic preprocessing stems element-name and documentation
tokens before comparison (CIDR 2009, section 3.2: "linguistic preprocessing
(e.g., tokenization and stemming)").  This is the classic Porter (1980)
algorithm; it is deterministic, dependency-free, and behaviourally equivalent
to the reference implementation for ordinary English vocabulary.

The only public entry points are :func:`stem` and :func:`stem_all`.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["stem", "stem_all"]

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, index: int) -> bool:
    """Return True when ``word[index]`` acts as a consonant (Porter's rules)."""
    char = word[index]
    if char in _VOWELS:
        return False
    if char == "y":
        return index == 0 or not _is_consonant(word, index - 1)
    return True


def _measure(stem_part: str) -> int:
    """Porter's *m*: the number of VC sequences in the word form C?(VC)^m V?."""
    forms = []
    for index in range(len(stem_part)):
        forms.append("c" if _is_consonant(stem_part, index) else "v")
    shape = "".join(forms)
    return shape.count("vc")


def _contains_vowel(stem_part: str) -> bool:
    return any(not _is_consonant(stem_part, index) for index in range(len(stem_part)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """True for a consonant-vowel-consonant ending where the last consonant
    is not w, x or y -- the *o condition in Porter's paper."""
    if len(word) < 3:
        return False
    if not _is_consonant(word, len(word) - 3):
        return False
    if _is_consonant(word, len(word) - 2):
        return False
    if not _is_consonant(word, len(word) - 1):
        return False
    return word[-1] not in "wxy"


def _replace_suffix(word: str, suffix: str, replacement: str) -> str:
    return word[: len(word) - len(suffix)] + replacement


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return _replace_suffix(word, "sses", "ss")
    if word.endswith("ies"):
        return _replace_suffix(word, "ies", "i")
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem_part = word[:-3]
        if _measure(stem_part) > 0:
            return word[:-1]
        return word

    applied = False
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        word = word[:-2]
        applied = True
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word = word[:-3]
        applied = True

    if applied:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and not word.endswith(("l", "s", "z")):
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP_2_RULES = (
    ("ational", "ate"),
    ("tional", "tion"),
    ("enci", "ence"),
    ("anci", "ance"),
    ("izer", "ize"),
    ("abli", "able"),
    ("alli", "al"),
    ("entli", "ent"),
    ("eli", "e"),
    ("ousli", "ous"),
    ("ization", "ize"),
    ("ation", "ate"),
    ("ator", "ate"),
    ("alism", "al"),
    ("iveness", "ive"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("aliti", "al"),
    ("iviti", "ive"),
    ("biliti", "ble"),
)

_STEP_3_RULES = (
    ("icate", "ic"),
    ("ative", ""),
    ("alize", "al"),
    ("iciti", "ic"),
    ("ical", "ic"),
    ("ful", ""),
    ("ness", ""),
)

_STEP_4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def _apply_rule_list(word: str, rules: tuple[tuple[str, str], ...]) -> str:
    for suffix, replacement in rules:
        if word.endswith(suffix):
            stem_part = word[: len(word) - len(suffix)]
            if _measure(stem_part) > 0:
                return stem_part + replacement
            return word
    return word


def _step_4(word: str) -> str:
    for suffix in _STEP_4_SUFFIXES:
        if word.endswith(suffix):
            stem_part = word[: len(word) - len(suffix)]
            if suffix == "ion" and stem_part and stem_part[-1] not in "st":
                continue
            if _measure(stem_part) > 1:
                return stem_part
            return word
    if word.endswith("ion"):
        stem_part = word[:-3]
        if stem_part and stem_part[-1] in "st" and _measure(stem_part) > 1:
            return stem_part
    return word


def _step_5a(word: str) -> str:
    if word.endswith("e"):
        stem_part = word[:-1]
        measure = _measure(stem_part)
        if measure > 1:
            return stem_part
        if measure == 1 and not _ends_cvc(stem_part):
            return stem_part
    return word


def _step_5b(word: str) -> str:
    if _measure(word) > 1 and word.endswith("ll"):
        return word[:-1]
    return word


def stem(word: str) -> str:
    """Return the Porter stem of ``word`` (lowercased first).

    Words of length <= 2 are returned unchanged, per the original algorithm.

    >>> stem("relational")
    'relat'
    >>> stem("matching")
    'match'
    >>> stem("vehicles")
    'vehicl'
    """
    word = word.lower()
    if len(word) <= 2 or not word.isalpha():
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _apply_rule_list(word, _STEP_2_RULES)
    word = _apply_rule_list(word, _STEP_3_RULES)
    word = _step_4(word)
    word = _step_5a(word)
    word = _step_5b(word)
    return word


def stem_all(words: Iterable[str]) -> list[str]:
    """Stem every word in an iterable, preserving order."""
    return [stem(word) for word in words]
