"""Stopword lists for linguistic preprocessing.

Two tiers are provided:

* :data:`ENGLISH_STOPWORDS` -- ordinary English function words, removed from
  documentation text before TF-IDF weighting.
* :data:`SCHEMA_STOPWORDS` -- words that carry no discriminating power in
  *schema element names* specifically ("id", "code", "type", "value", ...).
  Virtually every table has an ``ID`` column, so sharing the token "id" is
  not evidence of a semantic correspondence.  Name-based voters subtract
  these; documentation voters keep them (they are rare enough in prose).
"""

from __future__ import annotations

__all__ = ["ENGLISH_STOPWORDS", "SCHEMA_STOPWORDS", "is_stopword"]

ENGLISH_STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again against all am an and any are as at be because
    been before being below between both but by could did do does doing down
    during each few for from further had has have having he her here hers
    him his how i if in into is it its itself just me more most my myself no
    nor not of off on once only or other our ours out over own same she
    should so some such than that the their theirs them then there these
    they this those through to too under until up very was we were what when
    where which while who whom why will with you your yours
    """.split()
)

SCHEMA_STOPWORDS: frozenset[str] = frozenset(
    """
    id ident identifier cd code type typ val value txt text num number no
    nbr desc descr description name nm flag flg ind indicator sys system
    rec record row tbl table col column fld field elem element attr
    attribute ref reference key pk fk seq sequence idx index
    """.split()
)


def is_stopword(token: str, schema_mode: bool = False) -> bool:
    """Return True if ``token`` should be dropped.

    ``schema_mode`` additionally filters schema-noise words; it is what the
    name voters use, while prose processing uses the plain English list.
    """
    lowered = token.lower()
    if lowered in ENGLISH_STOPWORDS:
        return True
    return schema_mode and lowered in SCHEMA_STOPWORDS
