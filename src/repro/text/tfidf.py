"""TF-IDF weighting and cosine similarity over token bags.

Harmony "relies heavily on textual documentation to identify candidate
correspondences" (CIDR 2009, section 3.2).  The documentation voter builds a
TF-IDF vector per schema element from its documentation tokens and compares
elements by cosine similarity.  This module provides the corpus statistics,
per-document vectors, and a vectorised corpus-to-corpus similarity matrix
built on ``scipy.sparse``.

Terminology: a "document" is any bag of (already preprocessed) tokens; the
caller decides whether that is an element name, its documentation, or a whole
schema (schema-level TF-IDF drives schema search and clustering).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy import sparse

__all__ = ["Vocabulary", "TfidfModel", "cosine", "tfidf_similarity_matrix"]


class Vocabulary:
    """A stable token -> integer-id mapping built from a token corpus."""

    def __init__(self) -> None:
        self._index: dict[str, int] = {}

    @classmethod
    def from_documents(cls, documents: Iterable[Sequence[str]]) -> "Vocabulary":
        vocab = cls()
        for document in documents:
            for token in document:
                vocab.add(token)
        return vocab

    def add(self, token: str) -> int:
        """Intern ``token`` and return its id."""
        existing = self._index.get(token)
        if existing is not None:
            return existing
        new_id = len(self._index)
        self._index[token] = new_id
        return new_id

    def id_of(self, token: str) -> int | None:
        """The id for ``token``, or None if out-of-vocabulary."""
        return self._index.get(token)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, token: str) -> bool:
        return token in self._index

    def tokens(self) -> list[str]:
        """All tokens in id order."""
        ordered = sorted(self._index.items(), key=lambda item: item[1])
        return [token for token, _ in ordered]


class TfidfModel:
    """Corpus-level IDF statistics plus document vectorisation.

    IDF uses the smoothed form ``log((1 + N) / (1 + df)) + 1`` so that terms
    present in every document still carry a small positive weight and unseen
    terms cannot divide by zero.  Vectors are L2-normalised, making cosine a
    plain dot product.
    """

    def __init__(self, documents: Sequence[Sequence[str]]):
        self.vocabulary = Vocabulary.from_documents(documents)
        self._n_documents = len(documents)
        document_frequency = Counter()
        for document in documents:
            document_frequency.update(set(document))
        self._idf = np.ones(len(self.vocabulary))
        for token, frequency in document_frequency.items():
            token_id = self.vocabulary.id_of(token)
            self._idf[token_id] = (
                math.log((1 + self._n_documents) / (1 + frequency)) + 1.0
            )

    @property
    def n_documents(self) -> int:
        return self._n_documents

    def idf(self, token: str) -> float:
        """IDF weight of ``token`` (0 when out-of-vocabulary)."""
        token_id = self.vocabulary.id_of(token)
        if token_id is None:
            return 0.0
        return float(self._idf[token_id])

    def vector(self, document: Sequence[str]) -> dict[int, float]:
        """Sparse L2-normalised TF-IDF vector as ``{token_id: weight}``."""
        counts = Counter(
            token for token in document if token in self.vocabulary
        )
        if not counts:
            return {}
        weights = {
            self.vocabulary.id_of(token): count * self._idf[self.vocabulary.id_of(token)]
            for token, count in counts.items()
        }
        norm = math.sqrt(sum(weight * weight for weight in weights.values()))
        if norm == 0.0:
            return {}
        return {token_id: weight / norm for token_id, weight in weights.items()}

    def matrix(self, documents: Sequence[Sequence[str]]) -> sparse.csr_matrix:
        """Stack document vectors into a CSR matrix (rows are documents)."""
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for row, document in enumerate(documents):
            for token_id, weight in self.vector(document).items():
                rows.append(row)
                cols.append(token_id)
                data.append(weight)
        return sparse.csr_matrix(
            (data, (rows, cols)),
            shape=(len(documents), max(len(self.vocabulary), 1)),
        )


def cosine(left: Mapping[int, float], right: Mapping[int, float]) -> float:
    """Cosine of two sparse vectors given as ``{id: weight}`` mappings.

    Vectors from :meth:`TfidfModel.vector` are already normalised, so this is
    their dot product; un-normalised inputs are normalised here for safety.
    """
    if not left or not right:
        return 0.0
    if len(right) < len(left):
        left, right = right, left
    dot = sum(weight * right.get(token_id, 0.0) for token_id, weight in left.items())
    left_norm = math.sqrt(sum(w * w for w in left.values()))
    right_norm = math.sqrt(sum(w * w for w in right.values()))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return dot / (left_norm * right_norm)


def tfidf_similarity_matrix(
    source_documents: Sequence[Sequence[str]],
    target_documents: Sequence[Sequence[str]],
) -> np.ndarray:
    """Dense cosine-similarity matrix between two document collections.

    The model is fit on the union of both sides so IDF reflects the joint
    corpus -- matching how Harmony weighs shared documentation words by how
    unusual they are across *both* schemata.
    """
    model = TfidfModel(list(source_documents) + list(target_documents))
    source_matrix = model.matrix(source_documents)
    target_matrix = model.matrix(target_documents)
    product = source_matrix @ target_matrix.T
    result = np.asarray(product.todense(), dtype=float)
    # Guard against floating point drift outside [0, 1].
    np.clip(result, 0.0, 1.0, out=result)
    return result
