"""A domain thesaurus: synonym sets over normalised terms.

Independently developed schemata name the same concept differently
(``DATE_BEGIN`` vs ``DATETIME_FIRST_INFO`` in the paper's example); a
thesaurus voter closes part of that gap.  Synonyms are grouped into synsets;
two terms are synonymous when they share a synset.  Terms are compared in
*stemmed* form so the lexicon composes with the linguistic pipeline.

The default lexicon covers general enterprise/military vocabulary.  Like the
abbreviation table, it is extensible without mutating the shared default.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.text.stem import stem

__all__ = ["SynonymLexicon", "DEFAULT_SYNSETS"]

DEFAULT_SYNSETS: tuple[tuple[str, ...], ...] = (
    ("begin", "start", "first", "initial", "commence", "onset"),
    ("end", "stop", "last", "final", "finish", "termination", "cease"),
    ("person", "individual", "people", "human", "personnel"),
    ("organization", "organisation", "agency", "institution", "unit"),
    ("vehicle", "conveyance", "transport", "craft"),
    ("vessel", "ship", "boat"),
    ("aircraft", "plane", "airplane"),
    ("event", "occurrence", "incident", "activity", "happening"),
    ("location", "place", "position", "site", "locale"),
    ("date", "day"),
    ("time", "datetime", "timestamp", "instant"),
    ("information", "info", "data", "detail"),
    ("weapon", "arm", "armament", "munition", "ordnance"),
    ("mission", "operation", "task", "sortie"),
    ("report", "record", "log", "account"),
    ("status", "state", "condition", "disposition"),
    ("quantity", "amount", "count", "number", "total"),
    ("name", "designation", "title", "label"),
    ("identifier", "identification", "key"),
    ("address", "residence", "domicile"),
    ("country", "nation", "state"),
    ("group", "team", "squad", "party", "cell"),
    ("commander", "leader", "chief", "head"),
    ("facility", "installation", "building", "structure"),
    ("equipment", "gear", "materiel", "apparatus"),
    ("route", "path", "course", "track"),
    ("destination", "target", "objective", "goal"),
    ("origin", "source", "start"),
    ("speed", "velocity", "rate"),
    ("height", "altitude", "elevation"),
    ("weight", "mass"),
    ("category", "class", "kind", "type", "sort"),
    ("message", "communication", "transmission", "signal"),
    ("injury", "wound", "casualty", "trauma"),
    ("doctor", "physician", "medic", "clinician"),
    ("hospital", "clinic", "infirmary"),
    ("supply", "provision", "stock", "inventory"),
    ("fuel", "petroleum", "gasoline"),
    ("road", "highway", "street"),
    ("bridge", "crossing", "span"),
    ("border", "boundary", "frontier"),
    ("capture", "seizure", "apprehension", "arrest"),
    ("observation", "sighting", "detection", "surveillance"),
    ("threat", "hazard", "danger", "risk"),
    ("priority", "precedence", "urgency"),
    ("schedule", "timetable", "plan", "calendar"),
    ("contract", "agreement", "arrangement"),
    ("cost", "price", "expense", "expenditure"),
    ("owner", "holder", "possessor", "proprietor"),
    ("registration", "enrollment", "license"),
    ("blood", "hematologic"),
    ("test", "exam", "examination", "assay", "screening"),
    ("result", "outcome", "finding"),
    ("family", "last", "surname"),
    ("given", "first", "forename"),
)


class SynonymLexicon:
    """Synset membership over stemmed terms.

    Each term maps to the set of synset ids it belongs to; two terms are
    synonymous iff their synset-id sets intersect.  Construction stems every
    entry, so callers may supply surface forms.
    """

    def __init__(self, synsets: Iterable[Sequence[str]] = DEFAULT_SYNSETS):
        self._memberships: dict[str, set[int]] = {}
        self._synsets: list[frozenset[str]] = []
        for synset_id, synset in enumerate(synsets):
            stemmed = frozenset(stem(term) for term in synset)
            if len(stemmed) < 2:
                raise ValueError(
                    f"synset #{synset_id} collapses to fewer than two stems: {synset!r}"
                )
            self._synsets.append(stemmed)
            for term in stemmed:
                self._memberships.setdefault(term, set()).add(synset_id)
        # Canonical representatives come from the *transitive closure* of
        # synset membership (terms like "last" chain the end-class and the
        # family-class): a plain min-over-own-synsets would give two
        # synonymous terms different canonicals.  Union-find over synsets
        # guarantees canonical(a) == canonical(b) whenever a and b are
        # linked through any synonym chain, at the cost of slightly
        # over-merging chained classes.
        parent: dict[str, str] = {}

        def find(term: str) -> str:
            root = term
            while parent.setdefault(root, root) != root:
                root = parent[root]
            while parent[term] != root:
                parent[term], term = root, parent[term]
            return root

        for synset in self._synsets:
            members = sorted(synset)
            head = find(members[0])
            for member in members[1:]:
                parent[find(member)] = head
        components: dict[str, set[str]] = {}
        for term in parent:
            components.setdefault(find(term), set()).add(term)
        self._canonical: dict[str, str] = {}
        for members in components.values():
            representative = min(members)
            for term in members:
                self._canonical[term] = representative

    @classmethod
    def default(cls) -> "SynonymLexicon":
        return cls(DEFAULT_SYNSETS)

    @classmethod
    def empty(cls) -> "SynonymLexicon":
        lexicon = cls.__new__(cls)
        lexicon._memberships = {}
        lexicon._synsets = []
        return lexicon

    def extend(self, synsets: Iterable[Sequence[str]]) -> "SynonymLexicon":
        """Return a new lexicon with additional synsets."""
        combined = [tuple(s) for s in self._synsets] + [tuple(s) for s in synsets]
        return SynonymLexicon(combined)

    def are_synonyms(self, left: str, right: str) -> bool:
        """True when the stems of ``left`` and ``right`` share a synset.

        A term is trivially a synonym of itself even when unlisted.
        """
        left_stem, right_stem = stem(left), stem(right)
        if left_stem == right_stem:
            return True
        left_sets = self._memberships.get(left_stem)
        right_sets = self._memberships.get(right_stem)
        if not left_sets or not right_sets:
            return False
        return bool(left_sets & right_sets)

    def expand(self, term: str) -> frozenset[str]:
        """All stems synonymous with ``term`` (including its own stem)."""
        term_stem = stem(term)
        result = {term_stem}
        for synset_id in self._memberships.get(term_stem, ()):
            result.update(self._synsets[synset_id])
        return frozenset(result)

    def canonical(self, term: str) -> str:
        """A canonical representative for the term's synonym component.

        Computed over the transitive closure of synset membership, so any
        two terms connected through a synonym chain share one canonical --
        a stable grouping key for set-overlap voters.  Unlisted terms are
        their own canonical.
        """
        term_stem = stem(term)
        return self._canonical.get(term_stem, term_stem)

    def __len__(self) -> int:
        return len(self._synsets)

    def __contains__(self, term: str) -> bool:
        return stem(term) in self._memberships
