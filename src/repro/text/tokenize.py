"""Identifier tokenization for schema element names.

Schema element names arrive in many conventions -- ``ALL_EVENT_VITALS``,
``DATETIME_FIRST_INFO``, ``personBirthDate``, ``Vehicle-Reg-No17`` -- and the
first step of Harmony-style linguistic preprocessing (Smith et al., CIDR 2009,
section 3.2) is to split them into word tokens.  This module implements that
splitting with explicit, deterministic rules:

* underscores, hyphens, dots, slashes and whitespace are separators;
* camelCase and PascalCase boundaries split (``birthDate`` -> ``birth date``);
* acronym runs are kept intact (``XMLSchema`` -> ``xml schema``);
* digit runs split from letters (``date156`` -> ``date 156``), and purely
  numeric tokens can optionally be dropped (they are usually version noise,
  e.g. the ``156`` in ``DATE_BEGIN_156``).

Everything is lowercased; the tokenizer never stems or expands abbreviations
(see :mod:`repro.text.stem` and :mod:`repro.text.abbrev` for those stages).
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

__all__ = ["tokenize", "split_identifier", "ngrams", "char_ngrams"]

# One regex pass extracts the primitive runs: acronym runs (optionally
# terminating a capitalised word), capitalised words, lowercase runs, digits.
_CAMEL_RE = re.compile(
    r"""
    [A-Z]+(?![a-z])      # acronym run: XML, HTTP, or final segment ID
    | [A-Z][a-z]+        # capitalised word: Date, Vehicle
    | [a-z]+             # lowercase run: date, vehicle
    | \d+                # digit run: 156
    """,
    re.VERBOSE,
)

_SEPARATORS_RE = re.compile(r"[\s_\-./:#,;()\[\]{}'\"|+*?!@$%^&<>=~`\\]+")


def split_identifier(name: str) -> list[str]:
    """Split a single identifier into lowercase word tokens.

    >>> split_identifier("DATETIME_FIRST_INFO")
    ['datetime', 'first', 'info']
    >>> split_identifier("personBirthDate")
    ['person', 'birth', 'date']
    >>> split_identifier("XMLSchemaV2")
    ['xml', 'schema', 'v', '2']
    """
    tokens: list[str] = []
    for chunk in _SEPARATORS_RE.split(name):
        if not chunk:
            continue
        tokens.extend(match.lower() for match in _CAMEL_RE.findall(chunk))
    return tokens


def tokenize(text: str, drop_digits: bool = False, min_length: int = 1) -> list[str]:
    """Tokenize free text or an identifier into lowercase tokens.

    Parameters
    ----------
    text:
        The input string; may be an identifier or documentation prose.
    drop_digits:
        When true, purely numeric tokens are removed.  Numeric suffixes in
        element names (``DATE_BEGIN_156``) are almost always system-assigned
        noise rather than semantics, so match voters set this.
    min_length:
        Tokens shorter than this many characters are removed.
    """
    tokens = split_identifier(text)
    if drop_digits:
        tokens = [token for token in tokens if not token.isdigit()]
    if min_length > 1:
        tokens = [token for token in tokens if len(token) >= min_length]
    return tokens


def ngrams(tokens: Iterable[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield sliding word n-grams over a token sequence.

    >>> list(ngrams(["a", "b", "c"], 2))
    [('a', 'b'), ('b', 'c')]
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    window = list(tokens)
    for start in range(len(window) - n + 1):
        yield tuple(window[start : start + n])


def char_ngrams(text: str, n: int = 3, pad: bool = True) -> list[str]:
    """Return character n-grams of ``text``, optionally padded at the ends.

    Padding with ``#`` gives boundary-sensitive grams, which improves the
    discriminative power of n-gram similarity on short identifiers.

    >>> char_ngrams("abc", 3)
    ['##a', '#ab', 'abc', 'bc#', 'c##']
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    source = text.lower()
    if pad:
        padding = "#" * (n - 1)
        source = f"{padding}{source}{padding}"
    if len(source) < n:
        return [source] if source else []
    return [source[i : i + n] for i in range(len(source) - n + 1)]
