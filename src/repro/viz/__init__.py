"""Visualization analytics: the line-drawing clutter model and ASCII views."""

from repro.viz.ascii import render_match_view, render_tree
from repro.viz.clutter import ViewState, clutter_for_result, compare_views
from repro.viz.linedrawing import LineDrawing, Viewport, count_crossings

__all__ = [
    "LineDrawing",
    "ViewState",
    "Viewport",
    "clutter_for_result",
    "compare_views",
    "count_crossings",
    "render_match_view",
    "render_tree",
]
