"""ASCII renderers: schema trees and small side-by-side match views.

Not a GUI -- these renderers exist so examples, the CLI and tests can *show*
schemata and matches in a terminal, and so humans can eyeball small cases.
"""

from __future__ import annotations

from repro.match.correspondence import Correspondence
from repro.schema.schema import Schema

__all__ = ["render_tree", "render_match_view"]


def render_tree(schema: Schema, max_elements: int | None = 60) -> str:
    """Indented tree rendering of a schema."""
    lines = [f"{schema.name} ({schema.kind}, {len(schema)} elements)"]
    count = 0
    truncated = False
    for root in schema.roots():
        for element in schema.subtree(root.element_id):
            if max_elements is not None and count >= max_elements:
                truncated = True
                break
            indent = "  " * schema.depth(element)
            suffix = f" : {element.declared_type}" if element.declared_type else ""
            lines.append(f"{indent}{element.name}{suffix}")
            count += 1
        if truncated:
            break
    if truncated:
        lines.append(f"  ... ({len(schema) - count} more elements)")
    return "\n".join(lines)


def render_match_view(
    source: Schema,
    target: Schema,
    correspondences: list[Correspondence],
    max_rows: int | None = 40,
) -> str:
    """Side-by-side element lists with numbered match lines.

    Matched pairs share a line number marker (the closest a terminal gets to
    the canonical line-drawing view); the marker column makes fan-out and
    cross-concept matches visible at a glance.
    """
    marker_of_source: dict[str, list[int]] = {}
    marker_of_target: dict[str, list[int]] = {}
    for number, correspondence in enumerate(correspondences, start=1):
        marker_of_source.setdefault(correspondence.source_id, []).append(number)
        marker_of_target.setdefault(correspondence.target_id, []).append(number)

    def rows(schema: Schema, markers: dict[str, list[int]]) -> list[str]:
        rendered = []
        for element in schema:
            indent = "  " * (schema.depth(element) - 1)
            tags = markers.get(element.element_id)
            tag_text = f" [{','.join(map(str, tags))}]" if tags else ""
            rendered.append(f"{indent}{element.name}{tag_text}")
        return rendered

    left_rows = rows(source, marker_of_source)
    right_rows = rows(target, marker_of_target)
    if max_rows is not None:
        left_rows = left_rows[:max_rows]
        right_rows = right_rows[:max_rows]
    width = max((len(row) for row in left_rows), default=10) + 2
    lines = [f"{source.name:<{width}}| {target.name}"]
    lines.append("-" * width + "+" + "-" * max(len(target.name) + 1, 10))
    for index in range(max(len(left_rows), len(right_rows))):
        left = left_rows[index] if index < len(left_rows) else ""
        right = right_rows[index] if index < len(right_rows) else ""
        lines.append(f"{left:<{width}}| {right}")
    lines.append(f"({len(correspondences)} match lines)")
    return "\n".join(lines)
