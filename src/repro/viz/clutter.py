"""Clutter analysis across view states: the E8 experiment's machinery.

Measures how the line-drawing view degrades with scale and how much the
paper's filters (confidence, sub-tree) recover -- the quantitative form of
Lesson #2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.filters.chain import FilterChain
from repro.filters.link import ConfidenceFilter
from repro.filters.node import SubtreeFilter
from repro.match.engine import MatchResult
from repro.match.selection import ThresholdSelection
from repro.viz.linedrawing import LineDrawing, Viewport

__all__ = ["ViewState", "compare_views", "clutter_for_result"]


@dataclass(frozen=True)
class ViewState:
    """One named view configuration and its clutter numbers."""

    name: str
    total_lines: float
    visible_lines: float
    dangling_lines: float
    visible_crossings: float
    offscreen_fraction: float

    def as_row(self) -> str:
        return (
            f"{self.name:<28} lines={self.total_lines:>7.0f} "
            f"visible={self.visible_lines:>6.0f} dangling={self.dangling_lines:>6.0f} "
            f"crossings={self.visible_crossings:>8.0f} "
            f"offscreen={self.offscreen_fraction:.0%}"
        )


def clutter_for_result(
    result: MatchResult,
    threshold: float,
    viewport: Viewport,
    chain: FilterChain | None = None,
    name: str = "view",
) -> ViewState:
    """Measure one view state: thresholded candidates, optional filters."""
    drawing = LineDrawing(result.source, result.target)
    candidates = result.candidates(ThresholdSelection(threshold))
    if chain is not None:
        candidates = chain.apply(candidates, result.source, result.target)
    numbers = drawing.clutter(candidates, viewport)
    return ViewState(name=name, **{key: numbers[key] for key in (
        "total_lines", "visible_lines", "dangling_lines",
        "visible_crossings", "offscreen_fraction",
    )})


def compare_views(
    result: MatchResult,
    threshold: float,
    viewport: Viewport,
    subtree_root_id: str,
    confidence_minimum: float = 0.4,
) -> list[ViewState]:
    """The Lesson-#2 comparison: raw view vs confidence vs sub-tree filters.

    Returns view states for: unfiltered, confidence-filtered, sub-tree
    filtered, and both filters together -- the progression an engineer walks
    through when the raw view is unusable.
    """
    states = [
        clutter_for_result(result, threshold, viewport, name="unfiltered"),
        clutter_for_result(
            result,
            threshold,
            viewport,
            chain=FilterChain(link_filters=[ConfidenceFilter(confidence_minimum)]),
            name=f"confidence>={confidence_minimum}",
        ),
        clutter_for_result(
            result,
            threshold,
            viewport,
            chain=FilterChain(source_filters=[SubtreeFilter(subtree_root_id)]),
            name="subtree filter",
        ),
        clutter_for_result(
            result,
            threshold,
            viewport,
            chain=FilterChain(
                link_filters=[ConfidenceFilter(confidence_minimum)],
                source_filters=[SubtreeFilter(subtree_root_id)],
            ),
            name="subtree + confidence",
        ),
    ]
    return states
