"""A quantitative model of the canonical line-drawing match UI.

Lesson #2: "'line-drawing' visualizations of schema match break down rapidly
as schema size grows much larger than the user's screen" and filters help by
"reducing the number of lines shown at any one time".  To reproduce that
claim without pixels we model the UI's measurable quantities:

* each schema is a vertical list of rows (display order = schema order);
* a viewport shows ``height`` consecutive rows per side;
* a correspondence is a line between its endpoints' row positions;
* **visible** lines have both endpoints inside the viewport, **dangling**
  lines have exactly one (the paper's "off-screen matches ... cluttering the
  display"), and **crossings** count intersecting line pairs -- the standard
  visual-clutter measure for bipartite layouts.

Crossings are counted exactly as inversions of the target positions when
lines are sorted by source position: O(n log n) via merge sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.match.correspondence import Correspondence
from repro.schema.schema import Schema

__all__ = ["Viewport", "LineDrawing", "count_crossings"]


def count_crossings(positions: Sequence[tuple[int, int]]) -> int:
    """Crossing pairs among lines given as (source_row, target_row).

    Two lines cross iff their source order and target order disagree.  Ties
    on either coordinate (fan-in/fan-out from one row) do not count as
    crossings.
    """
    ordered = sorted(positions)
    targets = [target for _, target in ordered]

    # Merge-sort inversion count over the target sequence; equal elements do
    # not count (stable merge takes from the left run first).
    def sort_count(sequence: list[int]) -> tuple[list[int], int]:
        if len(sequence) <= 1:
            return sequence, 0
        middle = len(sequence) // 2
        left, left_count = sort_count(sequence[:middle])
        right, right_count = sort_count(sequence[middle:])
        merged: list[int] = []
        inversions = left_count + right_count
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i] <= right[j]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
                inversions += len(left) - i
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged, inversions

    # Lines sharing a source row cannot cross each other by the definition
    # above, but the plain inversion count would count them when their
    # target rows are decreasing.  Sorting by (source, target) makes equal-
    # source groups ascending in target, so they contribute no inversions.
    _, crossings = sort_count(targets)
    return crossings


@dataclass(frozen=True)
class Viewport:
    """A window of ``height`` consecutive rows starting at ``offset``."""

    height: int
    source_offset: int = 0
    target_offset: int = 0

    def __post_init__(self) -> None:
        if self.height <= 0:
            raise ValueError(f"viewport height must be positive, got {self.height}")
        if self.source_offset < 0 or self.target_offset < 0:
            raise ValueError("viewport offsets must be non-negative")

    def shows_source(self, row: int) -> bool:
        return self.source_offset <= row < self.source_offset + self.height

    def shows_target(self, row: int) -> bool:
        return self.target_offset <= row < self.target_offset + self.height


class LineDrawing:
    """The measurable state of a line-drawing view over one match."""

    def __init__(self, source: Schema, target: Schema):
        self.source = source
        self.target = target
        self._source_row = {
            element.element_id: row for row, element in enumerate(source)
        }
        self._target_row = {
            element.element_id: row for row, element in enumerate(target)
        }

    def positions(
        self, correspondences: Iterable[Correspondence]
    ) -> list[tuple[int, int]]:
        """(source_row, target_row) for every drawable line."""
        return [
            (self._source_row[c.source_id], self._target_row[c.target_id])
            for c in correspondences
        ]

    def total_lines(self, correspondences: Iterable[Correspondence]) -> int:
        return len(self.positions(correspondences))

    def crossings(self, correspondences: Iterable[Correspondence]) -> int:
        """Intersecting line pairs over the whole drawing."""
        return count_crossings(self.positions(correspondences))

    def visible_lines(
        self, correspondences: Iterable[Correspondence], viewport: Viewport
    ) -> list[tuple[int, int]]:
        """Lines with both endpoints inside the viewport."""
        return [
            (source_row, target_row)
            for source_row, target_row in self.positions(correspondences)
            if viewport.shows_source(source_row) and viewport.shows_target(target_row)
        ]

    def dangling_lines(
        self, correspondences: Iterable[Correspondence], viewport: Viewport
    ) -> int:
        """Lines with exactly one endpoint on screen -- the clutter the
        paper's engineers worked to avoid ('criss-crossing lines, denoting
        off-screen matches')."""
        count = 0
        for source_row, target_row in self.positions(correspondences):
            source_shown = viewport.shows_source(source_row)
            target_shown = viewport.shows_target(target_row)
            if source_shown != target_shown:
                count += 1
        return count

    def clutter(
        self, correspondences: Iterable[Correspondence], viewport: Viewport
    ) -> dict[str, float]:
        """The full clutter report for one view state."""
        positions = self.positions(correspondences)
        visible = self.visible_lines(correspondences, viewport)
        dangling = self.dangling_lines(correspondences, viewport)
        return {
            "total_lines": float(len(positions)),
            "visible_lines": float(len(visible)),
            "dangling_lines": float(dangling),
            "visible_crossings": float(count_crossings(visible)),
            "offscreen_fraction": (
                (len(positions) - len(visible)) / len(positions)
                if positions
                else 0.0
            ),
        }
