"""Harmony's confidence model: evidence-aware votes and vote mergers."""

from repro.voting.confidence import DEFAULT_TAU, Vote, confidence, confidence_array
from repro.voting.merger import (
    AverageMerger,
    ConvictionLinearMerger,
    ConvictionWeightedMerger,
    MaxMerger,
    MinMerger,
    VoteMerger,
    WeightedLinearMerger,
    merger_by_name,
)

__all__ = [
    "AverageMerger",
    "ConvictionLinearMerger",
    "ConvictionWeightedMerger",
    "DEFAULT_TAU",
    "MaxMerger",
    "MinMerger",
    "Vote",
    "VoteMerger",
    "WeightedLinearMerger",
    "confidence",
    "confidence_array",
    "merger_by_name",
]
