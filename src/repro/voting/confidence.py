"""Harmony's evidence-aware confidence model.

Section 3.2 of the CIDR 2009 paper specifies the contract precisely:

    "For each [source element, target element] pair, each match voter
    establishes a confidence score in the range (-1, +1) where -1 indicates
    that there is definitely no correspondence, +1 indicates a definite
    correspondence and 0 indicates complete uncertainty. ... As a match voter
    observes more evidence, the confidence score is pushed towards -1 or +1.
    Compared to conventional schema matching tools, Harmony is novel in that
    it considers both the standard evidence ratio (e.g., number of shared
    words in the documentation) as well as the total amount of available
    evidence when calculating confidence scores."

We realise that with two inputs per vote:

* ``similarity`` s in [0, 1] -- the *evidence ratio* (shared-token fraction,
  cosine, type compatibility...).
* ``evidence`` e >= 0 -- the *total evidence mass* (how many tokens/characters
  were actually observed).

and the mapping::

    confidence(s, e) = (2s - 1) * saturation(e)
    saturation(e)    = 1 - exp(-e / tau)

so a vote with no evidence is exactly 0 (complete uncertainty), and the same
similarity ratio grows more assertive -- towards +1 or -1 -- as evidence
accumulates.  ``tau`` controls how much evidence counts as "a lot".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["confidence", "confidence_array", "Vote", "DEFAULT_TAU"]

DEFAULT_TAU = 3.0


def saturation(evidence: float, tau: float = DEFAULT_TAU) -> float:
    """How assertive a vote may be given ``evidence`` observations, in [0, 1)."""
    if evidence < 0:
        raise ValueError(f"evidence must be non-negative, got {evidence}")
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    return 1.0 - math.exp(-evidence / tau)


def confidence(similarity: float, evidence: float, tau: float = DEFAULT_TAU) -> float:
    """Map (similarity ratio, evidence mass) to a confidence in (-1, +1).

    >>> confidence(1.0, 0.0)
    0.0
    >>> confidence(1.0, 100.0) > 0.99
    True
    >>> confidence(0.0, 100.0) < -0.99
    True
    """
    if not 0.0 <= similarity <= 1.0:
        raise ValueError(f"similarity must be in [0, 1], got {similarity}")
    return (2.0 * similarity - 1.0) * saturation(evidence, tau)


def confidence_array(
    similarity: np.ndarray, evidence: np.ndarray, tau: float = DEFAULT_TAU
) -> np.ndarray:
    """Vectorised :func:`confidence` over whole similarity/evidence matrices."""
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    if np.any(evidence < 0):
        raise ValueError("evidence must be non-negative")
    clipped = np.clip(similarity, 0.0, 1.0)
    return (2.0 * clipped - 1.0) * (1.0 - np.exp(-evidence / tau))


@dataclass(frozen=True)
class Vote:
    """A single voter's opinion about one element pair.

    ``score`` is the confidence in (-1, +1); ``evidence`` is the evidence
    mass that produced it (kept for explanation and for evidence-aware
    merging); ``voter`` names the producer.
    """

    voter: str
    score: float
    evidence: float = 0.0

    def __post_init__(self) -> None:
        if not -1.0 <= self.score <= 1.0:
            raise ValueError(f"vote score must be in [-1, 1], got {self.score}")
        if self.evidence < 0:
            raise ValueError(f"vote evidence must be >= 0, got {self.evidence}")

    @property
    def conviction(self) -> float:
        """|score| -- how far from 'complete uncertainty' this vote is."""
        return abs(self.score)
