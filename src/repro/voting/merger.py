"""Vote mergers: combine per-voter confidence matrices into one match score.

The paper: "A vote merger combines the confidence scores into a single match
score ... based on how confident each match voter is regarding a given
correspondence" (section 3.2).

The Harmony-style merger therefore weighs each vote by its *conviction*
(|confidence|): a voter saying "0.02" (barely any evidence) is nearly ignored
when another says "0.9".  Conventional mergers -- plain average, weighted
linear (COMA-style), max, hwang -- are provided for the E11 ablation, which
isolates how much the evidence-aware behaviour matters.

All mergers operate on stacked numpy arrays of shape
``(n_voters, n_source, n_target)`` with entries in [-1, +1] and return one
``(n_source, n_target)`` array in [-1, +1].
"""

from __future__ import annotations

from typing import Callable, Mapping, Protocol, Sequence

import numpy as np

__all__ = [
    "VoteMerger",
    "ConvictionLinearMerger",
    "ConvictionWeightedMerger",
    "AverageMerger",
    "WeightedLinearMerger",
    "MaxMerger",
    "MinMerger",
    "merger_by_name",
]


class VoteMerger(Protocol):
    """Protocol all mergers satisfy."""

    name: str

    def merge(self, stacked: np.ndarray) -> np.ndarray:
        """Combine a (n_voters, n_source, n_target) stack into one matrix."""
        ...


def _validate_stack(stacked: np.ndarray) -> None:
    if stacked.ndim != 3:
        raise ValueError(
            f"expected (n_voters, n_source, n_target) stack, got shape {stacked.shape}"
        )
    if stacked.shape[0] == 0:
        raise ValueError("cannot merge zero voters")


class ConvictionWeightedMerger:
    """Harmony's merger: each vote weighted by its own conviction |c|.

    merged = sum(w_i * c_i * |c_i|^p) / sum(w_i * |c_i|^p), with the
    convention that a pair on which *no* voter has any conviction merges to
    0 (complete uncertainty).  ``power`` sharpens (p>1) or softens (p<1) the
    conviction weighting; ``voter_weights`` optionally layers per-voter
    importance priors on top (context voters matter more than raw string
    voters at enterprise scale -- see DESIGN.md's calibration notes).
    """

    def __init__(self, power: float = 1.0, voter_weights: Sequence[float] | None = None):
        if power <= 0:
            raise ValueError(f"power must be positive, got {power}")
        self.power = power
        if voter_weights is not None:
            weight_array = np.asarray(list(voter_weights), dtype=float)
            if weight_array.ndim != 1 or weight_array.size == 0:
                raise ValueError("voter_weights must be a non-empty 1-D sequence")
            if np.any(weight_array < 0) or weight_array.sum() == 0:
                raise ValueError("voter_weights must be non-negative, not all zero")
            self.voter_weights: np.ndarray | None = weight_array
        else:
            self.voter_weights = None
        self.name = "conviction_weighted"

    def merge(self, stacked: np.ndarray) -> np.ndarray:
        _validate_stack(stacked)
        weights = np.abs(stacked) ** self.power
        if self.voter_weights is not None:
            if self.voter_weights.size != stacked.shape[0]:
                raise ValueError(
                    f"{self.voter_weights.size} voter_weights for "
                    f"{stacked.shape[0]} voters"
                )
            weights = weights * self.voter_weights[:, None, None]
        weight_sum = weights.sum(axis=0)
        weighted = (stacked * weights).sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            merged = np.where(weight_sum > 0, weighted / weight_sum, 0.0)
        return np.clip(merged, -1.0, 1.0)


class ConvictionLinearMerger:
    """The production Harmony-style merger: conviction-scaled linear mix.

    Each vote enters as its *signed square* ``c * |c|`` -- so a vote's
    contribution grows with its own conviction (which already encodes the
    voter's evidence mass through the saturation term) -- and the results
    are combined linearly under fixed per-voter importance weights::

        merged = sum(w_i * c_i * |c_i|) / sum(w_i)

    Unlike :class:`ConvictionWeightedMerger`, the denominator is constant:
    a lone strongly-negative context vote is *not* renormalised away by
    several mildly-positive string votes.  On the case-study workload this
    is what separates true correspondences from the name-identical audit
    columns that recur under every container (see bench E11).
    """

    def __init__(self, voter_weights: Sequence[float] | None = None):
        if voter_weights is not None:
            weight_array = np.asarray(list(voter_weights), dtype=float)
            if weight_array.ndim != 1 or weight_array.size == 0:
                raise ValueError("voter_weights must be a non-empty 1-D sequence")
            if np.any(weight_array < 0) or weight_array.sum() == 0:
                raise ValueError("voter_weights must be non-negative, not all zero")
            self.voter_weights: np.ndarray | None = weight_array
        else:
            self.voter_weights = None
        self.name = "conviction_linear"

    def merge(self, stacked: np.ndarray) -> np.ndarray:
        _validate_stack(stacked)
        if self.voter_weights is None:
            weights = np.ones(stacked.shape[0])
        else:
            if self.voter_weights.size != stacked.shape[0]:
                raise ValueError(
                    f"{self.voter_weights.size} voter_weights for "
                    f"{stacked.shape[0]} voters"
                )
            weights = self.voter_weights
        signed_square = stacked * np.abs(stacked)
        merged = np.tensordot(weights / weights.sum(), signed_square, axes=(0, 0))
        return np.clip(merged, -1.0, 1.0)


class AverageMerger:
    """Plain arithmetic mean of all votes (evidence-blind baseline)."""

    name = "average"

    def merge(self, stacked: np.ndarray) -> np.ndarray:
        _validate_stack(stacked)
        return np.clip(stacked.mean(axis=0), -1.0, 1.0)


class WeightedLinearMerger:
    """COMA-style fixed linear combination with per-voter weights.

    Weights are given by voter position; they are normalised to sum to 1.
    """

    name = "weighted_linear"

    def __init__(self, weights: Sequence[float]):
        weight_array = np.asarray(list(weights), dtype=float)
        if weight_array.ndim != 1 or weight_array.size == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        if np.any(weight_array < 0):
            raise ValueError("weights must be non-negative")
        total = weight_array.sum()
        if total == 0:
            raise ValueError("at least one weight must be positive")
        self._weights = weight_array / total

    def merge(self, stacked: np.ndarray) -> np.ndarray:
        _validate_stack(stacked)
        if stacked.shape[0] != self._weights.size:
            raise ValueError(
                f"{self._weights.size} weights for {stacked.shape[0]} voters"
            )
        merged = np.tensordot(self._weights, stacked, axes=(0, 0))
        return np.clip(merged, -1.0, 1.0)


class MaxMerger:
    """Optimistic merger: the vote with the largest absolute value wins.

    Keeps the *signed* extreme, so a strong negative vote can veto.
    """

    name = "max_conviction"

    def merge(self, stacked: np.ndarray) -> np.ndarray:
        _validate_stack(stacked)
        flat_index = np.abs(stacked).argmax(axis=0)
        rows, cols = np.indices(flat_index.shape)
        return stacked[flat_index, rows, cols]


class MinMerger:
    """Pessimistic merger: the smallest (most negative) vote wins."""

    name = "min"

    def merge(self, stacked: np.ndarray) -> np.ndarray:
        _validate_stack(stacked)
        return stacked.min(axis=0)


_REGISTRY: Mapping[str, Callable[[], VoteMerger]] = {
    "conviction_linear": ConvictionLinearMerger,
    "conviction_weighted": ConvictionWeightedMerger,
    "average": AverageMerger,
    "max_conviction": MaxMerger,
    "min": MinMerger,
}


def merger_by_name(name: str) -> VoteMerger:
    """Instantiate a registered merger by name (for CLI/config use)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown merger {name!r}; known: {known}") from None
