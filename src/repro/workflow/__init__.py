"""Human workflow: sessions, validation oracles, team planning, effort."""

from repro.workflow.effort import (
    SECONDS_PER_PERSON_DAY,
    EffortEstimate,
    EffortModel,
    calibrate,
)
from repro.workflow.session import ConceptRun, MatchingSession, SessionReport
from repro.workflow.tasks import MatchTask, MemberQueue, TaskState, TeamPlan, plan_team
from repro.workflow.validation import GroundTruthOracle, NoisyOracle, ValidationOracle

__all__ = [
    "ConceptRun",
    "EffortEstimate",
    "EffortModel",
    "GroundTruthOracle",
    "MatchTask",
    "MatchingSession",
    "MemberQueue",
    "NoisyOracle",
    "SECONDS_PER_PERSON_DAY",
    "SessionReport",
    "TaskState",
    "TeamPlan",
    "ValidationOracle",
    "calibrate",
    "plan_team",
]
