"""Human effort model: candidate counts -> person-days.

The case study "required three days of effort, by two human integration
engineers" (section 3.3) -- six person-days for roughly a thousand inspected
candidates plus 191 concepts of summarization work.  The model below prices
the workflow's atoms:

* inspecting one surfaced candidate (read both elements, decide, annotate);
* setting up one increment (choose the sub-tree, adjust filters, export);
* labelling one concept during SUMMARIZE.

Defaults are calibrated so the reproduced case-study session lands near the
paper's six person-days; :func:`calibrate` re-fits the per-candidate price
to any observed anchor.  The same model prices the *naive* alternative
(reviewing every thresholded cell of the full matrix with no summarization),
which is what E7 compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.workflow.session import SessionReport

__all__ = ["EffortModel", "EffortEstimate", "calibrate"]

SECONDS_PER_PERSON_DAY = 8 * 3600.0


@dataclass(frozen=True)
class EffortEstimate:
    """A priced activity breakdown."""

    inspection_seconds: float
    increment_overhead_seconds: float
    summarization_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.inspection_seconds
            + self.increment_overhead_seconds
            + self.summarization_seconds
        )

    @property
    def person_days(self) -> float:
        return self.total_seconds / SECONDS_PER_PERSON_DAY

    def wall_days(self, team_size: int) -> float:
        """Calendar days for a perfectly parallel team of ``team_size``."""
        if team_size <= 0:
            raise ValueError(f"team_size must be positive, got {team_size}")
        return self.person_days / team_size


@dataclass(frozen=True)
class EffortModel:
    """Per-activity prices in seconds."""

    seconds_per_candidate: float = 18.0
    seconds_per_increment: float = 180.0
    seconds_per_concept_label: float = 45.0

    def __post_init__(self) -> None:
        for name in (
            "seconds_per_candidate",
            "seconds_per_increment",
            "seconds_per_concept_label",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def session_estimate(
        self, report: SessionReport, n_concepts_labelled: int
    ) -> EffortEstimate:
        """Price a finished concept-at-a-time session."""
        return EffortEstimate(
            inspection_seconds=(
                report.total_candidates_inspected * self.seconds_per_candidate
            ),
            increment_overhead_seconds=len(report.runs) * self.seconds_per_increment,
            summarization_seconds=n_concepts_labelled * self.seconds_per_concept_label,
        )

    def naive_estimate(self, n_candidates: int) -> EffortEstimate:
        """Price the no-summarization alternative: one giant review queue."""
        return EffortEstimate(
            inspection_seconds=n_candidates * self.seconds_per_candidate,
            increment_overhead_seconds=self.seconds_per_increment,
            summarization_seconds=0.0,
        )


def calibrate(
    model: EffortModel,
    report: SessionReport,
    n_concepts_labelled: int,
    anchor_person_days: float = 6.0,
) -> EffortModel:
    """Re-fit ``seconds_per_candidate`` so the session prices at the anchor.

    The paper gives one anchor -- 2 engineers x 3 days -- so only the
    dominant price (candidate inspection) is re-fit; overheads keep their
    defaults.  Returns a new model.
    """
    if anchor_person_days <= 0:
        raise ValueError("anchor_person_days must be positive")
    fixed = (
        len(report.runs) * model.seconds_per_increment
        + n_concepts_labelled * model.seconds_per_concept_label
    )
    target_inspection = anchor_person_days * SECONDS_PER_PERSON_DAY - fixed
    if report.total_candidates_inspected == 0 or target_inspection <= 0:
        return model
    return replace(
        model,
        seconds_per_candidate=target_inspection / report.total_candidates_inspected,
    )
