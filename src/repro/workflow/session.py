"""The concept-at-a-time matching session: the paper's section 3.3 workflow.

    summarize -> (per concept) incremental match -> threshold filter ->
    human validation -> record matches and annotations -> next concept

:class:`MatchingSession` drives that loop over a source summary, an
incremental matcher, and a validation oracle, collecting everything the
paper's deliverable needed: validated correspondences, per-increment
statistics (the 10^4-10^5 pair counts), inspection counts (the effort
model's input) and concept-level matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.match.correspondence import Correspondence, CorrespondenceSet, MatchStatus
from repro.match.engine import HarmonyMatchEngine, MatchResult

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.service import MatchService
from repro.match.incremental import IncrementalMatcher
from repro.match.selection import ThresholdSelection
from repro.schema.schema import Schema
from repro.summarize.conceptmatch import ConceptMatch, match_concepts
from repro.summarize.concepts import Summary
from repro.workflow.validation import ValidationOracle

__all__ = ["ConceptRun", "SessionReport", "MatchingSession"]


@dataclass
class ConceptRun:
    """Statistics for one concept increment."""

    concept_id: str
    concept_label: str
    n_subtree_elements: int
    n_pairs_considered: int
    n_candidates_inspected: int
    n_accepted: int
    elapsed_seconds: float


@dataclass
class SessionReport:
    """Everything a finished session knows."""

    runs: list[ConceptRun] = field(default_factory=list)
    validated: CorrespondenceSet = field(default_factory=CorrespondenceSet)
    concept_matches: list[ConceptMatch] = field(default_factory=list)

    @property
    def total_pairs_considered(self) -> int:
        return sum(run.n_pairs_considered for run in self.runs)

    @property
    def total_candidates_inspected(self) -> int:
        return sum(run.n_candidates_inspected for run in self.runs)

    @property
    def total_accepted(self) -> int:
        return sum(run.n_accepted for run in self.runs)

    def pairs_per_increment(self) -> list[int]:
        """The section-3.3 series: candidate pairs per concept increment."""
        return [run.n_pairs_considered for run in self.runs]


class MatchingSession:
    """Drive the full concept-at-a-time workflow over one schema pair.

    Parameters
    ----------
    source, target:
        The schema pair (source carries the summary being iterated).
    source_summary:
        The SUMMARIZE(source) output organising the session.
    oracle:
        The validating engineer (ground-truth or noisy).
    engine:
        Match engine; when omitted, obtained from ``service`` (or a fresh
        :class:`~repro.service.MatchService`) so sessions share the
        service-wide profile cache.
    service:
        Optional service supplying the engine and its shared caches.
    candidate_threshold:
        Score above which a candidate is surfaced for inspection -- the
        confidence filter setting of section 3.3.
    reviewer:
        Name recorded on accepted/rejected correspondences.
    """

    def __init__(
        self,
        source: Schema,
        target: Schema,
        source_summary: Summary,
        oracle: ValidationOracle,
        engine: HarmonyMatchEngine | None = None,
        candidate_threshold: float = 0.10,
        reviewer: str = "engineer",
        service: "MatchService | None" = None,
    ):
        if source_summary.schema is not source:
            raise ValueError("source_summary must summarise the source schema")
        self.source = source
        self.target = target
        self.summary = source_summary
        self.oracle = oracle
        if engine is None:
            from repro.service import MatchService

            engine = (service if service is not None else MatchService()).engine()
        self.engine = engine
        self.candidate_threshold = candidate_threshold
        self.reviewer = reviewer
        self._incremental = IncrementalMatcher(source, target, engine=self.engine)
        self.report = SessionReport()
        self._full_result: MatchResult | None = None

    # ------------------------------------------------------------------
    def concept_queue(self) -> list[str]:
        """Concepts in descending size order (engineers did big ones first)."""
        sizes = self.summary.concept_sizes()
        return sorted(sizes, key=lambda concept_id: (-sizes[concept_id], concept_id))

    def run_concept(self, concept_id: str) -> ConceptRun:
        """One increment: match the concept's elements against all of target."""
        concept = self.summary.concept(concept_id)
        element_ids = self.summary.elements_of(concept_id)
        if not element_ids:
            run = ConceptRun(
                concept_id=concept_id,
                concept_label=concept.label,
                n_subtree_elements=0,
                n_pairs_considered=0,
                n_candidates_inspected=0,
                n_accepted=0,
                elapsed_seconds=0.0,
            )
            self.report.runs.append(run)
            return run

        result = self.engine.match(
            self.source, self.target, source_element_ids=element_ids
        )
        candidates = result.candidates(ThresholdSelection(self.candidate_threshold))
        accepted = 0
        for candidate in candidates:
            if self.oracle.judge(candidate.source_id, candidate.target_id):
                self.report.validated.add(
                    candidate.accept(
                        by=self.reviewer,
                        annotation=self.oracle.annotation(
                            candidate.source_id, candidate.target_id
                        ),
                    )
                )
                accepted += 1
            else:
                self.report.validated.add(candidate.reject(by=self.reviewer))

        run = ConceptRun(
            concept_id=concept_id,
            concept_label=concept.label,
            n_subtree_elements=len(element_ids),
            n_pairs_considered=result.n_pairs,
            n_candidates_inspected=len(candidates),
            n_accepted=accepted,
            elapsed_seconds=result.elapsed_seconds,
        )
        self.report.runs.append(run)
        return run

    def run_all(self, target_summary: Summary | None = None) -> SessionReport:
        """Run every concept, then record concept-level matches.

        ``target_summary`` (when given) enables the concept-level match pass
        that produced the paper's 24 label-to-label matches.
        """
        for concept_id in self.concept_queue():
            self.run_concept(concept_id)
        if target_summary is not None:
            self.report.concept_matches = match_concepts(
                self.summary,
                target_summary,
                self._full_match(),
            )
        return self.report

    def _full_match(self) -> MatchResult:
        if self._full_result is None:
            self._full_result = self.engine.match(self.source, self.target)
        return self._full_result

    # ------------------------------------------------------------------
    def accepted_pairs(self) -> set[tuple[str, str]]:
        return {
            correspondence.pair
            for correspondence in self.report.validated
            if correspondence.status is MatchStatus.ACCEPTED
        }

    def matched_target_ids(self) -> set[str]:
        """Target elements the session validated (the 34% numerator)."""
        return {
            correspondence.target_id
            for correspondence in self.report.validated
            if correspondence.status is MatchStatus.ACCEPTED
        }
