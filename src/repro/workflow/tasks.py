"""Integration-team support: partitioning a matching effort into task queues.

Section 5: "how can we divide very large matching workflows into modular
task queues appropriate to each team member ... to support a team-based
matching effort?"

The natural unit of work is the concept increment (that is how the paper's
two engineers split the job).  :func:`plan_team` partitions the concept list
over team members, balancing *estimated inspection workload* (longest-
processing-time-first greedy, within each member FIFO by size), and reports
the expected makespan under an effort model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.summarize.concepts import Summary
from repro.workflow.effort import SECONDS_PER_PERSON_DAY, EffortModel

__all__ = ["TaskState", "MatchTask", "MemberQueue", "TeamPlan", "plan_team"]


class TaskState(Enum):
    PENDING = "pending"
    IN_PROGRESS = "in_progress"
    DONE = "done"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class MatchTask:
    """One concept increment assigned to one team member."""

    concept_id: str
    concept_label: str
    n_elements: int
    estimated_pairs: int
    estimated_seconds: float
    assignee: str
    state: TaskState = TaskState.PENDING

    def start(self) -> None:
        if self.state is not TaskState.PENDING:
            raise ValueError(f"task {self.concept_id!r} is {self.state}")
        self.state = TaskState.IN_PROGRESS

    def finish(self) -> None:
        if self.state is not TaskState.IN_PROGRESS:
            raise ValueError(f"task {self.concept_id!r} is {self.state}")
        self.state = TaskState.DONE


@dataclass
class MemberQueue:
    """One team member's ordered queue."""

    member: str
    tasks: list[MatchTask] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(task.estimated_seconds for task in self.tasks)

    @property
    def total_pairs(self) -> int:
        return sum(task.estimated_pairs for task in self.tasks)

    def next_task(self) -> MatchTask | None:
        for task in self.tasks:
            if task.state is TaskState.PENDING:
                return task
        return None


@dataclass
class TeamPlan:
    """The partitioned workload with balance statistics."""

    queues: list[MemberQueue]

    @property
    def makespan_seconds(self) -> float:
        """The busiest member's load -- the plan's wall-clock bound."""
        return max((queue.total_seconds for queue in self.queues), default=0.0)

    @property
    def makespan_days(self) -> float:
        return self.makespan_seconds / SECONDS_PER_PERSON_DAY

    @property
    def balance(self) -> float:
        """min/max load ratio in [0, 1]; 1.0 is a perfectly fair split."""
        loads = [queue.total_seconds for queue in self.queues]
        if not loads or max(loads) == 0:
            return 1.0
        return min(loads) / max(loads)

    def queue_of(self, member: str) -> MemberQueue:
        for queue in self.queues:
            if queue.member == member:
                return queue
        raise KeyError(f"no queue for member {member!r}")

    def all_tasks(self) -> list[MatchTask]:
        return [task for queue in self.queues for task in queue.tasks]


def plan_team(
    summary: Summary,
    target_size: int,
    members: list[str],
    model: EffortModel | None = None,
    expected_candidate_rate: float = 0.002,
) -> TeamPlan:
    """Partition a summarized matching effort across team members.

    Parameters
    ----------
    summary:
        SUMMARIZE(source) -- its concepts are the work units.
    target_size:
        Element count of the opposing schema (pairs = concept size x this).
    members:
        Team member names (at least one).
    model:
        Effort model pricing each task.
    expected_candidate_rate:
        Expected fraction of an increment's pairs that clear the confidence
        filter and need human inspection (the case study saw ~0.1-0.3%).
    """
    if not members:
        raise ValueError("plan_team needs at least one member")
    if not 0.0 <= expected_candidate_rate <= 1.0:
        raise ValueError("expected_candidate_rate must be a probability")
    model = model if model is not None else EffortModel()

    sizes = summary.concept_sizes()
    tasks_spec = []
    for concept in summary.concepts:
        n_elements = sizes[concept.concept_id]
        estimated_pairs = n_elements * target_size
        estimated_candidates = estimated_pairs * expected_candidate_rate
        estimated_seconds = (
            estimated_candidates * model.seconds_per_candidate
            + model.seconds_per_increment
        )
        tasks_spec.append(
            (concept.concept_id, concept.label, n_elements, estimated_pairs, estimated_seconds)
        )

    # Longest-processing-time-first onto the currently lightest queue.
    queues = [MemberQueue(member=member) for member in members]
    for concept_id, label, n_elements, pairs, seconds in sorted(
        tasks_spec, key=lambda spec: (-spec[4], spec[0])
    ):
        lightest = min(queues, key=lambda queue: (queue.total_seconds, queue.member))
        lightest.tasks.append(
            MatchTask(
                concept_id=concept_id,
                concept_label=label,
                n_elements=n_elements,
                estimated_pairs=pairs,
                estimated_seconds=seconds,
                assignee=lightest.member,
            )
        )
    return TeamPlan(queues=queues)
