"""Validation oracles: scripted stand-ins for the human integration engineer.

The paper's workflow has humans examining candidates above a threshold and
recording valid matches.  Reproducing that loop needs a *judge*; we provide:

* :class:`GroundTruthOracle` -- perfect judgement from the generator's truth
  (an idealised engineer);
* :class:`NoisyOracle` -- human-like: misses some true matches and accepts
  some spurious ones, at configurable deterministic rates.

Both also assign the semantic annotation recorded on acceptance.
"""

from __future__ import annotations

import random
from typing import Iterable, Protocol

from repro.match.correspondence import SemanticAnnotation

__all__ = ["ValidationOracle", "GroundTruthOracle", "NoisyOracle"]


class ValidationOracle(Protocol):
    """Anything that can play the validating engineer."""

    def judge(self, source_id: str, target_id: str) -> bool:
        """True = record the correspondence as valid."""
        ...

    def annotation(self, source_id: str, target_id: str) -> SemanticAnnotation:
        """The semantics to record when accepting."""
        ...


class GroundTruthOracle:
    """Accept exactly the generator's ground-truth pairs."""

    def __init__(self, truth_pairs: Iterable[tuple[str, str]]):
        self._truth = set(truth_pairs)

    def judge(self, source_id: str, target_id: str) -> bool:
        return (source_id, target_id) in self._truth

    def annotation(self, source_id: str, target_id: str) -> SemanticAnnotation:
        return SemanticAnnotation.EQUIVALENT


class NoisyOracle:
    """A fallible engineer: false-negative and false-positive rates.

    Decisions are deterministic per pair (hash-seeded), so repeated
    judgements of the same pair agree -- like a human with consistent blind
    spots rather than a coin flipper.
    """

    def __init__(
        self,
        truth_pairs: Iterable[tuple[str, str]],
        false_negative_rate: float = 0.1,
        false_positive_rate: float = 0.02,
        seed: int = 0,
    ):
        for name, rate in (
            ("false_negative_rate", false_negative_rate),
            ("false_positive_rate", false_positive_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability, got {rate}")
        self._truth = set(truth_pairs)
        self.false_negative_rate = false_negative_rate
        self.false_positive_rate = false_positive_rate
        self.seed = seed

    def _roll(self, source_id: str, target_id: str) -> float:
        return random.Random(f"{self.seed}::{source_id}::{target_id}").random()

    def judge(self, source_id: str, target_id: str) -> bool:
        roll = self._roll(source_id, target_id)
        if (source_id, target_id) in self._truth:
            return roll >= self.false_negative_rate
        return roll < self.false_positive_rate

    def annotation(self, source_id: str, target_id: str) -> SemanticAnnotation:
        # A fallible engineer occasionally records weaker semantics.
        roll = self._roll(f"ann::{source_id}", target_id)
        if roll < 0.08:
            return SemanticAnnotation.RELATED
        if roll < 0.12:
            return SemanticAnnotation.IS_A
        return SemanticAnnotation.EQUIVALENT
