"""Shared fixtures: small hand-written schemata and generated pairs."""

from __future__ import annotations

import pytest

from repro.schema import parse_ddl, parse_xsd
from repro.synthetic import PairSpec, generate_pair

SAMPLE_DDL = """
CREATE TABLE ALL_EVENT_VITALS (
    EVENT_ID NUMBER(10) PRIMARY KEY, -- unique identifier for the event
    DATE_BEGIN_156 DATE, -- date the event began
    DATE_END_157 DATE, -- date the event ended
    EVENT_TYPE_CD VARCHAR2(8) NOT NULL, -- category code of the event
    SEVERITY_LVL NUMBER(2) -- severity level of the event
);

CREATE TABLE PERSON_MASTER (
    PERSON_ID NUMBER(10) PRIMARY KEY, -- unique person identifier
    LAST_NM VARCHAR2(40), -- family name of the person
    FIRST_NM VARCHAR2(40), -- given name of the person
    BIRTH_DT DATE, -- date of birth of the person
    BLOOD_TYPE_CD CHAR(3) -- blood type of the person
);

CREATE VIEW ACTIVE_PERSONS AS SELECT PERSON_ID, LAST_NM FROM PERSON_MASTER;

COMMENT ON TABLE ALL_EVENT_VITALS IS 'Vital facts about operational events';
COMMENT ON COLUMN PERSON_MASTER.BLOOD_TYPE_CD IS 'ABO blood group of the person';
"""

SAMPLE_XSD = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:complexType name="Event">
    <xs:annotation><xs:documentation>an operationally significant event</xs:documentation></xs:annotation>
    <xs:sequence>
      <xs:element name="EventIdentifier" type="xs:long">
        <xs:annotation><xs:documentation>unique identifier of this event</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="DATETIME_FIRST_INFO" type="xs:dateTime">
        <xs:annotation><xs:documentation>datetime the event started</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="Category" type="xs:string" minOccurs="0"/>
    </xs:sequence>
    <xs:attribute name="verified" type="xs:boolean" use="optional"/>
  </xs:complexType>
  <xs:complexType name="Individual">
    <xs:sequence>
      <xs:element name="FamilyName" type="xs:string">
        <xs:annotation><xs:documentation>family name of the individual</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="DateOfBirth" type="xs:date"/>
      <xs:element name="BloodGroup" type="xs:string">
        <xs:annotation><xs:documentation>ABO blood group of the individual</xs:documentation></xs:annotation>
      </xs:element>
    </xs:sequence>
  </xs:complexType>
  <xs:element name="EventReport" type="Event"/>
</xs:schema>
"""


@pytest.fixture(scope="session")
def sample_relational():
    return parse_ddl(SAMPLE_DDL, name="SA_sample")


@pytest.fixture(scope="session")
def sample_xml():
    return parse_xsd(SAMPLE_XSD, name="SB_sample")


@pytest.fixture(scope="session")
def small_pair():
    """A small generated pair with known ground truth (fast to match)."""
    return generate_pair(PairSpec(), seed=42)


@pytest.fixture(scope="session")
def small_pair_result(small_pair):
    """Full engine result on the small pair (computed once per session)."""
    from repro.match import HarmonyMatchEngine

    engine = HarmonyMatchEngine()
    return engine.match(small_pair.source.schema, small_pair.target.schema)
