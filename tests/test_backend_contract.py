"""The executable StorageBackend contract, run against every backend.

Every test in this module is parametrized over the three shipping
backends -- in-memory, legacy single-connection SQLite, pooled-WAL
SQLite -- and asserts IDENTICAL behaviour: a backend that passes here is
a drop-in under :class:`~repro.repository.store.MetadataRepository`.
The protocol prose lives on
:class:`~repro.repository.backends.StorageBackend`; this file is the
version that can fail.

Covered per backend: every protocol method; clock ownership (which
mutator bumps which clock, monotonicity, no bumps from reads or
fingerprint writes); delete-then-read; bulk-write atomicity (an iterable
that raises mid-batch stores nothing and moves no clock); sequence
reservation; and a Hypothesis round-trip -- an arbitrary
:class:`~repro.repository.store.StoredMatch` (unicode ids, negative
scores, every status/annotation/method, composed/flipped provenance
notes) comes back byte-identical from storage.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.match import Correspondence, MatchStatus, SemanticAnnotation
from repro.repository import (
    AssertionMethod,
    InMemoryBackend,
    PooledSqliteBackend,
    ProvenanceRecord,
    SqliteBackend,
    StorageBackend,
    open_backend,
)
from repro.repository.store import StoredMatch

BACKENDS = ("memory", "sqlite", "pooled")


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    """One backend instance per param; closed (and reopenable) afterwards."""
    opened = _open(request.param, tmp_path)
    yield opened
    opened.close()


def _open(kind: str, tmp_path) -> StorageBackend:
    path = None if kind == "memory" else str(tmp_path / "contract.db")
    return open_backend(kind, path)


def _match(
    source_schema: str = "orders",
    target_schema: str = "invoices",
    source_id: str = "orders.total",
    target_id: str = "invoices.amount",
    score: float = 0.83,
    sequence: int = 1,
    **provenance_overrides,
) -> StoredMatch:
    return StoredMatch(
        source_schema=source_schema,
        target_schema=target_schema,
        correspondence=Correspondence(
            source_id=source_id,
            target_id=target_id,
            score=score,
            status=MatchStatus.ACCEPTED,
            annotation=SemanticAnnotation.EQUIVALENT,
            asserted_by="ingrid",
            note="validated in review",
        ),
        provenance=ProvenanceRecord(
            asserted_by=provenance_overrides.pop("asserted_by", "ingrid"),
            method=provenance_overrides.pop("method", AssertionMethod.HUMAN_VALIDATED),
            confidence=provenance_overrides.pop("confidence", 0.9),
            sequence=sequence,
            **provenance_overrides,
        ),
    )


class TestProtocolConformance:
    def test_satisfies_the_runtime_protocol(self, backend):
        assert isinstance(backend, StorageBackend)

    def test_serialize_calls_declaration(self, backend):
        # The repository keys its whole locking discipline off this flag;
        # it must be a plain bool, and only the pooled backend may claim
        # concurrent-call safety.
        assert isinstance(backend.serialize_calls, bool)
        expected = not isinstance(backend, PooledSqliteBackend)
        assert backend.serialize_calls is expected

    def test_describe_names_the_kind(self, backend):
        description = backend.describe()
        assert description["kind"] in ("memory", "sqlite", "pooled-wal")


class TestSchemata:
    def test_put_get_roundtrip(self, backend):
        payload = {"name": "orders", "elements": [{"id": "orders.total"}]}
        backend.put_schema("orders", payload)
        assert backend.get_schema("orders") == payload

    def test_get_missing_returns_none(self, backend):
        assert backend.get_schema("nope") is None

    def test_names_are_sorted(self, backend):
        for name in ("zeta", "alpha", "mid"):
            backend.put_schema(name, {"name": name})
        assert backend.schema_names() == ["alpha", "mid", "zeta"]

    def test_put_replaces_in_place(self, backend):
        backend.put_schema("orders", {"v": 1})
        backend.put_schema("orders", {"v": 2})
        assert backend.get_schema("orders") == {"v": 2}
        assert backend.schema_names() == ["orders"]

    def test_delete_then_read(self, backend):
        backend.put_schema("orders", {"v": 1})
        backend.put_fingerprint("orders", {"hash": "h", "terms": {}})
        backend.add_matches([_match()])
        backend.delete_schema("orders")
        assert backend.get_schema("orders") is None
        assert backend.schema_names() == []
        # The cascade: fingerprint and every touching match go too.
        assert backend.get_fingerprint("orders") is None
        assert backend.all_matches() == []

    def test_delete_missing_is_a_noop_on_data(self, backend):
        backend.put_schema("orders", {"v": 1})
        backend.delete_schema("never-registered")
        assert backend.schema_names() == ["orders"]


class TestBulkSchemata:
    """The batched ingestion surface: put_schemas / get_schemas /
    get_fingerprints, identical on every backend."""

    def test_put_and_get_many(self, backend):
        backend.put_schemas({f"s{i}": {"v": i} for i in range(5)})
        assert backend.get_schemas(["s0", "s3", "nope"]) == {
            "s0": {"v": 0},
            "s3": {"v": 3},
        }
        assert backend.schema_names() == [f"s{i}" for i in range(5)]

    def test_bulk_reads_omit_missing_names(self, backend):
        assert backend.get_schemas(["ghost"]) == {}
        assert backend.get_fingerprints(["ghost"]) == {}

    def test_fingerprints_land_in_the_same_batch(self, backend):
        backend.put_schemas(
            {"orders": {"v": 1}, "invoices": {"v": 2}},
            fingerprints={"orders": {"hash": "h1", "terms": {"total": 1}}},
        )
        assert backend.get_fingerprint("orders") == {
            "hash": "h1",
            "terms": {"total": 1},
        }
        # A payload written WITHOUT a fingerprint has none.
        assert backend.get_fingerprint("invoices") is None
        assert backend.get_fingerprints(["orders", "invoices"]) == {
            "orders": {"hash": "h1", "terms": {"total": 1}},
        }

    def test_rewrite_without_fingerprint_drops_the_stale_one(self, backend):
        backend.put_schema("orders", {"v": 1})
        backend.put_fingerprint("orders", {"hash": "old", "terms": {}})
        backend.put_schemas({"orders": {"v": 2}})
        assert backend.get_schema("orders") == {"v": 2}
        assert backend.get_fingerprint("orders") is None

    def test_bumps_generation_once_per_payload(self, backend):
        generation, match_generation = backend.clocks()
        backend.put_schemas(
            {f"s{i}": {"v": i} for i in range(7)},
            fingerprints={"s0": {"hash": "h", "terms": {}}},
        )
        assert backend.clocks() == (generation + 7, match_generation)

    def test_empty_batch_is_a_noop(self, backend):
        clocks = backend.clocks()
        backend.put_schemas({})
        assert backend.clocks() == clocks
        assert backend.schema_names() == []

    def test_batches_beyond_the_in_clause_chunk(self, backend):
        # 600 names crosses the SQLite IN-clause chunking boundary (500).
        names = [f"s{i:04d}" for i in range(600)]
        backend.put_schemas(
            {name: {"n": name} for name in names},
            fingerprints={name: {"hash": name, "terms": {}} for name in names},
        )
        assert backend.get_schemas(names) == {name: {"n": name} for name in names}
        fingerprints = backend.get_fingerprints(names)
        assert len(fingerprints) == 600
        assert fingerprints["s0599"] == {"hash": "s0599", "terms": {}}


class TestMatches:
    def test_add_and_read_back_in_insertion_order(self, backend):
        first = _match(source_id="a.x", target_id="b.x", sequence=1)
        second = _match(source_id="a.y", target_id="b.y", sequence=2)
        backend.add_matches([first, second])
        assert backend.all_matches() == [first, second]

    def test_matches_touching_either_side(self, backend):
        ab = _match("a", "b", sequence=1)
        bc = _match("b", "c", sequence=2)
        ca = _match("c", "a", sequence=3)
        backend.add_matches([ab, bc, ca])
        assert backend.matches_touching("a") == [ab, ca]
        assert backend.matches_touching("b") == [ab, bc]
        assert backend.matches_touching("nope") == []

    def test_matches_between_is_direction_agnostic(self, backend):
        ab = _match("a", "b", sequence=1)
        ba = _match("b", "a", sequence=2)
        bc = _match("b", "c", sequence=3)
        backend.add_matches([ab, ba, bc])
        assert backend.matches_between("a", "b") == [ab, ba]
        assert backend.matches_between("b", "a") == [ab, ba]
        assert backend.matches_between("a", "c") == []

    def test_empty_batch_stores_nothing(self, backend):
        backend.add_matches([])
        assert backend.all_matches() == []

    def test_bulk_write_is_atomic(self, backend):
        """An iterable that raises mid-batch must leave the store untouched."""
        backend.add_matches([_match(sequence=1)])
        clocks_before = backend.clocks()

        def poisoned():
            yield _match(source_id="a.1", target_id="b.1", sequence=2)
            yield _match(source_id="a.2", target_id="b.2", sequence=3)
            raise RuntimeError("boom mid-iteration")

        with pytest.raises(RuntimeError, match="boom"):
            backend.add_matches(poisoned())
        assert len(backend.all_matches()) == 1
        assert backend.clocks() == clocks_before


class TestFingerprints:
    PAYLOAD = {"format_version": 1, "hash": "abc123", "terms": {"total": 2}}

    def test_put_get_roundtrip(self, backend):
        backend.put_fingerprint("orders", self.PAYLOAD)
        assert backend.get_fingerprint("orders") == self.PAYLOAD

    def test_get_missing_returns_none(self, backend):
        assert backend.get_fingerprint("nope") is None

    def test_bulk_put_and_sorted_names(self, backend):
        backend.put_fingerprints({
            "zeta": {"hash": "z"},
            "alpha": {"hash": "a"},
        })
        assert backend.fingerprint_names() == ["alpha", "zeta"]

    def test_hashes_in_one_call(self, backend):
        backend.put_fingerprints({
            "orders": {"hash": "h1", "terms": {"a": 1}},
            "invoices": {"hash": "h2", "terms": {"b": 2}},
            "legacy": {"terms": {}},  # pre-hash payloads read as ""
        })
        assert backend.fingerprint_hashes() == {
            "orders": "h1",
            "invoices": "h2",
            "legacy": "",
        }

    def test_delete_then_read(self, backend):
        backend.put_fingerprint("orders", self.PAYLOAD)
        backend.delete_fingerprint("orders")
        assert backend.get_fingerprint("orders") is None
        assert backend.fingerprint_names() == []


class TestClocks:
    """Which mutator bumps which clock -- identically on every backend."""

    def test_fresh_store_starts_at_zero(self, backend):
        assert backend.clocks() == (0, 0)

    def test_put_schema_bumps_generation_only(self, backend):
        backend.put_schema("orders", {"v": 1})
        assert backend.clocks() == (1, 0)

    def test_delete_schema_bumps_both(self, backend):
        # The cascade may remove match rows, so derived match structures
        # must be invalidated even when no match survived.
        backend.put_schema("orders", {"v": 1})
        backend.delete_schema("orders")
        assert backend.clocks() == (2, 1)

    def test_add_matches_bumps_match_generation_once_per_batch(self, backend):
        backend.add_matches([_match(sequence=1), _match(sequence=2)])
        assert backend.clocks() == (0, 1)

    def test_empty_batch_does_not_bump(self, backend):
        backend.add_matches([])
        assert backend.clocks() == (0, 0)

    def test_reads_and_fingerprints_never_bump(self, backend):
        backend.put_schema("orders", {"v": 1})
        before = backend.clocks()
        backend.get_schema("orders")
        backend.schema_names()
        backend.all_matches()
        backend.put_fingerprint("orders", {"hash": "h"})
        backend.put_fingerprints({"orders": {"hash": "h2"}})
        backend.get_fingerprint("orders")
        backend.fingerprint_hashes()
        backend.delete_fingerprint("orders")
        backend.describe()
        assert backend.clocks() == before

    def test_clocks_are_monotone_over_a_mixed_history(self, backend):
        seen = [backend.clocks()]
        backend.put_schema("a", {"v": 1})
        seen.append(backend.clocks())
        backend.put_schema("b", {"v": 1})
        seen.append(backend.clocks())
        backend.add_matches([_match("a", "b", sequence=1)])
        seen.append(backend.clocks())
        backend.delete_schema("a")
        seen.append(backend.clocks())
        for earlier, later in zip(seen, seen[1:]):
            assert later[0] >= earlier[0]
            assert later[1] >= earlier[1]
            assert later != earlier  # every mutation moved SOME clock


class TestSequences:
    def test_first_allocation_starts_at_one(self, backend):
        assert backend.next_sequences(1) == 1

    def test_blocks_are_contiguous_and_disjoint(self, backend):
        first = backend.next_sequences(3)   # 1, 2, 3
        second = backend.next_sequences(2)  # 4, 5
        assert first == 1
        assert second == 4
        assert backend.next_sequences(1) == 6

    def test_rejects_non_positive_counts(self, backend):
        with pytest.raises(ValueError):
            backend.next_sequences(0)
        with pytest.raises(ValueError):
            backend.next_sequences(-3)


class TestRequestStats:
    """The cache-warming source: counted request hashes, hottest-first.

    ``record_requests`` is a bulk upsert (counts accumulate, the latest
    endpoint/payload wins) and, like fingerprint writes, moves NO clock:
    request statistics are observability, not repository content, so a
    flush can never invalidate anyone's response cache.
    """

    def test_record_and_rank(self, backend):
        backend.record_requests(
            [
                ("key-a", "/match", {"source": "A", "target": "B"}, 3),
                ("key-b", "/corpus-match", {"source": "A"}, 5),
                ("key-c", "/match", {"source": "B", "target": "C"}, 1),
            ]
        )
        hot = backend.hot_requests(2)
        assert [record[0] for record in hot] == ["key-b", "key-a"]
        key, endpoint, payload, count = hot[0]
        assert (endpoint, payload, count) == ("/corpus-match", {"source": "A"}, 5)

    def test_counts_accumulate_and_payload_refreshes(self, backend):
        backend.record_requests([("key-a", "/match", {"v": 1}, 2)])
        backend.record_requests([("key-a", "/match", {"v": 2}, 3)])
        ((key, endpoint, payload, count),) = backend.hot_requests(10)
        assert (key, count) == ("key-a", 5)
        assert payload == {"v": 2}

    def test_ties_break_deterministically_by_key(self, backend):
        backend.record_requests(
            [
                ("key-z", "/match", {}, 4),
                ("key-a", "/match", {}, 4),
            ]
        )
        assert [record[0] for record in backend.hot_requests(10)] == [
            "key-a", "key-z",
        ]

    def test_limit_and_empty_store(self, backend):
        assert backend.hot_requests(10) == []
        backend.record_requests(
            [(f"key-{index}", "/match", {}, index + 1) for index in range(5)]
        )
        assert len(backend.hot_requests(3)) == 3
        backend.record_requests([])  # a no-op flush is legal
        assert len(backend.hot_requests(10)) == 5

    def test_recording_moves_no_clock(self, backend):
        clocks_before = backend.clocks()
        backend.record_requests([("key-a", "/match", {"source": "A"}, 1)])
        assert backend.clocks() == clocks_before


class TestPersistenceAcrossReopen:
    """File-backed backends must survive close/reopen -- clocks included.

    (The in-memory backend is excluded: nothing to reopen.)
    """

    @pytest.fixture(params=["sqlite", "pooled"])
    def kind(self, request):
        return request.param

    def test_data_and_clocks_survive_reopen(self, kind, tmp_path):
        store = _open(kind, tmp_path)
        store.put_schema("orders", {"v": 1})
        store.add_matches([_match(sequence=store.next_sequences(1))])
        store.put_fingerprint("orders", {"hash": "h"})
        clocks = store.clocks()
        store.close()

        reopened = _open(kind, tmp_path)
        try:
            assert reopened.get_schema("orders") == {"v": 1}
            assert len(reopened.all_matches()) == 1
            assert reopened.get_fingerprint("orders") == {"hash": "h"}
            # The backend-era contract: clocks persist, they do NOT
            # restart at zero the way the pre-backend store's did.
            assert reopened.clocks() == clocks
        finally:
            reopened.close()

    def test_sequence_counter_survives_reopen(self, kind, tmp_path):
        store = _open(kind, tmp_path)
        store.next_sequences(5)
        store.close()
        reopened = _open(kind, tmp_path)
        try:
            assert reopened.next_sequences(1) == 6
        finally:
            reopened.close()

    def test_request_stats_survive_reopen(self, kind, tmp_path):
        """The warming source outlives the replica that recorded it --
        that is the whole point: the NEXT server to start warms from it."""
        store = _open(kind, tmp_path)
        store.record_requests([("key-a", "/match", {"source": "A"}, 7)])
        store.close()
        reopened = _open(kind, tmp_path)
        try:
            assert reopened.hot_requests(10) == [
                ("key-a", "/match", {"source": "A"}, 7)
            ]
        finally:
            reopened.close()

    def test_backends_share_one_file_format(self, tmp_path):
        """A store written by one SQLite backend opens under the other."""
        legacy = _open("sqlite", tmp_path)
        legacy.put_schema("orders", {"v": 1})
        legacy.add_matches([_match(sequence=legacy.next_sequences(1))])
        clocks = legacy.clocks()
        legacy.close()

        pooled = _open("pooled", tmp_path)
        try:
            assert pooled.schema_names() == ["orders"]
            assert len(pooled.all_matches()) == 1
            assert pooled.clocks() == clocks
            pooled.put_schema("invoices", {"v": 2})
        finally:
            pooled.close()

        # ... and back: the pooled backend's WAL switch does not lock the
        # legacy backend out.
        legacy_again = _open("sqlite", tmp_path)
        try:
            assert legacy_again.schema_names() == ["invoices", "orders"]
            assert legacy_again.clocks() == (clocks[0] + 1, clocks[1])
        finally:
            legacy_again.close()


class TestOpenBackend:
    def test_default_resolution(self, tmp_path):
        assert isinstance(open_backend(None, None), InMemoryBackend)
        sqlite_store = open_backend(None, str(tmp_path / "a.db"))
        assert isinstance(sqlite_store, SqliteBackend)
        sqlite_store.close()

    def test_instance_passthrough(self):
        instance = InMemoryBackend()
        assert open_backend(instance, None) is instance

    def test_memory_takes_no_path(self, tmp_path):
        with pytest.raises(ValueError, match="no path"):
            open_backend("memory", str(tmp_path / "a.db"))

    def test_file_backends_need_a_path(self):
        with pytest.raises(ValueError, match="needs a database path"):
            open_backend("sqlite", None)
        with pytest.raises(ValueError, match="needs a database path"):
            open_backend("pooled", None)

    def test_unknown_backend_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="unknown backend"):
            open_backend("postgres", str(tmp_path / "a.db"))


# ----------------------------------------------------------------------
# Crash recovery: SIGKILL a writer mid-batch, reopen, nothing partial
# ----------------------------------------------------------------------
_WRITER_SCRIPT = """
import sys
from repro.match import Correspondence
from repro.repository import MetadataRepository
from repro.schema import Schema, SchemaElement

db_path, batch_size = sys.argv[1], int(sys.argv[2])
repo = MetadataRepository(path=db_path, backend="pooled")
for name in ("left", "right"):
    schema = Schema(name=name)
    schema.add(SchemaElement(element_id=f"{name}.e", name="e"))
    repo.register(schema)
batch_index = 0
while True:
    correspondences = [
        Correspondence(source_id=f"left.{batch_index}.{i}", target_id="right.e",
                       score=0.5)
        for i in range(batch_size)
    ]
    repo.store_matches(
        "left", "right", correspondences,
        asserted_by="writer", context=f"batch-{batch_index}",
    )
    print(f"batch {batch_index} committed", flush=True)
    batch_index += 1
"""


class TestCrashRecovery:
    def test_sigkill_mid_store_matches_leaves_no_partial_batch(self, tmp_path):
        """Kill -9 a pooled-WAL writer in its write loop; reopen; every
        stored batch must be complete and ``match_generation`` must equal
        the number of complete batches -- the transactional clock-bump
        contract, enforced against a real dead process rather than a
        raised exception."""
        import signal
        import subprocess
        import sys
        import time

        db_path = str(tmp_path / "crash.db")
        batch_size = 400  # big enough that the kill can land mid-write
        writer = subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT, db_path, str(batch_size)],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            # Let at least two batches commit so recovery has data to keep.
            committed = 0
            deadline = time.monotonic() + 60
            while committed < 2 and time.monotonic() < deadline:
                line = writer.stdout.readline()
                if "committed" in line:
                    committed += 1
            assert committed >= 2, "writer never committed two batches"
            # No drain of further output: the writer keeps writing while we
            # aim the kill into its ongoing loop.
            time.sleep(0.05)
        finally:
            writer.send_signal(signal.SIGKILL)
            writer.wait(timeout=30)
        assert writer.returncode == -signal.SIGKILL

        store = PooledSqliteBackend(db_path)
        try:
            by_batch: dict[str, int] = {}
            for match in store.all_matches():
                context = match.provenance.context
                by_batch[context] = by_batch.get(context, 0) + 1
            # All-or-nothing: every batch present is a COMPLETE batch.
            assert by_batch, "the two confirmed batches must survive"
            for context, count in by_batch.items():
                assert count == batch_size, f"{context} is partial: {count} rows"
            generation, match_generation = store.clocks()
            # One generation bump per registered schema; one
            # match_generation bump per complete batch -- the clock can
            # never run ahead of (or behind) the surviving data.
            assert generation == 2
            assert match_generation == len(by_batch)
            assert len(by_batch) >= committed
        finally:
            store.close()


# ----------------------------------------------------------------------
# Hypothesis: StoredMatch round-trips byte-identically (satellite 3)
# ----------------------------------------------------------------------
_text = st.text(min_size=0, max_size=40)
_nonempty_text = st.text(min_size=1, max_size=40)
_score = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)

_correspondences = st.builds(
    Correspondence,
    source_id=_nonempty_text,
    target_id=_nonempty_text,
    score=_score,
    status=st.sampled_from(MatchStatus),
    annotation=st.sampled_from(SemanticAnnotation),
    asserted_by=_text,  # "" = pre-migration rows: falls back on read
    note=_text,
)

_provenances = st.builds(
    ProvenanceRecord,
    asserted_by=_nonempty_text,
    method=st.sampled_from(AssertionMethod),
    confidence=_score,
    sequence=st.integers(min_value=0, max_value=2**31),
    context=_text,
    # Composed/flipped reuse provenance lands here verbatim
    # (e.g. "composed via crm: a->b (0.83) * b->c (0.71)").
    note=_text,
)

_stored_matches = st.builds(
    StoredMatch,
    source_schema=_nonempty_text,
    target_schema=_nonempty_text,
    correspondence=_correspondences,
    provenance=_provenances,
)


class TestStoredMatchRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(match=_stored_matches)
    def test_memory(self, match):
        self._roundtrip(InMemoryBackend(), match)

    @settings(max_examples=60, deadline=None)
    @given(match=_stored_matches)
    def test_sqlite(self, tmp_path_factory, match):
        path = str(tmp_path_factory.mktemp("rt") / "rt.db")
        self._roundtrip(SqliteBackend(path), match)

    @settings(max_examples=60, deadline=None)
    @given(match=_stored_matches)
    def test_pooled(self, tmp_path_factory, match):
        path = str(tmp_path_factory.mktemp("rt") / "rt.db")
        self._roundtrip(PooledSqliteBackend(path), match)

    @staticmethod
    def _roundtrip(backend, match: StoredMatch) -> None:
        try:
            backend.add_matches([match])
            (read_back,) = backend.all_matches()
            # Dataclass equality compares every field, enums and floats
            # included -- "byte-identical" for frozen value objects.  One
            # exception is intentional: a correspondence asserted_by of ""
            # reads back as the provenance asserter (the pre-migration
            # fallback) on the SQLite backends.
            if not match.correspondence.asserted_by and not isinstance(
                backend, InMemoryBackend
            ):
                expected_corr = match.correspondence
                assert read_back.correspondence.asserted_by == (
                    match.provenance.asserted_by
                )
                assert read_back.correspondence.source_id == expected_corr.source_id
                assert read_back.correspondence.target_id == expected_corr.target_id
                assert read_back.correspondence.score == expected_corr.score
                assert read_back.correspondence.status == expected_corr.status
                assert read_back.correspondence.annotation == expected_corr.annotation
                assert read_back.correspondence.note == expected_corr.note
                assert read_back.provenance == match.provenance
                assert read_back.source_schema == match.source_schema
                assert read_back.target_schema == match.target_schema
            else:
                assert read_back == match
        finally:
            backend.close()
