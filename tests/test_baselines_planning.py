"""Baseline matchers and planning/decision models."""

import pytest

from repro.baselines import (
    SimilarityFloodingMatcher,
    baseline_engines,
    coma_lite_engine,
    cupid_lite_engine,
    harmony_engine,
    naive_engine,
)
from repro.metrics import best_f1, best_f1_assignment, matrix_overlap
from repro.metrics.overlap import OverlapReport
from repro.planning import (
    CostParameters,
    DecisionModel,
    Option,
    assess_coi_feasibility,
    estimate_integration,
)
from repro.workflow import EffortModel


class TestBaselineEngines:
    def test_registry_complete(self):
        engines = baseline_engines()
        assert set(engines) == {"naive", "coma_lite", "cupid_lite", "harmony"}

    def test_all_run_on_samples(self, sample_relational, sample_xml):
        for name, engine in baseline_engines().items():
            result = engine.match(sample_relational, sample_xml)
            assert result.matrix.shape == (
                len(sample_relational), len(sample_xml),
            ), name

    def test_naive_finds_nothing_across_conventions(
        self, sample_relational, sample_xml
    ):
        result = naive_engine().match(sample_relational, sample_xml)
        assert result.matrix.scores.max() <= 0.0  # no identical names

    def test_harmony_beats_naive_on_ground_truth(self, small_pair):
        source = small_pair.source.schema
        target = small_pair.target.schema
        _, harmony_prf = best_f1_assignment(
            harmony_engine().match(source, target).matrix, small_pair.truth_pairs
        )
        _, naive_prf = best_f1_assignment(
            naive_engine().match(source, target).matrix, small_pair.truth_pairs
        )
        assert harmony_prf.f1 > naive_prf.f1

    def test_harmony_at_least_matches_coma(self, small_pair):
        source = small_pair.source.schema
        target = small_pair.target.schema
        _, harmony_prf = best_f1_assignment(
            harmony_engine().match(source, target).matrix, small_pair.truth_pairs
        )
        _, coma_prf = best_f1_assignment(
            coma_lite_engine().match(source, target).matrix, small_pair.truth_pairs
        )
        assert harmony_prf.f1 >= coma_prf.f1 - 0.02

    def test_cupid_runs(self, small_pair):
        result = cupid_lite_engine().match(
            small_pair.source.schema, small_pair.target.schema
        )
        assert result.n_pairs > 0


class TestSimilarityFlooding:
    def test_scores_in_unit_interval(self, sample_relational, sample_xml):
        result = SimilarityFloodingMatcher().match(sample_relational, sample_xml)
        assert result.matrix.scores.min() >= 0.0
        assert result.matrix.scores.max() <= 1.0

    def test_structure_propagates(self, sample_relational, sample_xml):
        """Parent similarity should lift children beyond their initial sim."""
        flooding = SimilarityFloodingMatcher()
        result = flooding.match(sample_relational, sample_xml)
        # 'Category' has no token overlap with EVENT_TYPE_CD, but both live
        # under matching containers; flooding gives the pair mass > 0.
        score = result.matrix.score(
            "all_event_vitals.event_type_cd", "event.category"
        )
        assert score > 0.0

    def test_finds_truth_reasonably(self, small_pair):
        result = SimilarityFloodingMatcher().match(
            small_pair.source.schema, small_pair.target.schema
        )
        _, measurement = best_f1_assignment(result.matrix, small_pair.truth_pairs)
        assert measurement.f1 > 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            SimilarityFloodingMatcher(n_iterations=0)
        with pytest.raises(ValueError):
            SimilarityFloodingMatcher(damping=0.0)


class TestDecisionModel:
    def _report(self, n_common, n_distinct, source_total=1378):
        return OverlapReport(
            source_total=source_total,
            target_total=n_common + n_distinct,
            intersection_source_ids={f"s{i}" for i in range(n_common)},
            intersection_target_ids={f"t{i}" for i in range(n_common)},
            source_only_ids=set(),
            target_only_ids={f"u{i}" for i in range(n_distinct)},
        )

    def test_large_distinct_set_favors_bridge(self):
        # The paper's outcome: 517 distinct elements -> subsuming is hard.
        recommendation = DecisionModel().evaluate(self._report(267, 517))
        assert recommendation.choice is Option.BRIDGE

    def test_small_distinct_set_favors_subsume(self):
        recommendation = DecisionModel().evaluate(self._report(400, 10))
        assert recommendation.choice is Option.SUBSUME

    def test_crossover_consistent_with_choices(self):
        model = DecisionModel()
        crossover = model.crossover_distinct_count()
        below = model.evaluate(self._report(100, int(crossover) - 5))
        above = model.evaluate(self._report(100, int(crossover) + 5))
        assert below.choice is Option.SUBSUME
        assert above.choice is Option.BRIDGE

    def test_margin_and_describe(self):
        recommendation = DecisionModel().evaluate(self._report(267, 517))
        assert recommendation.margin > 0
        assert "recommend bridge" in recommendation.describe()

    def test_common_elements_cancel_out(self):
        model = DecisionModel()
        small_common = model.evaluate(self._report(10, 300))
        large_common = model.evaluate(self._report(500, 300))
        assert small_common.choice is large_common.choice


class TestFeasibility:
    def test_overlapping_family_feasible(self, small_pair):
        report = assess_coi_feasibility(
            {
                "SA": small_pair.source.schema,
                "SB": small_pair.target.schema,
            },
            threshold=0.25,
        )
        assert 0.0 < report.mean_overlap <= 1.0
        assert report.pair_overlaps[0].left == "SA"

    def test_needs_two_members(self, sample_relational):
        with pytest.raises(ValueError):
            assess_coi_feasibility({"only": sample_relational})

    def test_describe(self, small_pair):
        report = assess_coi_feasibility(
            {
                "SA": small_pair.source.schema,
                "SB": small_pair.target.schema,
            }
        )
        assert "COI over 2 systems" in report.describe()
        assert report.weakest_pair().overlap == report.min_overlap


class TestIntegrationCost:
    def test_estimate_composition(self):
        report = OverlapReport(
            source_total=100,
            target_total=100,
            intersection_source_ids=set("abc"),
            intersection_target_ids=set("abc"),
            source_only_ids=set(),
            target_only_ids={f"u{i}" for i in range(10)},
            matched_pairs={("a", "a"), ("b", "b"), ("c", "c")},
        )
        matching = EffortModel().naive_estimate(100)
        estimate = estimate_integration(report, matching)
        assert estimate.total_person_days == pytest.approx(
            estimate.matching_person_days
            + estimate.mapping_person_days
            + estimate.gap_person_days
        )
        assert estimate.mapping_person_days > 0
        assert estimate.gap_person_days > 0

    def test_cost_scales_with_rate(self):
        report = OverlapReport(
            source_total=10, target_total=10,
            intersection_source_ids={"a"}, intersection_target_ids={"a"},
            source_only_ids=set(), target_only_ids=set(),
            matched_pairs={("a", "a")},
        )
        estimate = estimate_integration(report, EffortModel().naive_estimate(10))
        cheap = estimate.cost_dollars(CostParameters(daily_rate_dollars=1000))
        pricey = estimate.cost_dollars(CostParameters(daily_rate_dollars=2000))
        assert pricey == pytest.approx(2 * cheap)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CostParameters(hours_per_mapping=0)
