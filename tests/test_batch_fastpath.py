"""The corpus-scale batch fast path: bulk voter APIs, blocking, runner.

Three layers of guarantees:

* ``score_block`` / ``score_pairs`` equal the per-grid voter path to 1e-9
  (property-tested over generated schema pairs),
* blocking recall against the exact match matrix stays above the 0.98
  guardrail (regression-tested on the paper's synthetic case study),
* the runner's end-to-end results coincide with the exact engine wherever
  blocking retained the pair, across serial/thread/process executors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchMatchRunner,
    BlockingPolicy,
    blocking_recall,
    candidate_pairs,
)
from repro.match import HarmonyMatchEngine, ThresholdSelection
from repro.matchers import (
    DescribingTextVoter,
    EditDistanceVoter,
    ExactNameVoter,
    FeatureSpace,
    build_profile,
    default_voters,
)
from repro.nway import nway_match
from repro.synthetic import PairSpec, generate_pair

BLOCK_TOLERANCE = 1e-9


def fast_path_voters():
    """Every stock voter with a bulk fast path."""
    return default_voters() + [DescribingTextVoter(), ExactNameVoter()]


@pytest.fixture(scope="module")
def small_profiles(small_pair):
    return (
        build_profile(small_pair.source.schema),
        build_profile(small_pair.target.schema),
    )


class TestScoreBlock:
    def test_supports_block_flags(self):
        assert all(voter.supports_block for voter in fast_path_voters())
        assert not EditDistanceVoter().supports_block

    def test_equals_per_grid_on_samples(self, sample_relational, sample_xml):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        space = FeatureSpace()
        for voter in fast_path_voters():
            exact = voter.vote(source, target).confidence
            block = voter.score_block(source, target, space)
            assert np.allclose(block, exact, atol=BLOCK_TOLERANCE), voter.name

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_equals_per_grid_on_generated_pairs(self, seed):
        pair = generate_pair(PairSpec(), seed=seed)
        source = build_profile(pair.source.schema)
        target = build_profile(pair.target.schema)
        space = FeatureSpace()
        for voter in fast_path_voters():
            exact = voter.vote(source, target).confidence
            block = voter.score_block(source, target, space)
            assert np.allclose(block, exact, atol=BLOCK_TOLERANCE), voter.name

    def test_score_pairs_matches_block(self, small_profiles):
        source, target = small_profiles
        space = FeatureSpace()
        rng = np.random.default_rng(13)
        rows = rng.integers(0, len(source), 400)
        cols = rng.integers(0, len(target), 400)
        for voter in fast_path_voters():
            block = voter.score_block(source, target, space)
            pairs = voter.score_pairs(source, target, rows, cols, space)
            assert np.allclose(pairs, block[rows, cols], atol=BLOCK_TOLERANCE)

    def test_fallback_without_fast_path(self, sample_relational, sample_xml):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        voter = EditDistanceVoter()
        exact = voter.vote(source, target).confidence
        assert np.array_equal(voter.score_block(source, target), exact)
        rows = np.array([0, 1, 2])
        cols = np.array([2, 1, 0])
        assert np.array_equal(
            voter.score_pairs(source, target, rows, cols), exact[rows, cols]
        )

    def test_gather_pairs_large_grid_branch(self):
        # Grids past _DENSE_GATHER_LIMIT take the searchsorted path; it
        # must agree with the dense gather bit for bit.
        from scipy import sparse

        from repro.matchers.profile import _DENSE_GATHER_LIMIT, _gather_pairs

        rng = np.random.default_rng(3)
        shape = (4000, 1200)
        assert shape[0] * shape[1] > _DENSE_GATHER_LIMIT
        product = sparse.random(*shape, density=0.001, format="csr", rng=rng)
        rows = rng.integers(0, shape[0], 5000)
        cols = rng.integers(0, shape[1], 5000)
        gathered = _gather_pairs(product, rows, cols)
        assert np.array_equal(gathered, product.toarray()[rows, cols])
        empty = sparse.csr_matrix(shape)
        assert np.array_equal(
            _gather_pairs(empty, rows, cols), np.zeros(rows.size)
        )

    def test_feature_space_is_reused(self, small_profiles):
        source, target = small_profiles
        space = FeatureSpace()
        first = space.feature(source, "name")
        assert space.feature(source, "name") is first
        space.clear()
        assert space.feature(source, "name") is not first


class TestBlocking:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BlockingPolicy(keys=())
        with pytest.raises(ValueError):
            BlockingPolicy(keys=("path", "bogus"))
        with pytest.raises(ValueError):
            BlockingPolicy(min_shared=0)

    def test_shared_name_token_pairs_survive(self, small_profiles):
        source, target = small_profiles
        space = FeatureSpace()
        candidates = candidate_pairs(
            source, target, space, BlockingPolicy(keys=("name",))
        )
        mask = candidates.mask()
        for row in range(0, len(source), 7):
            for col in range(0, len(target), 7):
                shares = bool(
                    set(source.name_terms[row]) & set(target.name_terms[col])
                )
                assert mask[row, col] == shares

    def test_min_shared_is_monotone(self, small_profiles):
        source, target = small_profiles
        space = FeatureSpace()
        loose = candidate_pairs(source, target, space, BlockingPolicy(min_shared=1))
        tight = candidate_pairs(source, target, space, BlockingPolicy(min_shared=2))
        assert tight.n_candidates < loose.n_candidates
        assert not (tight.mask() & ~loose.mask()).any()

    def test_recall_guardrail_on_small_pair(self, small_pair, small_pair_result):
        runner = BatchMatchRunner()
        source = runner.profile(small_pair.source.schema)
        target = runner.profile(small_pair.target.schema)
        candidates = candidate_pairs(source, target, runner.space, runner.blocking)
        recall = blocking_recall(small_pair_result.matrix, candidates, 0.15)
        assert recall >= 0.98
        assert 0.0 < candidates.fraction < 0.5

    def test_recall_regression_on_case_study(self):
        # The acceptance guardrail of the batch fast path, pinned on the
        # paper's 1378x784 synthetic study (bench E16 reports the same
        # number alongside the speedup).
        from repro.synthetic import case_study

        pair = case_study(seed=2009)
        exact = HarmonyMatchEngine().match(pair.source.schema, pair.target.schema)
        runner = BatchMatchRunner()
        candidates = candidate_pairs(
            runner.profile(pair.source.schema),
            runner.profile(pair.target.schema),
            runner.space,
            runner.blocking,
        )
        assert blocking_recall(exact.matrix, candidates, 0.15) >= 0.98

    def test_recall_is_one_when_nothing_selected(self, small_profiles):
        source, target = small_profiles
        space = FeatureSpace()
        candidates = candidate_pairs(source, target, space)
        nothing = np.full((len(source), len(target)), -1.0)
        assert blocking_recall(nothing, candidates, 0.15) == 1.0

    def test_recall_guards_zero_denominator_on_degenerate_grids(self):
        # The empty-exact-matrix case must return exactly 1.0 (nothing to
        # lose), never NaN or a ZeroDivisionError -- including grids where
        # blocking itself retained no candidates at all.
        from repro.batch.blocking import CandidateSet

        empty = CandidateSet(
            shape=(3, 4),
            rows=np.array([], dtype=np.int64),
            cols=np.array([], dtype=np.int64),
        )
        below_threshold = np.zeros((3, 4))
        recall = blocking_recall(below_threshold, empty, threshold=0.15)
        assert recall == 1.0 and not np.isnan(recall)
        # And when pairs do clear the threshold but no candidate survived,
        # recall is an honest 0.0, not an error.
        assert blocking_recall(np.ones((3, 4)), empty, threshold=0.15) == 0.0


class TestRunner:
    def test_candidate_scores_are_exact(self, small_pair, small_pair_result):
        runner = BatchMatchRunner()
        result = runner.match_pair(small_pair.source.schema, small_pair.target.schema)
        candidates = candidate_pairs(
            runner.profile(small_pair.source.schema),
            runner.profile(small_pair.target.schema),
            runner.space,
            runner.blocking,
        )
        fast = result.matrix.scores[candidates.rows, candidates.cols]
        exact = small_pair_result.matrix.scores[candidates.rows, candidates.cols]
        assert np.allclose(fast, exact, atol=BLOCK_TOLERANCE)
        assert result.n_candidates == candidates.n_candidates
        assert 0.0 < result.candidate_fraction < 1.0

    def test_selection_is_exact_on_retained_pairs(self, small_pair, small_pair_result):
        # Fill scores sit below any positive threshold, so fast selection
        # equals exact selection intersected with the candidate set.
        runner = BatchMatchRunner()
        result = runner.match_pair(small_pair.source.schema, small_pair.target.schema)
        selection = ThresholdSelection(0.2)
        fast = {c.pair for c in result.candidates(selection)}
        exact = {c.pair for c in small_pair_result.candidates(selection)}
        mask = candidate_pairs(
            runner.profile(small_pair.source.schema),
            runner.profile(small_pair.target.schema),
            runner.space,
            runner.blocking,
        ).mask()
        source_index = {sid: i for i, sid in enumerate(result.matrix.source_ids)}
        target_index = {tid: j for j, tid in enumerate(result.matrix.target_ids)}
        retained_exact = {
            pair for pair in exact if mask[source_index[pair[0]], target_index[pair[1]]]
        }
        assert fast == retained_exact

    def test_source_restriction(self, small_pair):
        runner = BatchMatchRunner()
        source = small_pair.source.schema
        target = small_pair.target.schema
        full = runner.match_pair(source, target)
        subset_ids = [element.element_id for element in source][10:40]
        restricted = runner.match_pair(source, target, source_element_ids=subset_ids)
        assert restricted.matrix.source_ids == subset_ids
        assert restricted.matrix.shape == (len(subset_ids), len(target))
        sub = full.matrix.submatrix(source_ids=subset_ids)
        # tensordot reduction order differs with candidate-list length, so
        # equality holds only to float accumulation noise.
        assert np.allclose(restricted.matrix.scores, sub.scores, atol=1e-12)

    def test_corpus_outcomes_are_deterministic(self, small_pair):
        runner = BatchMatchRunner()
        corpus = {
            "B": small_pair.target.schema,
            "A": generate_pair(PairSpec(), seed=5).target.schema,
        }
        outcomes = runner.match_corpus(small_pair.source.schema, corpus)
        assert [outcome.target_name for outcome in outcomes] == ["A", "B"]
        assert all(outcome.matrix is not None for outcome in outcomes)
        assert all(outcome.n_candidates > 0 for outcome in outcomes)

    def test_corpus_source_name_survives_collision(self, small_pair):
        # A registry may already hold a schema with the source's name (e.g.
        # matching a new version against the repository); outcomes must
        # still report the real schema name, not an internal key.
        runner = BatchMatchRunner()
        source = small_pair.source.schema
        corpus = {source.name: small_pair.target.schema}
        outcomes = runner.match_corpus(source, corpus)
        assert [outcome.source_name for outcome in outcomes] == [source.name]

    def test_executors_agree(self, small_pair):
        schemata = {
            "SA": small_pair.source.schema,
            "SB": small_pair.target.schema,
            "SC": generate_pair(PairSpec(), seed=5).target.schema,
        }
        reference = None
        for executor in ("serial", "thread", "process"):
            runner = BatchMatchRunner(executor=executor, max_workers=2)
            outcomes = runner.match_all_pairs(schemata)
            summary = [
                (
                    outcome.source_name,
                    outcome.target_name,
                    tuple(sorted(c.pair for c in outcome.correspondences)),
                )
                for outcome in outcomes
            ]
            if reference is None:
                reference = summary
            else:
                assert summary == reference, executor
        # Process outcomes travel without their dense matrices.
        assert all(outcome.matrix is None for outcome in outcomes)

    def test_nway_through_runner(self, small_pair):
        schemata = {
            "SA": small_pair.source.schema,
            "SB": small_pair.target.schema,
        }
        vocabulary_exact, _ = nway_match(schemata)
        vocabulary_fast, _ = nway_match(schemata, runner=BatchMatchRunner())
        assert len(vocabulary_fast) == len(vocabulary_exact)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BatchMatchRunner(voters=[])
        with pytest.raises(ValueError):
            BatchMatchRunner(fill_value=1.5)
        with pytest.raises(ValueError):
            BatchMatchRunner(executor="gpu")
