"""The executable CacheBackend contract, run against every cache tier.

Every test in the contract class is parametrized over the three shipping
backends -- the in-process :class:`~repro.server.cache.ResponseCache`,
the shared TCP tier (:class:`~repro.server.distcache.CacheServer` behind
a :class:`~repro.server.distcache.RemoteCache` client), and the
two-level :class:`~repro.server.distcache.TieredCache` composition --
and asserts IDENTICAL semantics: exact-clock validation on ``get``,
component-wise watermark eviction (``None`` never outdates), a hard LRU
bound that holds under a concurrent hammer, and stats that add up.  The
protocol prose lives on
:class:`~repro.server.distcache.CacheBackend`; this file is the version
that can fail.

The fault half of the contract is the remote tier's degradation rule: a
cache that is down, hung, or poisoned (garbage on the wire) may cost a
miss and an error counter, NEVER a wrong answer, an exception on the
request path, or an unbounded wait.
"""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.cache import CacheStats, ResponseCache, clocks_outdated
from repro.server.distcache import (
    CacheBackend,
    CacheServer,
    RemoteCache,
    TieredCache,
    build_cache,
)

BACKENDS = ("local", "remote", "tiered")
MAX_ENTRIES = 32


class _Rig:
    """One cache backend plus enough plumbing to tear it down."""

    def __init__(self, kind: str, max_entries: int = MAX_ENTRIES):
        self.kind = kind
        self.max_entries = max_entries
        self.server: CacheServer | None = None
        self._accept_thread: threading.Thread | None = None
        if kind == "local":
            self.cache: CacheBackend = ResponseCache(max_entries=max_entries)
            self.tiers = 1
            return
        self.server = CacheServer(port=0, cache_size=max_entries)
        self._accept_thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._accept_thread.start()
        remote = RemoteCache(self.server.address, timeout=5.0)
        if kind == "remote":
            self.cache = remote
            self.tiers = 1
        else:
            self.cache = TieredCache(
                ResponseCache(max_entries=max_entries), remote
            )
            self.tiers = 2

    def close(self) -> None:
        self.cache.close()
        if self.server is not None:
            self.server.shutdown()
            self._accept_thread.join()
            self.server.server_close()


@pytest.fixture(params=BACKENDS)
def rig(request):
    built = _Rig(request.param)
    yield built
    built.close()


# ----------------------------------------------------------------------
# The contract proper: identical semantics across all three tiers
# ----------------------------------------------------------------------
class TestCacheContract:
    def test_satisfies_the_runtime_protocol(self, rig):
        assert isinstance(rig.cache, CacheBackend)

    def test_get_put_roundtrip(self, rig):
        cache = rig.cache
        assert cache.get("k", (1, 1)) is None
        value = {"answer": [1, 2, {"nested": "yes", "unicode": "Séma"}]}
        cache.put("k", value, (1, 1))
        assert cache.get("k", (1, 1)) == value
        assert len(cache) == 1

    def test_exact_clock_validation(self, rig):
        """Any clock difference -- newer, older, regressed -- is a miss."""
        cache = rig.cache
        cache.put("k", {"v": 1}, (2, 2))
        for stale_clocks in ((2, 3), (3, 2), (1, 2), (2, 1), (None, None)):
            cache.put("k", {"v": 1}, (2, 2))
            assert cache.get("k", stale_clocks) is None
        # The invalidated entry is gone, not retained stale.
        assert cache.get("k", (2, 2)) is None

    def test_none_clock_components_never_invalidate(self, rig):
        cache = rig.cache
        cache.put("k", {"v": 1}, (None, None))
        assert cache.get("k", (None, None)) == {"v": 1}
        cache.put("half", {"v": 2}, (7, None))
        assert cache.get("half", (7, None)) == {"v": 2}

    def test_evict_watermark_semantics(self, rig):
        cache = rig.cache
        cache.put("old", {"v": 1}, (1, 1))
        cache.put("current", {"v": 2}, (2, 2))
        cache.put("unclocked", {"v": 3}, (None, None))
        evicted = cache.evict_watermark((2, 2))
        # Exactly "old" per tier: equal clocks survive, None never outdates.
        assert evicted == rig.tiers
        assert cache.get("old", (1, 1)) is None
        assert cache.get("current", (2, 2)) == {"v": 2}
        assert cache.get("unclocked", (None, None)) == {"v": 3}

    def test_evict_watermark_partial_components(self, rig):
        cache = rig.cache
        cache.put("match-only", {"v": 1}, (3, None))
        cache.put("full", {"v": 2}, (3, 3))
        # A watermark that moves only match_generation leaves /match-style
        # entries (which do not depend on it) alone.
        evicted = cache.evict_watermark((None, 9))
        assert evicted == rig.tiers
        assert cache.get("match-only", (3, None)) == {"v": 1}
        assert cache.get("full", (3, 3)) is None

    def test_lru_bound_holds(self, rig):
        cache = rig.cache
        for index in range(rig.max_entries * 3):
            cache.put(f"key-{index}", {"v": index}, (1, 1))
        assert len(cache) <= rig.max_entries
        if rig.server is not None:
            assert len(self_cache := rig.server.cache) <= rig.max_entries
            assert self_cache.stats.evictions > 0
        # The newest entry survived the trim.
        newest = rig.max_entries * 3 - 1
        assert cache.get(f"key-{newest}", (1, 1)) == {"v": newest}

    def test_lru_bound_under_thread_hammer(self, rig):
        """Concurrent put/get/evict/clear can never burst the bound."""
        cache = rig.cache

        def hammer(worker: int) -> None:
            for index in range(120):
                key = f"w{worker}-k{index % 48}"
                cache.put(key, {"worker": worker, "index": index}, (1, index % 3))
                value = cache.get(key, (1, index % 3))
                assert value is None or value == {
                    "worker": worker, "index": index
                }
                if index % 29 == 0:
                    cache.evict_watermark((1, 2))
                if index % 61 == 0:
                    cache.clear()

        with ThreadPoolExecutor(max_workers=6) as pool:
            for future in [pool.submit(hammer, worker) for worker in range(6)]:
                future.result()
        assert len(cache) <= rig.max_entries
        stats = cache.stats
        assert stats.lookups == stats.hits + stats.misses

    def test_stats_and_describe(self, rig):
        cache = rig.cache
        cache.put("k", {"v": 1}, (1, 1))
        assert cache.get("k", (1, 1)) == {"v": 1}
        assert cache.get("absent", (1, 1)) is None
        assert cache.get("k", (2, 2)) is None  # invalidation
        stats = cache.stats
        assert stats.hits >= 1
        assert stats.misses >= 2
        assert stats.invalidations >= 1
        assert stats.errors == 0
        description = cache.describe()
        assert description["kind"] == {
            "local": "local", "remote": "remote", "tiered": "tiered"
        }[rig.kind]
        if rig.kind == "remote":
            assert description["reachable"] is True
        if rig.kind == "tiered":
            assert description["local"]["kind"] == "local"
            assert description["shared"]["kind"] == "remote"
            attribution = description["attribution"]
            assert attribution["local_hits"] + attribution["shared_hits"] >= 1

    def test_hot_keys_rank_by_hits(self, rig):
        cache = rig.cache
        cache.put("a", {"v": 1}, (1, 1))
        cache.put("b", {"v": 2}, (1, 1))
        for _ in range(3):
            assert cache.get("a", (1, 1)) is not None
        assert cache.get("b", (1, 1)) is not None
        hot = cache.hot_keys(limit=8)
        assert hot and hot[0][0] == "a"
        assert dict(hot)["a"] >= dict(hot).get("b", 0)

    def test_clear_drops_entries_keeps_counters(self, rig):
        cache = rig.cache
        cache.put("k", {"v": 1}, (1, 1))
        assert cache.get("k", (1, 1)) is not None
        hits_before = cache.stats.hits
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k", (1, 1)) is None
        assert cache.stats.hits == hits_before

    def test_cascaded_and_plain_requests_never_share_a_key(self, rig):
        """The cascade plan serialises inside the options, the options
        inside the request -- so a cascaded /match and its plain twin key
        separately in every backend, and differently-planned cascades do
        too."""
        from repro.cascade import CascadePlan
        from repro.server.cache import canonical_request_key
        from repro.service import MatchOptions, MatchRequest

        def key_for(options):
            request = MatchRequest(source="SA", target="SB", options=options)
            return canonical_request_key("/match", request.to_dict())

        plain = key_for(MatchOptions())
        cascaded = key_for(MatchOptions(cascade=CascadePlan(band=0.3, budget=8)))
        recascaded = key_for(MatchOptions(cascade=CascadePlan(band=0.3, budget=9)))
        assert len({plain, cascaded, recascaded}) == 3

        cache = rig.cache
        cache.put(plain, {"route": "plain"}, (1, 1))
        cache.put(cascaded, {"route": "cascaded"}, (1, 1))
        assert cache.get(plain, (1, 1)) == {"route": "plain"}
        assert cache.get(cascaded, (1, 1)) == {"route": "cascaded"}
        assert cache.get(recascaded, (1, 1)) is None


# ----------------------------------------------------------------------
# Tier-specific composition behaviour
# ----------------------------------------------------------------------
class TestTieredComposition:
    def test_shared_hit_backfills_local(self):
        rig = _Rig("tiered")
        try:
            tiered = rig.cache
            # Plant straight into the SHARED store: the local tier is cold.
            rig.server.cache.put("k", {"v": 1}, (1, 1))
            assert tiered.get("k", (1, 1)) == {"v": 1}
            assert tiered.describe()["attribution"]["shared_hits"] == 1
            # The backfill made the next lookup a no-network local hit.
            assert tiered.local.get("k", (1, 1)) == {"v": 1}
            assert tiered.get("k", (1, 1)) == {"v": 1}
            assert tiered.describe()["attribution"]["local_hits"] >= 1
        finally:
            rig.close()

    def test_one_replicas_put_warms_another(self):
        rig = _Rig("tiered")
        try:
            other = TieredCache(
                ResponseCache(max_entries=8),
                RemoteCache(rig.server.address, timeout=5.0),
            )
            rig.cache.put("k", {"v": 1}, (1, 1))
            assert other.get("k", (1, 1)) == {"v": 1}
            assert other.describe()["attribution"]["shared_hits"] == 1
            other.close()
        finally:
            rig.close()

    def test_build_cache_resolves_tiers(self):
        local = build_cache(cache_size=4)
        assert isinstance(local, ResponseCache)
        server = CacheServer(port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            shared = build_cache(cache_url=server.address, tier="shared")
            assert isinstance(shared, RemoteCache)
            tiered = build_cache(cache_url=server.address)
            assert isinstance(tiered, TieredCache)
            shared.close()
            tiered.close()
        finally:
            server.shutdown()
            thread.join()
            server.server_close()
        with pytest.raises(ValueError, match="needs a cache server address"):
            build_cache(tier="tiered")
        with pytest.raises(ValueError, match="unknown cache tier"):
            build_cache(cache_url="127.0.0.1:1", tier="bogus")


# ----------------------------------------------------------------------
# Fault injection: down, hung, and poisoned shared tiers degrade to misses
# ----------------------------------------------------------------------
class _PoisonedServer:
    """A TCP listener whose every reply is configurable garbage."""

    def __init__(self, reply: bytes | None):
        self.reply = reply  # None = accept, read, never answer (a hang)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = "127.0.0.1:{}".format(self._listener.getsockname()[1])
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        self._listener.settimeout(0.1)
        connections = []
        while not self._stop.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            connections.append(connection)
            try:
                connection.recv(65536)
                if self.reply == b"":
                    connection.close()  # hang up mid-call, no reply at all
                elif self.reply is not None:
                    connection.sendall(self.reply)
            except OSError:
                pass
        for connection in connections:
            try:
                connection.close()
            except OSError:
                pass

    def close(self) -> None:
        self._stop.set()
        self._thread.join()
        self._listener.close()


class TestFaultInjection:
    def test_unreachable_server_degrades_to_miss(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        remote = RemoteCache(f"127.0.0.1:{dead_port}", timeout=0.5)
        assert remote.get("k", (1, 1)) is None
        remote.put("k", {"v": 1}, (1, 1))  # must not raise
        assert remote.evict_watermark((1, 1)) == 0
        assert remote.hot_keys() == []
        assert remote.ping() is False
        assert remote.errors >= 2
        assert remote.stats.errors >= 2
        assert remote.describe()["reachable"] is False
        remote.close()

    def test_poisoned_reply_is_a_miss_never_a_wrong_answer(self):
        for poison in (
            b"!!this is not json!!\n",
            b'{"ok": false, "error": "cosmic rays"}\n',
            b'"just a string"\n',
            b"",  # connection closed without a reply
        ):
            server = _PoisonedServer(poison)
            remote = RemoteCache(server.address, timeout=1.0)
            try:
                assert remote.get("k", (1, 1)) is None
                assert remote.errors == 1
            finally:
                remote.close()
                server.close()

    def test_hung_server_is_bounded_by_the_timeout(self):
        server = _PoisonedServer(reply=None)
        remote = RemoteCache(server.address, timeout=0.3)
        try:
            started = time.perf_counter()
            assert remote.get("k", (1, 1)) is None
            assert time.perf_counter() - started < 3.0
            assert remote.errors == 1
        finally:
            remote.close()
            server.close()

    def test_degraded_shared_tier_leaves_tiered_correct(self):
        """Local answers keep flowing when the shared tier is poisoned."""
        server = _PoisonedServer(b"garbage\n")
        tiered = TieredCache(
            ResponseCache(max_entries=8),
            RemoteCache(server.address, timeout=0.5),
        )
        try:
            tiered.put("k", {"v": 1}, (1, 1))  # shared write degrades silently
            assert tiered.get("k", (1, 1)) == {"v": 1}  # local tier answers
            assert tiered.get("cold", (1, 1)) is None
            assert tiered.stats.errors >= 1
            assert tiered.describe()["shared"]["reachable"] is False
        finally:
            tiered.close()
            server.close()

    def test_reattach_after_restart(self):
        """A cache-server bounce needs no replica intervention."""
        server = CacheServer(port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.port
        remote = RemoteCache(server.address, timeout=1.0)
        try:
            remote.put("k", {"v": 1}, (1, 1))
            assert remote.get("k", (1, 1)) == {"v": 1}
            server.shutdown()
            thread.join()
            server.server_close()
            assert remote.get("k", (1, 1)) is None  # down: degraded miss
            errors_mid = remote.errors
            assert errors_mid >= 1
            server = CacheServer(port=port)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            remote.put("k2", {"v": 2}, (1, 1))  # reconnects transparently
            assert remote.get("k2", (1, 1)) == {"v": 2}
            assert remote.errors == errors_mid
        finally:
            remote.close()
            server.shutdown()
            thread.join()
            server.server_close()


# ----------------------------------------------------------------------
# Property tests: wire round-trips and the eviction predicate
# ----------------------------------------------------------------------
_json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=24),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)
_envelopes = st.dictionaries(st.text(max_size=8), _json_values, max_size=4)
_clock_components = st.none() | st.integers(min_value=0, max_value=2**31)
_clocks = st.tuples(_clock_components, _clock_components)


@pytest.fixture(scope="module")
def shared_server():
    server = CacheServer(port=0, cache_size=4096)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    thread.join()
    server.server_close()


class TestProperties:
    @given(stats=st.builds(
        CacheStats,
        hits=st.integers(min_value=0, max_value=2**40),
        misses=st.integers(min_value=0, max_value=2**40),
        invalidations=st.integers(min_value=0, max_value=2**40),
        evictions=st.integers(min_value=0, max_value=2**40),
        errors=st.integers(min_value=0, max_value=2**40),
    ))
    def test_stats_survive_the_wire_encoding(self, stats):
        assert CacheStats.from_dict(stats.to_dict()) == stats

    @settings(max_examples=30, deadline=None)
    @given(value=_envelopes, clocks=_clocks, data=st.data())
    def test_values_survive_the_remote_roundtrip(
        self, shared_server, value, clocks, data
    ):
        key = f"prop-{data.draw(st.integers(min_value=0, max_value=2**63))}"
        remote = RemoteCache(shared_server.address, timeout=5.0)
        try:
            remote.put(key, value, clocks)
            assert remote.errors == 0
            # JSON has no tuples and conflates them with lists; envelopes
            # are built from to_dict() so only lists occur -- and a stored
            # {} or [] must come back as itself, not as a miss.
            assert remote.get(key, clocks) == value
            assert remote.get(key, (("x", "y"))) is None
        finally:
            remote.close()

    @given(entry=_clocks, watermark=_clocks)
    def test_eviction_predicate_matches_backends(self, entry, watermark):
        outdated = clocks_outdated(entry, watermark)
        # The predicate in code form: strictly-older on any component both
        # sides actually constrain.
        expected = any(
            e is not None and w is not None and e < w
            for e, w in zip(entry, watermark)
        )
        assert outdated == expected
        cache = ResponseCache(max_entries=4)
        cache.put("k", {"v": 1}, entry)
        assert cache.evict_watermark(watermark) == (1 if expected else 0)


# ----------------------------------------------------------------------
# The PR's accounting audit, pinned: LRU size under concurrent put/evict
# ----------------------------------------------------------------------
class TestResponseCacheAccounting:
    """Regression pin for the local tier's size/hot-key bookkeeping.

    Audited for this PR: every mutation of ``_entries`` happens under one
    lock and every eviction path (clock invalidation, LRU trim, watermark
    sweep, clear) must also drop the per-key hit counter, or ``hot_keys``
    leaks unbounded keys the cache no longer holds.
    """

    def test_hit_counters_never_outlive_entries(self):
        cache = ResponseCache(max_entries=4)
        for index in range(16):
            key = f"k{index}"
            cache.put(key, {"v": index}, (1, index % 2))
            cache.get(key, (1, index % 2))
        cache.get("k15", (9, 9))          # clock invalidation path
        cache.evict_watermark((2, 2))     # watermark sweep path
        assert set(cache._hits_by_key) <= set(cache._entries)
        cache.clear()
        assert cache._hits_by_key == {}

    def test_size_accounting_under_concurrent_put_and_evict(self):
        cache = ResponseCache(max_entries=16)
        stop = threading.Event()

        def sweeper() -> None:
            generation = 2
            while not stop.is_set():
                cache.evict_watermark((generation, generation))
                generation += 1

        def writer(worker: int) -> None:
            for index in range(400):
                cache.put(f"w{worker}-{index % 40}", {"v": index}, (1, 1))
                cache.get(f"w{worker}-{index % 40}", (1, 1))

        sweep_thread = threading.Thread(target=sweeper, daemon=True)
        sweep_thread.start()
        try:
            with ThreadPoolExecutor(max_workers=4) as pool:
                for future in [pool.submit(writer, w) for w in range(4)]:
                    future.result()
        finally:
            stop.set()
            sweep_thread.join()
        # The bound held, the books balance, nothing leaked.
        assert len(cache) <= 16
        assert len(cache._entries) == len(cache)
        assert set(cache._hits_by_key) <= set(cache._entries)
        stats = cache.stats
        assert stats.lookups == stats.hits + stats.misses
        assert min(
            stats.hits, stats.misses, stats.invalidations, stats.evictions
        ) >= 0
