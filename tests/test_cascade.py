"""Cascade semantics: band, budget, ordering, caching, bit-identity.

The contract under test (see ``docs/cascade.md``): escalation is a pure
function of the Stage-1 scores (warm caches change cost, never the
escalation set), budgets are hard caps, judgements cache under
content-addressed clock-free keys, and a pipeline with no cascade
configured is bit-identical to the pre-cascade engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cascade import (
    ORACLE_CACHE_CLOCKS,
    CascadeCounters,
    CascadeExecutor,
    CascadePlan,
    CascadeReport,
    CascadeStage,
    OracleVoter,
    RecordedOracle,
    ThesaurusOracle,
    build_oracle,
    element_view,
    oracle_names,
    oracle_request_key,
    register_oracle,
)
from repro.match import HarmonyMatchEngine
from repro.server.cache import ResponseCache
from repro.service import MatchOptions, MatchService


@pytest.fixture(scope="module")
def profiles(sample_relational, sample_xml):
    engine = HarmonyMatchEngine()
    return engine.profile(sample_relational), engine.profile(sample_xml)


class TestCascadePlan:
    def test_defaults_and_round_trip(self):
        plan = CascadePlan()
        assert plan == CascadePlan.from_dict(plan.to_dict())
        custom = CascadePlan(band=0.4, budget=None, oracle="recorded", weight=1.0)
        assert custom == CascadePlan.from_dict(custom.to_dict())

    def test_plans_are_hashable_cache_keys(self):
        assert hash(CascadePlan()) == hash(CascadePlan())
        assert CascadePlan(budget=3) != CascadePlan(budget=4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"band": 0.0},
            {"band": 1.5},
            {"budget": -1},
            {"budget": 2.5},
            {"oracle": ""},
            {"weight": 0.0},
            {"weight": 1.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CascadePlan(**kwargs)

    def test_options_embed_and_round_trip(self):
        options = MatchOptions(cascade=CascadePlan(band=0.3, budget=8))
        rebuilt = MatchOptions.from_dict(options.to_dict())
        assert rebuilt == options
        assert rebuilt.cascade == CascadePlan(band=0.3, budget=8)
        # A mapping coerces on construction (the wire form).
        coerced = MatchOptions(cascade={"band": 0.3, "budget": 8})
        assert coerced.cascade == CascadePlan(band=0.3, budget=8)

    def test_cascade_differentiates_options(self):
        assert MatchOptions() != MatchOptions(cascade=CascadePlan())
        assert MatchOptions().to_dict()["cascade"] is None


class TestOracleProtocol:
    def test_element_view_is_content_only(self, profiles):
        source_profile, _ = profiles
        view = element_view(source_profile, 0)
        assert set(view) == {"name", "name_terms", "doc_terms", "data_type", "depth"}
        # No ids or schema names: copies of the same content hash the same.
        assert "element_id" not in view

    def test_request_key_separates_oracles_and_content(self, profiles):
        source_profile, target_profile = profiles
        source = element_view(source_profile, 0)
        target = element_view(target_profile, 0)
        key = oracle_request_key("thesaurus", source, target)
        assert key == oracle_request_key("thesaurus", source, target)
        assert key != oracle_request_key("other", source, target)
        assert key != oracle_request_key("thesaurus", target, source)

    def test_thesaurus_oracle_is_deterministic_and_bounded(self, profiles):
        source_profile, target_profile = profiles
        oracle = ThesaurusOracle()
        pairs = [
            (element_view(source_profile, i), element_view(target_profile, j))
            for i in range(len(source_profile))
            for j in range(len(target_profile))
        ]
        first = oracle.judge(pairs)
        assert first == oracle.judge(pairs)
        assert all(-1.0 <= verdict <= 1.0 for verdict in first)

    def test_thesaurus_oracle_separates_true_pair_from_stranger(self, profiles):
        source_profile, target_profile = profiles
        birth = element_view(
            source_profile, source_profile.index_of["person_master.birth_dt"]
        )
        date_of_birth = element_view(
            target_profile, target_profile.index_of["individual.dateofbirth"]
        )
        category = element_view(
            target_profile, target_profile.index_of["event.category"]
        )
        [true_verdict, false_verdict] = ThesaurusOracle().judge(
            [(birth, date_of_birth), (birth, category)]
        )
        assert true_verdict > false_verdict

    def test_recorded_oracle_replays_bit_identically(self, profiles):
        source_profile, target_profile = profiles
        pairs = [
            (element_view(source_profile, i), element_view(target_profile, i))
            for i in range(3)
        ]
        recorder = RecordedOracle(inner=ThesaurusOracle())
        live = recorder.judge(pairs)
        replayer = RecordedOracle.from_dict(recorder.to_dict())
        assert replayer.judge(pairs) == live
        assert replayer.judge(list(reversed(pairs))) == list(reversed(live))

    def test_recorded_oracle_default_and_strict(self, profiles):
        source_profile, target_profile = profiles
        pair = (element_view(source_profile, 0), element_view(target_profile, 0))
        assert RecordedOracle(default=0.25).judge([pair]) == [0.25]
        with pytest.raises(KeyError):
            RecordedOracle(strict=True).judge([pair])

    def test_registry(self):
        assert "thesaurus" in oracle_names()
        assert isinstance(build_oracle("thesaurus"), ThesaurusOracle)
        register_oracle("test_constant", lambda: RecordedOracle(default=0.5))
        assert build_oracle("test_constant").judge([({}, {})]) == [0.5]
        with pytest.raises(ValueError):
            build_oracle("no_such_oracle")

    def test_oracle_cost_tier_sits_above_cheap_voters(self):
        from repro.matchers import NameTokenVoter

        assert NameTokenVoter().cost_tier == "cheap"
        assert ThesaurusOracle().cost_tier == "oracle"
        assert issubclass(ThesaurusOracle, OracleVoter)


def _executor(plan: CascadePlan, verdict: float = 0.9, cache=None):
    """An executor whose oracle answers ``verdict`` for every pair."""
    return CascadeExecutor(
        plan, oracle=RecordedOracle(default=verdict), cache=cache
    )


class TestExecutor:
    def test_band_is_strict_and_budget_truncates(self, profiles):
        source_profile, target_profile = profiles
        scores = np.array([0.8, 0.24, -0.1, 0.25, -0.26, 0.0])
        rows = np.arange(6) % len(source_profile)
        cols = np.arange(6) % len(target_profile)
        plan = CascadePlan(band=0.25, budget=2, oracle="thesaurus")
        blended, report = _executor(plan).escalate_pairs(
            source_profile, target_profile, rows, cols, scores, 0.0
        )
        # |0.8|, |0.25| and |-0.26| are outside the strict band.
        assert report.n_ambiguous == 3
        assert report.n_escalated == 2
        assert report.truncated
        # Most ambiguous first: |0.0| then |-0.1|; 0.24 lost to the budget.
        escalated_indices = {2, 5}
        untouched = [i for i in range(6) if i not in escalated_indices]
        np.testing.assert_array_equal(blended[untouched], scores[untouched])
        assert blended[5] == pytest.approx(0.4 * 0.0 + 0.6 * 0.9)
        assert blended[2] == pytest.approx(0.4 * -0.1 + 0.6 * 0.9)

    def test_escalation_set_is_deterministic(self, profiles):
        source_profile, target_profile = profiles
        rng = np.random.default_rng(9)
        n = 40
        scores = rng.uniform(-1, 1, size=n)
        rows = rng.integers(0, len(source_profile), size=n)
        cols = rng.integers(0, len(target_profile), size=n)
        plan = CascadePlan(band=0.5, budget=10)
        runs = [
            _executor(plan).escalate_pairs(
                source_profile, target_profile, rows, cols, scores.copy(), 0.0
            )
            for _ in range(3)
        ]
        baseline = runs[0][1].escalated_pairs
        assert len(baseline) == 10
        for blended, report in runs[1:]:
            assert report.escalated_pairs == baseline
            np.testing.assert_array_equal(blended, runs[0][0])

    def test_warm_cache_changes_cost_not_escalation(self, profiles):
        source_profile, target_profile = profiles
        rng = np.random.default_rng(10)
        n = 30
        scores = rng.uniform(-0.4, 0.4, size=n)
        rows = rng.integers(0, len(source_profile), size=n)
        cols = rng.integers(0, len(target_profile), size=n)
        plan = CascadePlan(band=0.5, budget=12)
        cache = ResponseCache(max_entries=256)
        executor = _executor(plan, cache=cache)
        cold_blended, cold = executor.escalate_pairs(
            source_profile, target_profile, rows, cols, scores.copy(), 0.0
        )
        warm_blended, warm = executor.escalate_pairs(
            source_profile, target_profile, rows, cols, scores.copy(), 0.0
        )
        assert warm.escalated_pairs == cold.escalated_pairs
        assert warm.n_escalated == cold.n_escalated
        assert cold.oracle_calls > 0
        assert warm.oracle_calls == 0
        assert warm.oracle_cache_hits == warm.n_escalated
        np.testing.assert_array_equal(warm_blended, cold_blended)

    def test_budget_zero_escalates_nothing(self, profiles):
        source_profile, target_profile = profiles
        scores = np.array([0.01, -0.02, 0.03])
        rows = np.zeros(3, dtype=int)
        cols = np.arange(3)
        blended, report = _executor(CascadePlan(budget=0)).escalate_pairs(
            source_profile, target_profile, rows, cols, scores, 0.0
        )
        assert report.n_escalated == 0
        assert report.oracle_calls == 0
        assert report.truncated
        assert blended is scores  # not even copied

    def test_oracle_calls_never_exceed_budget(self, profiles):
        source_profile, target_profile = profiles
        rng = np.random.default_rng(11)
        for budget in (0, 1, 5, 17):
            n = 50
            scores = rng.uniform(-0.2, 0.2, size=n)
            rows = rng.integers(0, len(source_profile), size=n)
            cols = rng.integers(0, len(target_profile), size=n)
            _, report = _executor(CascadePlan(budget=budget)).escalate_pairs(
                source_profile, target_profile, rows, cols, scores, 0.0
            )
            assert report.oracle_calls <= budget
            assert report.n_escalated <= budget

    def test_grid_and_pair_paths_agree(self, profiles):
        source_profile, target_profile = profiles
        n_rows, n_cols = 4, 5
        rng = np.random.default_rng(12)
        merged = rng.uniform(-1, 1, size=(n_rows, n_cols))
        plan = CascadePlan(band=0.6, budget=7)
        grid_blended, grid_report = _executor(plan).escalate_grid(
            source_profile, target_profile, None, None, merged.copy(), 0.0
        )
        grid_rows, grid_cols = np.meshgrid(
            np.arange(n_rows), np.arange(n_cols), indexing="ij"
        )
        pair_blended, pair_report = _executor(plan).escalate_pairs(
            source_profile,
            target_profile,
            grid_rows.ravel(),
            grid_cols.ravel(),
            merged.ravel().copy(),
            0.0,
        )
        np.testing.assert_array_equal(grid_blended.ravel(), pair_blended)
        assert grid_report.escalated_pairs == pair_report.escalated_pairs

    def test_judgements_cache_under_clock_free_keys(self, profiles):
        source_profile, target_profile = profiles
        cache = ResponseCache(max_entries=64)
        executor = _executor(CascadePlan(band=0.5, budget=None), cache=cache)
        scores = np.array([0.1])
        executor.escalate_pairs(
            source_profile, target_profile, np.array([0]), np.array([0]), scores, 0.0
        )
        key = oracle_request_key(
            "recorded",
            element_view(source_profile, 0),
            element_view(target_profile, 0),
        )
        assert cache.get(key, ORACLE_CACHE_CLOCKS) == pytest.approx(0.9)
        # Content-addressed entries survive any repository watermark.
        assert cache.evict_watermark((999, 999)) == 0
        assert cache.get(key, ORACLE_CACHE_CLOCKS) == pytest.approx(0.9)

    def test_counters_aggregate_reports(self, profiles):
        source_profile, target_profile = profiles
        counters = CascadeCounters()
        executor = CascadeExecutor(
            CascadePlan(band=0.5, budget=2),
            oracle=RecordedOracle(default=0.5),
            counters=counters,
        )
        scores = np.array([0.1, 0.2, 0.3])
        for _ in range(2):
            executor.escalate_pairs(
                source_profile,
                target_profile,
                np.zeros(3, dtype=int),
                np.arange(3),
                scores.copy(),
                0.0,
            )
        totals = counters.to_dict()
        assert totals["requests"] == 2
        assert totals["ambiguous"] == 6
        assert totals["escalated"] == 4
        assert totals["truncated"] == 2

    def test_report_round_trip(self):
        report = CascadeReport(
            plan=CascadePlan(band=0.3, budget=4),
            n_ambiguous=9,
            n_escalated=4,
            oracle_calls=3,
            oracle_cache_hits=1,
            truncated=True,
            stages=(
                CascadeStage("cheap", 100, 0.5),
                CascadeStage("oracle", 4, 0.1, oracle_calls=3),
            ),
            escalated_pairs=(("a", "b"),),
        )
        rebuilt = CascadeReport.from_dict(report.to_dict())
        assert rebuilt == report                  # escalated_pairs excluded
        assert rebuilt.escalated_pairs == ()      # counts only on the wire
        assert rebuilt.elapsed_seconds == pytest.approx(0.6)


class TestPipelineIntegration:
    def test_zero_cascade_is_bit_identical(self, sample_relational, sample_xml):
        plain = HarmonyMatchEngine().match(sample_relational, sample_xml)
        explicit = HarmonyMatchEngine(cascade=None).match(
            sample_relational, sample_xml
        )
        np.testing.assert_array_equal(plain.matrix.scores, explicit.matrix.scores)
        assert explicit.cascade is None

    def test_zero_budget_cascade_scores_match_plain(
        self, sample_relational, sample_xml
    ):
        service = MatchService()
        plain = service.match_pair(
            sample_relational, sample_xml, options=MatchOptions(execution="exact")
        )
        zero = service.match_pair(
            sample_relational,
            sample_xml,
            options=MatchOptions(
                execution="exact", cascade=CascadePlan(budget=0)
            ),
        )
        np.testing.assert_allclose(
            zero.result.matrix.scores, plain.result.matrix.scores, atol=1e-9
        )
        assert zero.cascade is not None
        assert zero.cascade.n_escalated == 0

    def test_service_threads_cascade_through_both_routes(
        self, sample_relational, sample_xml
    ):
        service = MatchService()
        plan = CascadePlan(band=0.4, budget=6)
        for execution in ("exact", "batch"):
            response = service.match_pair(
                sample_relational,
                sample_xml,
                options=MatchOptions(execution=execution, cascade=plan),
            )
            report = response.cascade
            assert report is not None
            assert report.plan == plan
            assert report.n_escalated <= 6
            assert report.oracle_calls <= 6
            assert [stage.name for stage in report.stages] == ["cheap", "oracle"]
            # The envelope round-trips with the report aboard.
            from repro.service.response import MatchResponse

            assert MatchResponse.from_dict(response.to_dict()).cascade == report
        status = service.cascade_status()
        assert status["requests"] == 2
        assert status["oracle_calls"] + status["oracle_cache_hits"] >= 1
        assert status["compiled_plans"] == 1

    def test_batch_runner_escalates_candidates_only(
        self, sample_relational, sample_xml
    ):
        service = MatchService()
        response = service.match_pair(
            sample_relational,
            sample_xml,
            options=MatchOptions(
                execution="batch", cascade=CascadePlan(band=0.9, budget=None)
            ),
        )
        report = response.cascade
        assert report is not None
        # The cheap stage saw the candidate list, not the cross-product.
        assert report.stages[0].n_pairs == response.n_candidates
        assert report.stages[0].n_pairs < response.n_pairs

    def test_process_pool_workers_rebuild_the_cascade(self, small_pair):
        service = MatchService()
        corpus = {
            "T1": small_pair.target.schema,
            "T2": small_pair.source.schema,
        }
        options = MatchOptions(cascade=CascadePlan(band=0.4, budget=5))
        responses = service.match_corpus(
            small_pair.source.schema,
            corpus,
            options=options,
            executor="process",
            max_workers=2,
        )
        assert len(responses) == 2
        for response in responses:
            assert response.cascade is not None
            assert response.cascade.n_escalated <= 5
