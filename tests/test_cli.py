"""The harmonia CLI surface."""

import pytest

from repro.cli import build_parser, main
from tests.conftest import SAMPLE_DDL, SAMPLE_XSD


@pytest.fixture
def schema_files(tmp_path):
    sql = tmp_path / "a.sql"
    sql.write_text(SAMPLE_DDL)
    xsd = tmp_path / "b.xsd"
    xsd.write_text(SAMPLE_XSD)
    return str(sql), str(xsd)


class TestCli:
    def test_match_command(self, schema_files, capsys):
        sql, xsd = schema_files
        assert main(["match", sql, xsd, "--threshold", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "matched" in out
        assert "pairs in" in out

    def test_batch_command(self, schema_files, capsys):
        sql, xsd = schema_files
        assert main(["batch", sql, xsd, "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "candidates" in out
        assert "batch total: 1 match operations" in out

    def test_batch_all_pairs(self, schema_files, capsys):
        sql, xsd = schema_files
        assert main(["batch", sql, xsd, "--all-pairs", "--limit", "0"]) == 0
        out = capsys.readouterr().out
        assert "batch total: 1 match operations" in out

    def test_batch_needs_targets(self, schema_files):
        sql, _ = schema_files
        with pytest.raises(SystemExit):
            main(["batch", sql])

    def test_vocab_batch_flag(self, schema_files, capsys):
        sql, xsd = schema_files
        assert main(["vocab", sql, xsd, "--batch"]) == 0
        out = capsys.readouterr().out
        assert "comprehensive vocabulary" in out

    def test_overlap_command(self, schema_files, capsys):
        sql, xsd = schema_files
        assert main(["overlap", sql, xsd]) == 0
        out = capsys.readouterr().out
        assert "Overlap analysis" in out

    def test_summarize_command(self, schema_files, capsys):
        sql, _ = schema_files
        assert main(["summarize", sql]) == 0
        out = capsys.readouterr().out
        assert "concepts over" in out

    def test_tree_command(self, schema_files, capsys):
        sql, _ = schema_files
        assert main(["tree", sql]) == 0
        out = capsys.readouterr().out
        assert "ALL_EVENT_VITALS" in out

    def test_unknown_extension(self, tmp_path):
        bogus = tmp_path / "x.txt"
        bogus.write_text("hello")
        with pytest.raises(SystemExit):
            main(["tree", str(bogus)])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_json_loading(self, sample_relational, tmp_path, capsys):
        from repro.schema import dump_schema

        path = tmp_path / "schema.json"
        dump_schema(sample_relational, str(path))
        assert main(["tree", str(path)]) == 0
        assert "PERSON_MASTER" in capsys.readouterr().out

    def test_vocab_command(self, schema_files, capsys):
        sql, xsd = schema_files
        assert main(["vocab", sql, xsd]) == 0
        out = capsys.readouterr().out
        assert "comprehensive vocabulary" in out
        assert "schemata" in out

    def test_vocab_needs_two(self, schema_files):
        sql, _ = schema_files
        with pytest.raises(SystemExit):
            main(["vocab", sql])

    def test_cluster_command(self, schema_files, capsys):
        sql, xsd = schema_files
        assert main(["cluster", sql, xsd, "--min-cohesion", "0.0"]) == 0
        out = capsys.readouterr().out
        assert "COI" in out or "no communities" in out

    def test_search_command(self, schema_files, capsys):
        sql, xsd = schema_files
        assert main(["search", "blood type person", sql, xsd, "--fragments"]) == 0
        out = capsys.readouterr().out
        assert "a" in out  # schema stem name appears
        assert "fragments:" in out

    def test_search_no_hits(self, schema_files, capsys):
        sql, xsd = schema_files
        assert main(["search", "zeppelin cargo manifest", sql, xsd]) == 0
        assert "no schemata match" in capsys.readouterr().out

    def test_duplicate_registry_names_get_suffixes(self, schema_files, capsys):
        sql, _ = schema_files
        assert main(["cluster", sql, sql, "--min-cohesion", "0.0"]) == 0
        # Two copies of the same file cluster perfectly together.
        out = capsys.readouterr().out
        assert "COI(2 systems" in out


class TestCliCorpusMatch:
    def test_corpus_match_text(self, schema_files, capsys):
        sql, xsd = schema_files
        assert main(["corpus-match", sql, xsd, "--top-k", "1", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "corpus-match" in out
        assert "1 registered, 1 retrieved" in out
        assert "match score" in out

    def test_corpus_match_json_envelope(self, schema_files, capsys):
        import json

        from repro.service import CorpusMatchResponse

        sql, xsd = schema_files
        assert main(["corpus-match", sql, xsd, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        response = CorpusMatchResponse.from_dict(payload)
        assert response.n_registered == 1
        assert response.candidates

    def test_corpus_match_needs_a_corpus(self, schema_files):
        sql, _ = schema_files
        with pytest.raises(SystemExit) as excinfo:
            main(["corpus-match", sql])
        assert excinfo.value.code == 2

    def test_corpus_match_registered_name_with_db(self, schema_files, tmp_path, capsys):
        sql, xsd = schema_files
        db = str(tmp_path / "cli.db")
        assert main(["corpus-match", sql, xsd, "--db", db]) == 0
        capsys.readouterr()
        # The corpus persisted; now query by registered name, no files.
        assert main(["corpus-match", "b", "--db", db, "--top-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "reuse on" in out

    def test_corpus_match_unknown_name_exits_2(self, schema_files, tmp_path):
        sql, xsd = schema_files
        db = str(tmp_path / "cli2.db")
        assert main(["corpus-match", sql, xsd, "--db", db]) == 0
        with pytest.raises(SystemExit) as excinfo:
            main(["corpus-match", "nonexistent", "--db", db])
        assert excinfo.value.code == 2


class TestCliService:
    def test_match_json_envelope(self, schema_files, capsys):
        import json

        sql, xsd = schema_files
        assert main(["match", sql, xsd, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["routing"]["route"] in ("exact", "batch")
        assert payload["format_version"] == 1
        from repro.service import MatchResponse

        assert MatchResponse.from_dict(payload).source_name == payload["source"]["schema"]

    def test_match_route_override(self, schema_files, capsys):
        sql, xsd = schema_files
        assert main(["match", sql, xsd, "--route", "batch"]) == 0
        assert "[route=batch]" in capsys.readouterr().out

    def test_match_cascade_json_envelope(self, schema_files, capsys):
        import json

        from repro.service import MatchResponse

        sql, xsd = schema_files
        assert main(["match", sql, xsd, "--cascade", "--oracle-budget", "8",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        response = MatchResponse.from_dict(payload)
        report = response.cascade
        assert report is not None
        assert report.plan.oracle == "thesaurus"     # --cascade's default
        assert report.plan.budget == 8
        assert report.n_escalated <= 8
        assert report.oracle_calls <= 8
        assert response.options.cascade == report.plan

    def test_match_cascade_text_summary(self, schema_files, capsys):
        sql, xsd = schema_files
        assert main(["match", sql, xsd, "--cascade", "--band", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "cascade:" in out
        assert "oracle calls" in out

    def test_match_without_cascade_has_no_report(self, schema_files, capsys):
        import json

        sql, xsd = schema_files
        assert main(["match", sql, xsd, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cascade"] is None
        assert payload["options"]["cascade"] is None

    def test_corpus_match_cascade_totals(self, schema_files, capsys):
        import json

        from repro.service import CorpusMatchResponse

        sql, xsd = schema_files
        assert main(["corpus-match", sql, xsd, "--cascade",
                     "--oracle-budget", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        response = CorpusMatchResponse.from_dict(payload)
        assert response.oracle_calls <= 5 * len(response.candidates)
        totals = response.cascade_totals()
        assert totals is not None
        assert totals == payload["cascade_totals"]
        for candidate in response.candidates:
            assert candidate.cascade is not None
            assert candidate.cascade.n_escalated <= 5

    def test_unknown_cascade_oracle_is_an_error(self, schema_files):
        sql, xsd = schema_files
        with pytest.raises(ValueError, match="unknown oracle"):
            main(["match", sql, xsd, "--cascade", "no_such_oracle"])

    def test_missing_file_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["match", str(tmp_path / "missing.sql"), str(tmp_path / "b.xsd")])
        assert excinfo.value.code == 2

    def test_unparseable_file_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "x.sql"
        bogus.write_text("NOT SQL AT ALL;")
        with pytest.raises(SystemExit) as excinfo:
            main(["tree", str(bogus)])
        assert excinfo.value.code == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_structurally_invalid_json_exits_2(self, tmp_path, capsys):
        # Well-formed JSON, right version, missing fields: still exit 2.
        bad = tmp_path / "x.json"
        bad.write_text('{"format_version": 1}')
        with pytest.raises(SystemExit) as excinfo:
            main(["tree", str(bad)])
        assert excinfo.value.code == 2
        assert "cannot parse" in capsys.readouterr().err
