"""Distances, hierarchical clustering, k-medoids, quality, COI proposals."""

import numpy as np
import pytest

from repro.cluster import (
    DistanceMatrix,
    TermVectorDistance,
    adjusted_rand_index,
    agglomerative,
    cluster_purity,
    k_medoids,
    propose_cois,
    silhouette,
)
from repro.schema import Schema


def themed_schema(name, words):
    schema = Schema(name)
    root = schema.add_root(words[0])
    for word in words[1:]:
        schema.add_child(root, word)
    return schema


@pytest.fixture(scope="module")
def themed_registry():
    """Two obvious groups: medical schemas and vehicle schemas."""
    return {
        "med1": themed_schema("med1", ["patient", "blood_test", "diagnosis", "physician"]),
        "med2": themed_schema("med2", ["patient", "blood_pressure", "diagnosis", "ward"]),
        "med3": themed_schema("med3", ["patient", "treatment", "physician", "admission"]),
        "veh1": themed_schema("veh1", ["vehicle", "engine", "registration", "mileage"]),
        "veh2": themed_schema("veh2", ["vehicle", "chassis", "registration", "fuel"]),
        "veh3": themed_schema("veh3", ["vehicle", "engine", "inspection", "owner"]),
    }


@pytest.fixture(scope="module")
def themed_distances(themed_registry):
    return TermVectorDistance().matrix(themed_registry)


class TestDistanceMatrix:
    def test_validation_symmetry(self):
        with pytest.raises(ValueError):
            DistanceMatrix(["a", "b"], np.array([[0.0, 1.0], [0.5, 0.0]]))

    def test_validation_diagonal(self):
        with pytest.raises(ValueError):
            DistanceMatrix(["a", "b"], np.array([[0.1, 1.0], [1.0, 0.0]]))

    def test_validation_shape(self):
        with pytest.raises(ValueError):
            DistanceMatrix(["a"], np.zeros((2, 2)))

    def test_lookup(self, themed_distances):
        assert themed_distances.distance("med1", "med1") == 0.0
        assert 0.0 <= themed_distances.distance("med1", "veh1") <= 1.0

    def test_same_theme_closer(self, themed_distances):
        within = themed_distances.distance("med1", "med2")
        across = themed_distances.distance("med1", "veh1")
        assert within < across


class TestAgglomerative:
    def test_recovers_planted_groups(self, themed_distances):
        dendrogram = agglomerative(themed_distances, linkage="average")
        clusters = dendrogram.cut_k(2)
        assert sorted(sorted(c) for c in clusters) == [
            ["med1", "med2", "med3"],
            ["veh1", "veh2", "veh3"],
        ]

    def test_cut_k_extremes(self, themed_distances):
        dendrogram = agglomerative(themed_distances)
        assert len(dendrogram.cut_k(6)) == 6
        assert len(dendrogram.cut_k(1)) == 1
        with pytest.raises(ValueError):
            dendrogram.cut_k(0)
        with pytest.raises(ValueError):
            dendrogram.cut_k(7)

    def test_heights_monotone_for_average_linkage(self, themed_distances):
        dendrogram = agglomerative(themed_distances, linkage="complete")
        heights = dendrogram.heights()
        assert heights == sorted(heights)

    def test_cut_height(self, themed_distances):
        dendrogram = agglomerative(themed_distances)
        everything = dendrogram.cut_height(2.0)
        assert len(everything) == 1
        nothing = dendrogram.cut_height(-0.1)
        assert len(nothing) == 6

    def test_linkage_validation(self, themed_distances):
        with pytest.raises(ValueError):
            agglomerative(themed_distances, linkage="ward")

    def test_single_and_complete_also_work(self, themed_distances):
        for linkage in ("single", "complete"):
            clusters = agglomerative(themed_distances, linkage=linkage).cut_k(2)
            assert len(clusters) == 2

    def test_empty_matrix(self):
        empty = DistanceMatrix([], np.zeros((0, 0)))
        dendrogram = agglomerative(empty)
        assert dendrogram.merges == []


class TestKMedoids:
    def test_recovers_planted_groups(self, themed_distances):
        result = k_medoids(themed_distances, k=2, seed=1)
        assert sorted(sorted(c) for c in result.clusters()) == [
            ["med1", "med2", "med3"],
            ["veh1", "veh2", "veh3"],
        ]

    def test_medoids_are_members(self, themed_distances):
        result = k_medoids(themed_distances, k=2, seed=1)
        for medoid, cluster in zip(
            sorted(result.medoids), sorted(result.clusters(), key=lambda c: sorted(c)[0])
        ):
            assert any(medoid in cluster for cluster in result.clusters())

    def test_k_validation(self, themed_distances):
        with pytest.raises(ValueError):
            k_medoids(themed_distances, k=0)
        with pytest.raises(ValueError):
            k_medoids(themed_distances, k=7)

    def test_deterministic(self, themed_distances):
        first = k_medoids(themed_distances, k=2, seed=3)
        second = k_medoids(themed_distances, k=2, seed=3)
        assert first.clusters() == second.clusters()


class TestQuality:
    def test_silhouette_better_for_true_clustering(self, themed_distances):
        good = [{"med1", "med2", "med3"}, {"veh1", "veh2", "veh3"}]
        bad = [{"med1", "veh1", "med3"}, {"veh2", "med2", "veh3"}]
        assert silhouette(themed_distances, good) > silhouette(themed_distances, bad)

    def test_purity_perfect(self):
        truth = {"a": 0, "b": 0, "c": 1}
        assert cluster_purity([{"a", "b"}, {"c"}], truth) == 1.0

    def test_purity_lumped(self):
        truth = {"a": 0, "b": 0, "c": 1, "d": 1}
        assert cluster_purity([{"a", "b", "c", "d"}], truth) == 0.5

    def test_ari_perfect_and_random(self):
        truth = {"a": 0, "b": 0, "c": 1, "d": 1}
        assert adjusted_rand_index([{"a", "b"}, {"c", "d"}], truth) == pytest.approx(1.0)
        assert adjusted_rand_index([{"a", "c"}, {"b", "d"}], truth) < 0.5

    def test_uncovered_name_raises(self, themed_distances):
        with pytest.raises(ValueError):
            silhouette(themed_distances, [{"med1"}])


class TestCoiProposals:
    def test_proposes_both_groups(self, themed_distances):
        proposals = propose_cois(themed_distances, n_clusters=2, min_cohesion=0.0)
        members = sorted(sorted(p.members) for p in proposals)
        assert members == [
            ["med1", "med2", "med3"],
            ["veh1", "veh2", "veh3"],
        ]

    def test_min_size_filters_singletons(self, themed_distances):
        proposals = propose_cois(
            themed_distances, n_clusters=6, min_size=2, min_cohesion=0.0
        )
        assert proposals == []

    def test_cohesion_ordering(self, themed_distances):
        proposals = propose_cois(themed_distances, n_clusters=2, min_cohesion=0.0)
        cohesions = [p.cohesion for p in proposals]
        assert cohesions == sorted(cohesions, reverse=True)

    def test_describe(self, themed_distances):
        proposals = propose_cois(themed_distances, n_clusters=2, min_cohesion=0.0)
        assert "COI(" in proposals[0].describe()

    def test_empty_registry(self):
        empty = DistanceMatrix([], np.zeros((0, 0)))
        assert propose_cois(empty) == []
