"""Thread-safety regression: shared caches under a concurrent hammer.

The serving tier shares ONE MatchService (profile cache, feature space,
corpus index, mapping graph) and ONE MetadataRepository across handler
threads.  These tests hammer the shared paths from a thread pool and hold
the results to the serial answers -- any lost update, half-rebuilt index,
or torn cache would show up as a mismatch or an exception.

Equality contract: identical pairs, statuses and notes, scores to 1e-9.
Bitwise score identity is deliberately NOT asserted: the shared
vocabulary interns tokens in arrival order, so a different thread
interleaving permutes sparse column order and with it the (non-
associative) float summation order inside dot products -- a last-ulp
effect, not a data race.  The FeatureSpace lock is what keeps it at one
ulp: without it this suite fails with wholesale wrong scores.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.corpus import CorpusIndex
from repro.repository import MetadataRepository
from repro.service import CorpusMatchRequest, MatchService, NetworkMatchRequest
from repro.synthetic import generate_clustered_corpus

N_THREADS = 8
ROUNDS = 3
SCORE_TOLERANCE = 1e-9


def assert_same_correspondences(actual, expected, context=""):
    """Same pair set, statuses and notes; scores equal to 1e-9."""
    ours = {c.pair: c for c in actual}
    theirs = {c.pair: c for c in expected}
    assert set(ours) == set(theirs), context
    for pair, mine in ours.items():
        reference = theirs[pair]
        assert mine.status is reference.status, (context, pair)
        assert mine.note == reference.note, (context, pair)
        assert abs(mine.score - reference.score) <= SCORE_TOLERANCE, (context, pair)


@pytest.fixture(scope="module")
def corpus_schemata():
    corpus = generate_clustered_corpus(
        n_domains=2, schemata_per_domain=3, seed=2009
    )
    return [generated.schema for generated in corpus.schemata]


@pytest.fixture
def repository(corpus_schemata):
    repository = MetadataRepository()
    for schema in corpus_schemata:
        repository.register(schema)
    return repository


class TestThreadedServiceEqualsSerial:
    def test_match_pair_hammer(self, repository):
        names = sorted(repository.schema_names())
        pairs = list(itertools.combinations(names, 2))
        serial_service = MatchService(repository=repository)
        serial = {
            pair: serial_service.match_pair(*pair).correspondences
            for pair in pairs
        }

        hammered_service = MatchService(repository=repository)
        workload = pairs * ROUNDS

        def run(pair):
            return pair, hammered_service.match_pair(*pair).correspondences

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            for pair, correspondences in pool.map(run, workload):
                assert_same_correspondences(
                    correspondences, serial[pair], context=pair
                )

    def test_corpus_match_hammer(self, repository):
        names = sorted(repository.schema_names())
        requests = [CorpusMatchRequest(source=name, top_k=3) for name in names]
        serial_service = MatchService(repository=repository)
        serial = {}
        for request in requests:
            response = serial_service.corpus_match(request)
            serial[request.source] = [
                (c.target_name, c.correspondences) for c in response.candidates
            ]

        hammered_service = MatchService(repository=repository)

        def run(request):
            response = hammered_service.corpus_match(request)
            return request.source, [
                (c.target_name, c.correspondences) for c in response.candidates
            ]

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            for source, candidates in pool.map(run, requests * ROUNDS):
                reference = serial[source]
                assert [name for name, _ in candidates] == [
                    name for name, _ in reference
                ], source
                for (name, ours), (_, theirs) in zip(candidates, reference):
                    assert_same_correspondences(
                        ours, theirs, context=(source, name)
                    )

    def test_network_match_hammer(self, repository):
        service = MatchService(repository=repository)
        names = sorted(repository.schema_names())
        # Store a lineage so the network has edges to route through.
        for left, right in zip(names, names[1:]):
            service.persist(service.match_pair(left, right))
        requests = [
            NetworkMatchRequest(source=left, target=right, max_hops=2)
            for left, right in zip(names, names[2:])
        ]
        serial_service = MatchService(repository=repository)
        serial = {
            (r.source, r.target): serial_service.network_match(r).correspondences
            for r in requests
        }

        hammered_service = MatchService(repository=repository)

        def run(request):
            return request, hammered_service.network_match(request).correspondences

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            for request, correspondences in pool.map(run, requests * ROUNDS):
                assert_same_correspondences(
                    correspondences,
                    serial[(request.source, request.target)],
                    context=(request.source, request.target),
                )


class TestIndexRefreshUnderWrites:
    def test_queries_race_registrations(self, repository, corpus_schemata):
        """Readers never see half-rebuilt postings while writers register."""
        index = CorpusIndex(repository)
        index.refresh()
        query = corpus_schemata[0]
        errors: list[Exception] = []

        def reader():
            try:
                for _ in range(30):
                    hits = index.top_candidates(query, limit=5)
                    assert len(hits) >= 1
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        extra = generate_clustered_corpus(
            n_domains=2, schemata_per_domain=2, seed=7
        )
        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            futures = [pool.submit(reader) for _ in range(N_THREADS - 1)]
            for generated in extra.schemata:
                repository.register(generated.schema, name=f"late_{generated.schema.name}")
            for future in futures:
                future.result()
        assert errors == []
        # The index converges on the final registry.
        assert len(index) == len(repository)
        assert not index.is_stale()

    def test_register_landing_mid_refresh_stays_visible(
        self, repository, corpus_schemata
    ):
        """The refresh stamps the generation captured BEFORE scanning the
        registry: a register landing mid-refresh must leave the index
        stale (to be picked up next query), never silently unindexed."""
        index = CorpusIndex(repository)
        index.refresh()
        repository.register(corpus_schemata[0], name="pre_refresh_arrival")
        original = repository.schema_names

        def racing_schema_names():
            names = original()
            # The interleaved write: lands after the refresh captured its
            # clock and scanned the registry, so it is not in `names`.
            repository.register(
                corpus_schemata[1], name="mid_refresh_arrival"
            )
            return names

        repository.schema_names = racing_schema_names
        try:
            index.refresh()
        finally:
            del repository.schema_names
        assert "mid_refresh_arrival" not in index._index.names
        assert index.is_stale()  # the stamped clock predates the write
        assert "mid_refresh_arrival" in index.names  # next query picks it up
