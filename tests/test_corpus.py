"""The corpus subsystem: index lifecycle, reuse policy, corpus_match."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import FINGERPRINT_FORMAT_VERSION, CorpusIndex
from repro.match import Correspondence, MatchStatus, SemanticAnnotation
from repro.repository import (
    AssertionMethod,
    MetadataRepository,
    ReusePolicy,
    TrustPolicy,
)
from repro.schema import Schema
from repro.service import (
    CorpusCandidate,
    CorpusMatchRequest,
    CorpusMatchResponse,
    MatchOptions,
    MatchService,
)


def themed_schema(name, roots):
    schema = Schema(name)
    for root, children in roots.items():
        parent = schema.add_root(root)
        for child in children:
            schema.add_child(parent, child)
    return schema


def medical(name, extra=()):
    return themed_schema(
        name,
        {"patient": ["blood_test", "diagnosis", "physician", *extra]},
    )


@pytest.fixture(params=["memory", "sqlite"])
def repository(request, tmp_path):
    if request.param == "memory":
        repo = MetadataRepository()
    else:
        repo = MetadataRepository(path=str(tmp_path / "corpus.db"))
    yield repo
    repo.close()


class TestCorpusIndexLifecycle:
    def test_fresh_index_is_stale_until_refreshed(self, repository):
        repository.register(medical("m1"))
        index = CorpusIndex(repository)
        assert index.is_stale()
        refresh = index.refresh()
        assert not index.is_stale()
        assert refresh.n_indexed == 1
        assert refresh.n_derived == 1
        assert index.refresh().was_noop

    def test_register_marks_stale_and_refresh_is_incremental(self, repository):
        repository.register(medical("m1"))
        index = CorpusIndex(repository)
        index.refresh()
        repository.register(medical("m2"))
        assert index.is_stale()
        refresh = index.refresh()
        # Only the new schema was touched; m1 stayed indexed as-is.
        assert refresh.n_added == 1
        assert refresh.n_indexed == 2
        assert not index.is_stale()

    def test_unregister_marks_stale_and_drops_entry(self, repository):
        for name in ("m1", "m2"):
            repository.register(medical(name))
        index = CorpusIndex(repository)
        index.refresh()
        repository.unregister("m2")
        assert index.is_stale()
        refresh = index.refresh()
        assert refresh.n_removed == 1
        assert sorted(index.names) == ["m1"]

    def test_reregister_under_same_name_reindexes(self, repository):
        repository.register(medical("m1"))
        index = CorpusIndex(repository)
        index.refresh()
        # Same name, different content: the fingerprint was dropped on
        # register, so the refresh must re-derive, not reload stale terms.
        repository.register(medical("m1", extra=["zeppelin_count"]), name="m1")
        assert index.is_stale()
        refresh = index.refresh()
        assert refresh.n_derived == 1
        assert refresh.n_from_fingerprints == 0
        # The new content is retrievable and the fingerprint re-persisted.
        hits = index.top_candidates(
            themed_schema("probe", {"hangar": ["zeppelin_count"]}), limit=5
        )
        assert [hit.schema_name for hit in hits] == ["m1"]
        assert repository.get_fingerprint("m1") is not None

    def test_reregister_identical_schema_is_a_noop(self, repository):
        repository.register(medical("m1"))
        index = CorpusIndex(repository)
        index.refresh()
        generation = repository.generation
        # Identical content under the same name: nothing changes -- the
        # fingerprint survives and the index never goes stale (the CLI
        # re-registers its whole corpus on every --db invocation).
        repository.register(medical("m1"))
        assert repository.generation == generation
        assert repository.get_fingerprint("m1") is not None
        assert not index.is_stale()

    def test_query_refreshes_lazily(self, repository):
        repository.register(medical("m1"))
        index = CorpusIndex(repository)
        hits = index.top_candidates(medical("probe"), limit=5)
        assert [hit.schema_name for hit in hits] == ["m1"]
        repository.register(medical("m2"))
        hits = index.top_candidates(medical("probe"), limit=5)
        assert sorted(hit.schema_name for hit in hits) == ["m1", "m2"]

    def test_top_candidates_validation(self, repository):
        index = CorpusIndex(repository)
        with pytest.raises(ValueError):
            index.top_candidates(medical("probe"), limit=0)


class TestFingerprintPersistence:
    def test_reopen_reloads_from_fingerprints(self, tmp_path):
        path = str(tmp_path / "fp.db")
        with MetadataRepository(path=path) as repository:
            for name in ("m1", "m2", "m3"):
                repository.register(medical(name))
            cold = CorpusIndex(repository).refresh()
            assert cold.n_derived == 3
        with MetadataRepository(path=path) as reopened:
            warm = CorpusIndex(reopened).refresh()
            assert warm.n_from_fingerprints == 3
            assert warm.n_derived == 0

    def test_fingerprint_reload_ranks_like_cold_build(self, tmp_path):
        path = str(tmp_path / "rank.db")
        probe = medical("probe")
        with MetadataRepository(path=path) as repository:
            repository.register(medical("m1"))
            repository.register(themed_schema("v1", {"vehicle": ["fuel", "engine"]}))
            cold_hits = CorpusIndex(repository).top_candidates(probe, limit=5)
        with MetadataRepository(path=path) as reopened:
            warm_hits = CorpusIndex(reopened).top_candidates(probe, limit=5)
        assert [(h.schema_name, pytest.approx(h.score)) for h in cold_hits] == [
            (h.schema_name, h.score) for h in warm_hits
        ]

    def test_tampered_fingerprint_is_rederived(self, tmp_path):
        path = str(tmp_path / "tamper.db")
        with MetadataRepository(path=path) as repository:
            repository.register(medical("m1"))
            CorpusIndex(repository).refresh()
        with MetadataRepository(path=path) as reopened:
            fingerprint = reopened.get_fingerprint("m1")
            fingerprint["hash"] = "not-the-payload-hash"
            reopened.put_fingerprint("m1", fingerprint)
            refresh = CorpusIndex(reopened).refresh()
            assert refresh.n_derived == 1
            assert refresh.n_from_fingerprints == 0

    def test_sibling_index_over_one_repository_stays_fresh(self, repository):
        # Two indexes share one repository; whichever refreshes second
        # must still notice re-registered content even though the first
        # refresh already re-persisted the fingerprint.
        repository.register(medical("m1"))
        first = CorpusIndex(repository)
        second = CorpusIndex(repository)
        first.refresh()
        second.refresh()
        repository.register(medical("m1", extra=["zeppelin_count"]), name="m1")
        assert first.refresh().n_added == 1      # re-derives, re-persists
        refresh = second.refresh()               # fingerprint present again...
        assert refresh.n_added == 1              # ...but hash changed: rebuilt
        probe = themed_schema("probe", {"hangar": ["zeppelin_count"]})
        assert [h.schema_name for h in second.top_candidates(probe, limit=5)] == ["m1"]

    def test_unknown_format_version_is_rederived(self, tmp_path):
        path = str(tmp_path / "version.db")
        with MetadataRepository(path=path) as repository:
            repository.register(medical("m1"))
            CorpusIndex(repository).refresh()
        with MetadataRepository(path=path) as reopened:
            fingerprint = reopened.get_fingerprint("m1")
            fingerprint["format_version"] = FINGERPRINT_FORMAT_VERSION + 1
            reopened.put_fingerprint("m1", fingerprint)
            refresh = CorpusIndex(reopened).refresh()
            assert refresh.n_derived == 1


class TestRepositoryEdgeCases:
    def test_unregister_target_side_cascades_only_its_matches(self, repository):
        for name in ("a", "b", "c"):
            repository.register(medical(name))
        repository.store_match(
            "a", "b", Correspondence("x", "y", 0.5), asserted_by="alice"
        )
        repository.store_match(
            "a", "c", Correspondence("x", "z", 0.6), asserted_by="alice"
        )
        repository.unregister("b")  # referenced as *target* only
        remaining = repository.matches()
        assert len(remaining) == 1
        assert remaining[0].target_schema == "c"
        assert repository.matches_touching("b") == []

    def test_unregister_drops_fingerprint(self, repository):
        repository.register(medical("a"))
        CorpusIndex(repository).refresh()
        assert repository.get_fingerprint("a") is not None
        repository.unregister("a")
        assert repository.get_fingerprint("a") is None
        assert repository.fingerprint_names() == []

    def test_generation_advances_on_register_and_unregister(self, repository):
        start = repository.generation
        repository.register(medical("a"))
        assert repository.generation == start + 1
        repository.unregister("a")
        assert repository.generation == start + 2

    def test_store_matches_is_one_sqlite_transaction(self, tmp_path):
        repository = MetadataRepository(path=str(tmp_path / "txn.db"))
        for name in ("a", "b"):
            repository.register(medical(name))
        connection = repository._backend._connection
        statements = []
        connection.set_trace_callback(statements.append)
        count = repository.store_matches(
            "a",
            "b",
            [Correspondence("x", f"y{i}", 0.5) for i in range(10)],
            asserted_by="engine",
        )
        connection.set_trace_callback(None)
        assert count == 10
        # Two transactions for the whole batch -- one reserving the
        # sequence block, ONE writing every row plus the clock bump --
        # never one commit per match.
        commits = sum(1 for s in statements if s.strip().upper() == "COMMIT")
        assert commits == 2
        assert len(repository.matches()) == 10
        repository.close()

    def test_store_matches_requires_registered_schemas(self, repository):
        with pytest.raises(KeyError):
            repository.store_matches(
                "ghost", "b", [Correspondence("x", "y", 0.5)], asserted_by="a"
            )


class TestReusePolicy:
    def _repo(self):
        repository = MetadataRepository()
        for name in ("a", "b", "c"):
            repository.register(medical(name))
        return repository

    def test_human_prior_boosts_more_than_automatic(self):
        repository = self._repo()
        repository.store_match(
            "a", "b", Correspondence("x1", "y1", 0.8), asserted_by="alice",
            method=AssertionMethod.HUMAN_VALIDATED,
        )
        repository.store_match(
            "a", "b", Correspondence("x2", "y2", 0.8), asserted_by="engine",
        )
        fresh = [Correspondence("x1", "y1", 0.4), Correspondence("x2", "y2", 0.4)]
        outcome = ReusePolicy().rematch(repository, "a", "b", fresh)
        by_pair = {c.pair: c for c in outcome.correspondences}
        assert by_pair[("x1", "y1")].score > by_pair[("x2", "y2")].score > 0.4
        assert outcome.n_boosted == 2

    def test_boosted_note_carries_prior_provenance(self):
        repository = self._repo()
        repository.store_match(
            "a", "b", Correspondence("x", "y", 0.8), asserted_by="alice",
            method=AssertionMethod.HUMAN_VALIDATED,
        )
        outcome = ReusePolicy().rematch(
            repository, "a", "b", [Correspondence("x", "y", 0.4)]
        )
        note = outcome.correspondences[0].note
        assert "reuse-boosted" in note
        assert "alice" in note
        assert "human" in note

    def test_flipped_direction_priors_apply(self):
        repository = self._repo()
        repository.store_match(
            "b", "a", Correspondence("y", "x", 0.8), asserted_by="alice",
            method=AssertionMethod.HUMAN_VALIDATED,
        )
        outcome = ReusePolicy().rematch(
            repository, "a", "b", [Correspondence("x", "y", 0.4)]
        )
        assert outcome.n_boosted == 1
        assert outcome.correspondences[0].score > 0.4

    def test_missed_prior_is_seeded_with_provenance(self):
        repository = self._repo()
        repository.store_match(
            "a", "b", Correspondence("x", "y", 0.9), asserted_by="alice",
            method=AssertionMethod.HUMAN_VALIDATED,
        )
        outcome = ReusePolicy().rematch(repository, "a", "b", [])
        assert outcome.n_seeded == 1
        seeded = outcome.correspondences[0]
        assert seeded.asserted_by == "reuse"
        assert seeded.status is MatchStatus.CANDIDATE
        assert "reuse-seeded" in seeded.note
        assert seeded.score == pytest.approx(0.9 * 0.8)  # weight 1.0, seed_scale 0.8

    def test_weak_prior_is_not_seeded(self):
        repository = self._repo()
        repository.store_match(
            "a", "b", Correspondence("x", "y", 0.2), asserted_by="engine",
        )
        outcome = ReusePolicy().rematch(repository, "a", "b", [])
        # 0.2 x automatic 0.5 x seed_scale 0.8 = 0.08 < seed_floor 0.2
        assert outcome.n_seeded == 0

    def test_rejected_priors_never_boost_or_seed(self):
        repository = self._repo()
        repository.store_match(
            "a", "b",
            Correspondence("x", "y", 0.9, status=MatchStatus.REJECTED),
            asserted_by="alice", method=AssertionMethod.HUMAN_VALIDATED,
        )
        outcome = ReusePolicy().rematch(
            repository, "a", "b", [Correspondence("x", "y", 0.4)]
        )
        assert outcome.n_boosted == 0
        assert outcome.n_seeded == 0
        assert outcome.correspondences[0].score == pytest.approx(0.4)

    def test_rejection_vetoes_older_priors_for_the_pair(self):
        # An engineer's "spurious" verdict buries every other assertion
        # for that pair -- including older automatic ones and flipped
        # rejections recorded in the other direction.
        repository = self._repo()
        repository.store_match(
            "a", "b", Correspondence("x", "y", 0.9), asserted_by="engine",
        )
        repository.store_match(
            "b", "a",
            Correspondence("y", "x", 0.9, status=MatchStatus.REJECTED),
            asserted_by="alice", method=AssertionMethod.HUMAN_VALIDATED,
        )
        outcome = ReusePolicy().rematch(
            repository, "a", "b", [Correspondence("x", "y", 0.4)]
        )
        assert outcome.n_boosted == 0
        assert outcome.n_seeded == 0
        assert outcome.correspondences[0].score == pytest.approx(0.4)

    def test_prefetched_pool_matches_store_scans(self):
        repository = self._repo()
        repository.store_match(
            "a", "b", Correspondence("x", "y", 0.8), asserted_by="alice",
            method=AssertionMethod.HUMAN_VALIDATED,
        )
        repository.store_match(
            "a", "c", Correspondence("x", "z", 0.7), asserted_by="engine"
        )
        repository.store_match(
            "c", "b", Correspondence("z", "y", 0.6), asserted_by="engine"
        )
        policy = ReusePolicy()
        scanned = policy.priors(repository, "a", "b")
        pooled = policy.priors(repository, "a", "b", pool=repository.matches())
        assert scanned == pooled

    def test_trust_gate_filters_priors(self):
        repository = self._repo()
        repository.store_match(
            "a", "b", Correspondence("x", "y", 0.9), asserted_by="engine",
        )
        policy = ReusePolicy(trust=TrustPolicy(require_human=True))
        outcome = policy.rematch(
            repository, "a", "b", [Correspondence("x", "y", 0.4)]
        )
        assert outcome.n_boosted == 0
        assert outcome.n_priors == 0

    def test_composed_priors_join_at_composed_weight(self):
        repository = self._repo()
        repository.store_match(
            "a", "c", Correspondence("x", "z", 0.8), asserted_by="alice"
        )
        repository.store_match(
            "c", "b", Correspondence("z", "y", 0.7), asserted_by="alice"
        )
        priors = ReusePolicy().priors(repository, "a", "b")
        assert ("x", "y") in priors
        prior = priors[("x", "y")]
        assert prior.method is AssertionMethod.COMPOSED
        assert prior.weighted_score == pytest.approx(0.35 * 0.7)
        assert not ReusePolicy(include_composed=False).priors(repository, "a", "b")

    def test_validation(self):
        with pytest.raises(ValueError):
            ReusePolicy(boost=1.5)
        with pytest.raises(ValueError):
            ReusePolicy(human_weight=-0.1)
        with pytest.raises(ValueError):
            ReusePolicy(seed_floor=2.0)


class TestCorpusMatchService:
    def _service(self):
        repository = MetadataRepository()
        repository.register(medical("med1"))
        repository.register(medical("med2", extra=["ward"]))
        repository.register(
            themed_schema("motor", {"vehicle": ["registration", "fuel_level"]})
        )
        return MatchService(repository=repository)

    def test_requires_repository(self):
        with pytest.raises(ValueError):
            MatchService().corpus_match(CorpusMatchRequest(source=medical("q")))
        with pytest.raises(ValueError):
            MatchService().corpus_index()

    def test_registered_source_is_excluded_and_ranked(self):
        service = self._service()
        response = service.corpus_match(CorpusMatchRequest(source="med1", top_k=2))
        assert response.source_name == "med1"
        assert "med1" not in response.candidate_names
        assert response.candidate_names[0] == "med2"
        assert response.n_registered == 3
        assert len(response) <= 2
        assert response.best.target_name == "med2"
        assert response.best.correspondences

    def test_inline_source_skips_reuse(self):
        service = self._service()
        response = service.corpus_match(
            CorpusMatchRequest(source=medical("probe"), top_k=3)
        )
        assert response.reuse_applied is False

    def test_same_named_registered_schema_is_not_the_inline_source(self):
        # An inline query whose .name collides with a *different*
        # registered schema: that schema stays a candidate, and its
        # stored priors are NOT lent to the inline query.
        service = self._service()
        repository = service.repository
        repository.store_match(
            "med1", "med2",
            Correspondence("m.x", "p.y", 0.9), asserted_by="alice",
            method=AssertionMethod.HUMAN_VALIDATED,
        )
        inline = medical("med1", extra=["surgeon"])  # same name, new content
        response = service.corpus_match(CorpusMatchRequest(source=inline, top_k=3))
        assert "med1" in response.candidate_names   # still a candidate
        assert response.reuse_applied is False      # no name-borrowed priors
        assert all(c.n_boosted == 0 for c in response.candidates)
        assert response.source_name == "med1"       # the schema's own name

    def test_underfilled_retrieval_widens_the_fetch(self):
        # Several identical registered copies of the query must not
        # shrink the candidate shortlist below the requested width.
        service = self._service()
        service.repository.register(medical("med3", extra=["clinic"]))
        query = medical("m_query")
        for alias in ("copy_a", "copy_b", "copy_c"):
            service.repository.register(query, name=alias)
        response = service.corpus_match(
            CorpusMatchRequest(source=query, top_k=3, retrieval_limit=3)
        )
        assert not set(response.candidate_names) & {"copy_a", "copy_b", "copy_c"}
        # All three real medical schemata were still retrieved and matched
        # even though the identical copies dominate the BM25 ranking.
        assert response.n_retrieved == 3
        assert set(response.candidate_names) == {"med1", "med2", "med3"}

    def test_by_name_query_keeps_identical_siblings(self):
        # Two distinct registered systems with identical schemata -- the
        # consolidation case: querying one BY NAME must surface the other
        # as the (obviously best) candidate, not hide it as a "copy".
        service = self._service()
        service.repository.register(
            service.repository.schema("med1"), name="med1_mirror"
        )
        response = service.corpus_match(CorpusMatchRequest(source="med1", top_k=2))
        assert response.candidate_names[0] == "med1_mirror"
        assert "med1" not in response.candidate_names

    def test_copy_registered_under_custom_name_is_excluded(self):
        # The query schema lives in the registry under a different name:
        # content-based exclusion must drop it (a self-match would
        # otherwise take the top slot), and reuse keys on that name.
        service = self._service()
        query = medical("m_query")
        service.repository.register(query, name="custom_alias")
        response = service.corpus_match(CorpusMatchRequest(source=query, top_k=3))
        assert "custom_alias" not in response.candidate_names
        assert response.source_name == "custom_alias"
        assert response.reuse_applied is True

    def test_prior_assertions_boost_candidates(self):
        service = self._service()
        repository = service.repository
        baseline = service.corpus_match(
            CorpusMatchRequest(source="med1", top_k=1, reuse=None)
        )
        top = baseline.best
        strongest = top.correspondences[0]
        repository.store_match(
            "med1", top.target_name,
            strongest.accept(by="alice"),
            asserted_by="alice", method=AssertionMethod.HUMAN_VALIDATED,
        )
        boosted = service.corpus_match(CorpusMatchRequest(source="med1", top_k=1))
        assert boosted.reuse_applied is True
        assert boosted.best.n_boosted >= 1
        boosted_strongest = {
            c.pair: c for c in boosted.best.correspondences
        }[strongest.pair]
        assert boosted_strongest.score > strongest.score
        assert "reuse-boosted" in boosted_strongest.note

    def test_exclude_and_retrieval_limit(self):
        service = self._service()
        response = service.corpus_match(
            CorpusMatchRequest(
                source="med1", top_k=3, exclude=("med2",), retrieval_limit=1
            )
        )
        assert "med2" not in response.candidate_names
        assert response.n_retrieved <= 1

    def test_request_validation(self):
        with pytest.raises(ValueError):
            CorpusMatchRequest(source="a", top_k=0)
        with pytest.raises(ValueError):
            CorpusMatchRequest(source="a", retrieval_limit=0)
        with pytest.raises(TypeError):
            CorpusMatchRequest(source=42)
        assert CorpusMatchRequest(source="a", top_k=5).effective_retrieval_limit == 15
        assert (
            CorpusMatchRequest(source="a", retrieval_limit=7).effective_retrieval_limit
            == 7
        )


def _score_strategy():
    return st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)


def _options_strategy():
    return st.one_of(
        st.just(MatchOptions()),
        st.builds(
            MatchOptions,
            voters=st.just(("name_token", "path")),
            merger=st.sampled_from(("conviction_linear", "average", "min")),
            selection=st.sampled_from(("threshold", "top_k")),
            threshold=_score_strategy(),
            execution=st.sampled_from(("auto", "exact", "batch")),
        ),
    )


def _correspondence_strategy():
    return st.builds(
        Correspondence,
        source_id=st.text(min_size=1, max_size=10),
        target_id=st.text(min_size=1, max_size=10),
        score=_score_strategy(),
        status=st.sampled_from(MatchStatus),
        annotation=st.sampled_from(SemanticAnnotation),
        asserted_by=st.text(min_size=1, max_size=10),
        note=st.text(max_size=10),
    )


def _candidate_strategy():
    return st.builds(
        CorpusCandidate,
        target_name=st.text(min_size=1, max_size=12),
        retrieval_score=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        match_score=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        n_source=st.integers(min_value=0, max_value=5000),
        n_target=st.integers(min_value=0, max_value=5000),
        n_candidates=st.integers(min_value=0, max_value=10_000_000),
        elapsed_seconds=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        n_boosted=st.integers(min_value=0, max_value=100),
        n_seeded=st.integers(min_value=0, max_value=100),
        correspondences=st.lists(_correspondence_strategy(), max_size=4).map(tuple),
    )


def _corpus_response_strategy():
    return st.builds(
        CorpusMatchResponse,
        source_name=st.text(min_size=1, max_size=12),
        n_registered=st.integers(min_value=0, max_value=10_000),
        n_retrieved=st.integers(min_value=0, max_value=10_000),
        top_k=st.integers(min_value=1, max_value=20),
        elapsed_seconds=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        retrieval_seconds=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        options=_options_strategy(),
        reuse_applied=st.booleans(),
        candidates=st.lists(_candidate_strategy(), max_size=3).map(tuple),
    )


class TestCorpusResponseRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(_corpus_response_strategy())
    def test_dict_and_json_round_trip(self, response):
        assert CorpusMatchResponse.from_dict(response.to_dict()) == response
        assert CorpusMatchResponse.from_json(response.to_json()) == response
        json.dumps(response.to_dict())  # strictly JSON-serialisable

    def test_version_gate(self):
        with pytest.raises(ValueError):
            CorpusMatchResponse.from_dict({"format_version": 99})

    def test_live_response_round_trips(self):
        repository = MetadataRepository()
        repository.register(medical("m1"))
        repository.register(medical("m2"))
        service = MatchService(repository=repository)
        response = service.corpus_match(CorpusMatchRequest(source="m1", top_k=2))
        rebuilt = CorpusMatchResponse.from_json(response.to_json())
        assert rebuilt == response
