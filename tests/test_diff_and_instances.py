"""Schema version diffing and the instance-based extension."""

import pytest

from repro.matchers import InstanceVoter, build_profile
from repro.schema import DataType, Schema, diff_schemas, parse_ddl
from repro.synthetic import (
    NamingStyle,
    generate_instances,
    generate_schema,
)

V3_DDL = """
CREATE TABLE PERSON (
    PERSON_ID NUMBER(10) PRIMARY KEY, -- unique person identifier
    LAST_NM VARCHAR2(40),             -- family name of the person
    BIRTH_DT DATE,                    -- date of birth
    HEIGHT_CM NUMBER(5)               -- height in centimeters
);
CREATE TABLE UNIT (
    UNIT_ID NUMBER(10) PRIMARY KEY,   -- unit identifier
    UIC VARCHAR2(12)                  -- unit identification code
);
"""

V4_DDL = """
CREATE TABLE PERSON (
    PERSON_ID NUMBER(10) PRIMARY KEY,  -- unique person identifier
    FAMILY_NAME VARCHAR2(40),          -- family name of the person
    BIRTH_DT VARCHAR2(10),             -- date of birth
    HEIGHT_CM NUMBER(5),               -- height in centimeters
    BLOOD_TYPE CHAR(3)                 -- blood type of the person
);
CREATE TABLE UNIT (
    UNIT_ID NUMBER(10) PRIMARY KEY,    -- unit identifier
    UIC VARCHAR2(12)                   -- unit identification code assigned
);
"""


@pytest.fixture(scope="module")
def versions():
    return (
        parse_ddl(V3_DDL, name="Sys(SA).v3"),
        parse_ddl(V4_DDL, name="Sys(SA).v4"),
    )


class TestSchemaDiff:
    def test_added_detected(self, versions):
        old, new = versions
        diff = diff_schemas(old, new)
        assert "person.blood_type" in diff.added_ids

    def test_rename_detected(self, versions):
        old, new = versions
        diff = diff_schemas(old, new)
        renames = {(r.old_name, r.new_name) for r in diff.renamed}
        assert ("LAST_NM", "FAMILY_NAME") in renames
        assert "person.last_nm" not in diff.removed_ids

    def test_retype_detected(self, versions):
        old, new = versions
        diff = diff_schemas(old, new)
        assert "person.birth_dt" in diff.retyped_ids  # DATE -> VARCHAR2

    def test_redocumentation_detected(self, versions):
        old, new = versions
        diff = diff_schemas(old, new)
        assert "unit.uic" in diff.redocumented_ids

    def test_unchanged_tracked(self, versions):
        old, new = versions
        diff = diff_schemas(old, new)
        assert "person.height_cm" in diff.unchanged_ids
        assert "person.person_id" in diff.unchanged_ids

    def test_churn_and_summary(self, versions):
        old, new = versions
        diff = diff_schemas(old, new)
        assert diff.churn == (
            len(diff.added_ids) + len(diff.removed_ids)
            + len(diff.renamed) + len(diff.retyped_ids)
        )
        lines = diff.summary_lines()
        assert any("renamed" in line for line in lines)

    def test_identical_versions_no_churn(self, versions):
        old, _ = versions
        diff = diff_schemas(old, old)
        assert diff.churn == 0
        assert len(diff.unchanged_ids) == len(old)

    def test_pure_addition_no_engine_needed(self):
        old = Schema("v1")
        old.add_root("T")
        new = Schema("v2")
        root = new.add_root("T")
        new.add_child(root, "extra")
        diff = diff_schemas(old, new)
        assert diff.added_ids == ["t.extra"]
        assert diff.removed_ids == []
        assert diff.renamed == []


class TestInstances:
    @pytest.fixture(scope="class")
    def generated(self):
        left = generate_schema(
            "L", ["person", "vehicle"], [6, 6],
            style=NamingStyle.legacy_relational(), kind="relational", seed="L",
        )
        right = generate_schema(
            "R", ["person", "event"], [5, 5],
            style=NamingStyle.xml_exchange(), kind="xml", seed="R",
        )
        left_tokens = {
            eid: tokens for eid, (key, tokens) in left.facet_of_element.items()
            if tokens
        }
        right_tokens = {
            eid: tokens for eid, (key, tokens) in right.facet_of_element.items()
            if tokens
        }
        left_instances = generate_instances(left.schema, rows=40,
                                            tokens_of=left_tokens)
        right_instances = generate_instances(right.schema, rows=40,
                                             tokens_of=right_tokens)
        return left, right, left_instances, right_instances

    def test_generation_covers_leaves_only(self, generated):
        left, _, instances, _ = generated
        for element in left.schema:
            has_children = bool(left.schema.children(element.element_id))
            assert (element.element_id in instances) == (not has_children)

    def test_rows_generated(self, generated):
        left, _, instances, _ = generated
        leaf = left.schema.leaves()[0]
        assert len(instances.values_of(leaf.element_id)) == 40

    def test_same_facet_values_overlap_across_schemata(self, generated):
        left, right, left_instances, right_instances = generated
        # Find a shared facet (prefix rule guarantees some for 'person').
        shared = [
            (lid, rid)
            for lid, lident in left.facet_of_element.items()
            for rid, rident in right.facet_of_element.items()
            if lident == rident and lident[1]
        ]
        assert shared
        overlaps = []
        for lid, rid in shared:
            lvals = set(left_instances.values_of(lid))
            rvals = set(right_instances.values_of(rid))
            overlaps.append(len(lvals & rvals) / max(len(lvals | rvals), 1))
        assert max(overlaps) > 0.3  # same population, different samples

    def test_instance_voter_prefers_true_pairs(self, generated):
        left, right, left_instances, right_instances = generated
        voter = InstanceVoter(left_instances, right_instances)
        source = build_profile(left.schema)
        target = build_profile(right.schema)
        opinion = voter.vote(source, target)
        shared = [
            (source.index_of[lid], target.index_of[rid])
            for lid, lident in left.facet_of_element.items()
            for rid, rident in right.facet_of_element.items()
            if lident == rident and lident[1]
        ]
        true_scores = [opinion.confidence[row, col] for row, col in shared]
        assert max(true_scores) > 0.2
        # Containers (no values) vote zero.
        root_row = source.index_of[left.schema.roots()[0].element_id]
        assert (opinion.confidence[root_row, :] == 0).all()

    def test_rows_validation(self, generated):
        left, *_ = generated
        with pytest.raises(ValueError):
            generate_instances(left.schema, rows=0)

    def test_values_deterministic(self, generated):
        left, _, instances, _ = generated
        again = generate_instances(left.schema, rows=40, tokens_of={
            eid: tokens for eid, (key, tokens) in left.facet_of_element.items()
            if tokens
        })
        leaf = left.schema.leaves()[0].element_id
        assert instances.values_of(leaf) == again.values_of(leaf)
