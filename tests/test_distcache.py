"""Cross-replica staleness referee + fault injection for the shared tier.

The distributed-cache claim is strong: N serving replicas may share one
cache process, writes land through ANY repository connection on the same
store, and no replica may ever serve a pre-write answer -- whether the
write's nudge reached the cache tier or not.  This file is the referee:

* a 3-replica fleet (each its own pooled connection onto ONE WAL SQLite
  file, each mounting ONE shared :class:`CacheServer` through a
  :class:`TieredCache`) is swept with interleaved writes and reads, and
  every served answer is compared against a freshly computed in-process
  referee -- zero stale tolerated, scores to 1e-9;
* the shared cache is then killed mid-sweep (and separately replaced
  with a server that hangs): the fleet must degrade to
  uncached-but-correct within the client timeout, surface the transport
  errors on ``/metrics``, and re-attach cleanly once the cache is back
  on the same port;
* cache warming is run end to end: one replica's recorded request hashes
  become a brand-new replica's pre-warmed entries.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.match import Correspondence
from repro.repository import AssertionMethod, MetadataRepository
from repro.schema import parse_ddl
from repro.server import (
    MatchServer,
    MatchServiceClient,
    RemoteCache,
    ResponseCache,
    TieredCache,
)
from repro.server.distcache import CacheServer, attach_cache_nudge
from repro.service import (
    CorpusMatchRequest,
    MatchOptions,
    MatchRequest,
    MatchService,
    NetworkMatchRequest,
)
from repro.synthetic import generate_clustered_corpus
from tests.conftest import SAMPLE_DDL
from tests.test_cache_contract import _PoisonedServer

SCORE_TOLERANCE = 1e-9
N_REPLICAS = 3
SWEEP_ROUNDS = 3
OPTIONS = MatchOptions(threshold=0.15)


def _same_correspondences(ours, theirs) -> bool:
    mine = {c.pair: c for c in ours}
    reference = {c.pair: c for c in theirs}
    return set(mine) == set(reference) and all(
        abs(mine[pair].score - reference[pair].score) <= SCORE_TOLERANCE
        for pair in mine
    )


class _Replica:
    """One in-process serving replica: own store connection, shared cache."""

    def __init__(self, db_path: str, cache, warm_limit: int = 0):
        self.repository = MetadataRepository(
            path=db_path, backend="pooled", pool_size=2
        )
        self.service = MatchService(repository=self.repository)
        self.server = MatchServer(
            self.service, port=0, cache=cache, warm_limit=warm_limit
        )
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()
        self.client = MatchServiceClient(self.server.url)

    def close(self) -> None:
        self.server.shutdown()
        self._thread.join()
        self.server.server_close()
        self.repository.close()


class _Fleet:
    """N replicas over one store, one shared cache server, one writer."""

    def __init__(self, db_path: str, n_replicas: int = N_REPLICAS):
        self.db_path = db_path
        self.shared = CacheServer(port=0, cache_size=4096)
        self._accept = threading.Thread(
            target=self.shared.serve_forever, daemon=True
        )
        self._accept.start()
        self.replicas = [
            _Replica(db_path, self._mount()) for _ in range(n_replicas)
        ]
        # The writer is its own connection -- NOT one of the replicas'
        # repositories, so replica-local nudge listeners never see these
        # writes: exactly the cross-process scenario.  Its own nudge
        # broadcasts into the shared tier only.
        self.writer = MetadataRepository(path=db_path, backend="pooled")
        self._writer_cache = RemoteCache(self.shared.address, timeout=2.0)
        attach_cache_nudge(self.writer, self._writer_cache)
        self.referee = MatchService(repository=self.writer)

    def _mount(self) -> TieredCache:
        return TieredCache(
            ResponseCache(max_entries=256),
            RemoteCache(self.shared.address, timeout=2.0),
        )

    def kill_shared(self) -> int:
        """SIGKILL-equivalent for the in-process cache server."""
        port = self.shared.port
        self.shared.shutdown()
        self._accept.join()
        self.shared.server_close()
        return port

    def restart_shared(self, port: int) -> None:
        self.shared = CacheServer(port=port, cache_size=4096)
        self._accept = threading.Thread(
            target=self.shared.serve_forever, daemon=True
        )
        self._accept.start()

    def close(self) -> None:
        for replica in self.replicas:
            replica.close()
        self._writer_cache.close()
        self.writer.close()
        try:
            self.shared.shutdown()
            self._accept.join()
            self.shared.server_close()
        except OSError:
            pass


@pytest.fixture(scope="module")
def seeded_db(tmp_path_factory):
    db_path = str(tmp_path_factory.mktemp("distcache") / "fleet.db")
    corpus = generate_clustered_corpus(
        n_domains=2, schemata_per_domain=3, seed=2009
    )
    with MetadataRepository(path=db_path, backend="pooled") as seeder:
        for generated in corpus.schemata:
            seeder.register(generated.schema)
        names = sorted(seeder.schema_names())
    return db_path, names


@pytest.fixture
def fleet(seeded_db, tmp_path):
    import shutil

    source_db, names = seeded_db
    db_path = str(tmp_path / "fleet.db")
    shutil.copy(source_db, db_path)
    built = _Fleet(db_path)
    yield built, names
    built.close()


class TestCrossReplicaStaleness:
    def test_interleaved_write_read_sweep_is_never_stale(self, fleet):
        rig, names = fleet
        referee = rig.referee
        referee.persist(referee.match_pair(names[0], names[1], options=OPTIONS))
        referee.persist(referee.match_pair(names[1], names[2], options=OPTIONS))
        corpus_request = CorpusMatchRequest(source=names[0], top_k=3, options=OPTIONS)
        network_request = NetworkMatchRequest(
            source=names[0], target=names[2], max_hops=2, options=OPTIONS
        )
        pivot = rig.writer.matches(
            source_schema=names[0], target_schema=names[1]
        )[0]

        n_stale = 0
        n_checked = 0
        for round_number in range(SWEEP_ROUNDS):
            # Warm every replica through the shared tier.
            for replica in rig.replicas:
                replica.client.corpus_match(corpus_request)
                replica.client.network_match(network_request)
            # The write, from a connection no replica listens to.
            rig.writer.store_matches(
                names[1],
                names[2],
                [
                    Correspondence(
                        source_id=pivot.correspondence.target_id,
                        target_id=f"validated_round_{round_number}",
                        score=1.0,
                    )
                ],
                asserted_by="validator",
                method=AssertionMethod.HUMAN_VALIDATED,
            )
            fresh_corpus = referee.corpus_match(corpus_request)
            fresh_network = referee.network_match(network_request)
            for replica in rig.replicas:
                served_corpus = replica.client.corpus_match(corpus_request)
                served_network = replica.client.network_match(network_request)
                n_checked += 2
                corpus_fresh = (
                    served_corpus.candidate_names == fresh_corpus.candidate_names
                    and all(
                        _same_correspondences(
                            ours.correspondences, theirs.correspondences
                        )
                        for ours, theirs in zip(
                            served_corpus.candidates, fresh_corpus.candidates
                        )
                    )
                )
                network_fresh = (
                    served_network.paths == fresh_network.paths
                    and _same_correspondences(
                        served_network.correspondences,
                        fresh_network.correspondences,
                    )
                )
                n_stale += (not corpus_fresh) + (not network_fresh)
        assert n_checked == SWEEP_ROUNDS * N_REPLICAS * 2
        assert n_stale == 0

    def test_one_replicas_miss_is_anothers_shared_hit(self, fleet):
        rig, names = fleet
        request = MatchRequest(source=names[0], target=names[1], options=OPTIONS)
        first, second = rig.replicas[0], rig.replicas[1]
        first.client.match(request)
        assert first.client.last_cache_status == "miss"
        # A DIFFERENT replica, first time it has ever seen this request:
        # the shared tier answers.
        second.client.match(request)
        assert second.client.last_cache_status == "hit"
        attribution = second.server.cache.describe()["attribution"]
        assert attribution["shared_hits"] >= 1
        # And /metrics shows the tiered breakdown.
        cache_block = second.client.metrics()["cache"]
        assert cache_block["tier"]["kind"] == "tiered"
        assert cache_block["tier"]["shared"]["reachable"] is True
        assert "warm_hit_ratio" in cache_block

    def test_write_nudge_sweeps_the_shared_tier_immediately(self, fleet):
        rig, names = fleet
        request = MatchRequest(source=names[0], target=names[1], options=OPTIONS)
        rig.replicas[0].client.match(request)
        assert len(rig.shared.cache) >= 1
        invalidations_before = rig.shared.cache.stats.invalidations
        rig.writer.register(parse_ddl(SAMPLE_DDL, name="nudge_newcomer"))
        # No replica has looked anything up yet: the eviction happened on
        # the write path, through the writer's nudge alone.
        assert rig.shared.cache.stats.invalidations > invalidations_before


class TestFaultInjection:
    def test_killed_cache_degrades_to_uncached_but_correct(self, fleet):
        rig, names = fleet
        request = MatchRequest(source=names[0], target=names[1], options=OPTIONS)
        replica = rig.replicas[0]
        replica.client.match(request)
        port = rig.kill_shared()

        # Served answers stay correct -- local tier still validates, the
        # shared tier degrades to misses within the bounded timeout.
        served = replica.client.match(request)
        direct = rig.referee.match(request)
        assert _same_correspondences(served.correspondences, direct.correspondences)
        cold = MatchRequest(source=names[2], target=names[3], options=OPTIONS)
        served_cold = replica.client.match(cold)
        assert _same_correspondences(
            served_cold.correspondences, rig.referee.match(cold).correspondences
        )

        # The degradation is visible, not silent: transport errors are on
        # /metrics and the tier block says the shared side is unreachable.
        cache_block = replica.client.metrics()["cache"]
        assert cache_block["errors"] >= 1
        assert cache_block["tier"]["shared"]["reachable"] is False

        # Back on the same port: replicas re-attach with no intervention.
        rig.restart_shared(port)
        reborn = MatchRequest(source=names[1], target=names[2], options=OPTIONS)
        replica.client.match(reborn)
        other = rig.replicas[1]
        other.client.match(reborn)
        assert other.client.last_cache_status == "hit"
        assert other.server.cache.describe()["shared"]["reachable"] is True

    def test_hung_cache_is_bounded_and_correct(self, fleet):
        rig, names = fleet
        hang = _PoisonedServer(reply=None)
        replica = _Replica(
            rig.db_path,
            TieredCache(
                ResponseCache(max_entries=64),
                RemoteCache(hang.address, timeout=0.3),
            ),
        )
        try:
            request = MatchRequest(
                source=names[0], target=names[1], options=OPTIONS
            )
            started = time.perf_counter()
            served = replica.client.match(request)
            elapsed = time.perf_counter() - started
            direct = rig.referee.match(request)
            assert _same_correspondences(
                served.correspondences, direct.correspondences
            )
            # One get + one put against the hung tier, 0.3 s timeout each:
            # well under an unbounded hang, generously bounded here.
            assert elapsed < 10.0
            assert replica.client.metrics()["cache"]["errors"] >= 1
        finally:
            replica.close()
            hang.close()


class TestCacheWarming:
    def test_recorded_hashes_warm_a_fresh_replica(self, fleet):
        rig, names = fleet
        veteran = rig.replicas[0]
        requests = [
            MatchRequest(source=names[0], target=names[1], options=OPTIONS),
            CorpusMatchRequest(source=names[0], top_k=2, options=OPTIONS),
        ]
        veteran.client.match(requests[0])
        veteran.client.match(requests[0])
        veteran.client.corpus_match(requests[1])
        veteran.server.flush_hot_requests()

        # A brand-new replica with its OWN private cache (nothing shared)
        # must answer the veteran's hottest requests from warm entries.
        newcomer = _Replica(
            rig.db_path, ResponseCache(max_entries=256), warm_limit=8
        )
        try:
            assert newcomer.server.warmed_entries >= 2
            newcomer.client.match(requests[0])
            assert newcomer.client.last_cache_status == "hit"
            newcomer.client.corpus_match(requests[1])
            assert newcomer.client.last_cache_status == "hit"
            payload = newcomer.client.metrics()["cache"]
            assert payload["warmed_entries"] >= 2
            assert payload["warm_hit_ratio"] > 0.0
        finally:
            newcomer.close()

    def test_warmed_entries_are_not_exempt_from_invalidation(self, fleet):
        rig, names = fleet
        request = MatchRequest(source=names[0], target=names[1], options=OPTIONS)
        veteran = rig.replicas[0]
        veteran.client.match(request)
        veteran.server.flush_hot_requests()
        newcomer = _Replica(
            rig.db_path, ResponseCache(max_entries=256), warm_limit=8
        )
        try:
            assert newcomer.server.warmed_entries >= 1
            rig.writer.register(parse_ddl(SAMPLE_DDL, name="warm_newcomer"))
            newcomer.client.match(request)
            assert newcomer.client.last_cache_status == "miss"
            served = newcomer.client.match(request)
            assert _same_correspondences(
                served.correspondences, rig.referee.match(request).correspondences
            )
        finally:
            newcomer.close()
