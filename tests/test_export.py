"""Spreadsheet deliverable, match-centric table, and text reports."""

import csv

import pytest

from repro.export import (
    MatchTable,
    RowType,
    Workbook,
    concept_match_text,
    concept_sheet,
    element_sheet,
    overlap_report_text,
    partition_table_text,
)
from repro.match import (
    Correspondence,
    CorrespondenceSet,
    HarmonyMatchEngine,
    MatchStatus,
)
from repro.metrics import matrix_overlap
from repro.summarize import match_concepts, summarize_by_roots


@pytest.fixture(scope="module")
def matched_fixture(sample_relational, sample_xml):
    result = HarmonyMatchEngine().match(sample_relational, sample_xml)
    source_summary = summarize_by_roots(sample_relational)
    target_summary = summarize_by_roots(sample_xml)
    concept_matches = match_concepts(
        source_summary, target_summary, result, threshold=0.02
    )
    validated = CorrespondenceSet(
        [
            Correspondence(
                "person_master.birth_dt", "individual.dateofbirth", 0.6,
                status=MatchStatus.ACCEPTED,
            ),
            Correspondence(
                "person_master.last_nm", "individual.familyname", 0.5,
                status=MatchStatus.ACCEPTED,
            ),
            Correspondence(
                "all_event_vitals.event_id", "event.category", 0.2,
                status=MatchStatus.REJECTED,
            ),
        ]
    )
    return result, source_summary, target_summary, concept_matches, validated


class TestConceptSheet:
    def test_outer_join_row_count(self, matched_fixture):
        _, source_summary, target_summary, concept_matches, _ = matched_fixture
        rows = concept_sheet(source_summary, target_summary, concept_matches)
        expected = len(source_summary) + len(target_summary) - len(concept_matches)
        assert len(rows) == expected

    def test_three_row_types(self, matched_fixture):
        _, source_summary, target_summary, concept_matches, _ = matched_fixture
        rows = concept_sheet(source_summary, target_summary, concept_matches)
        row_types = {row["row_type"] for row in rows}
        assert str(RowType.MATCHED) in row_types
        assert str(RowType.SOURCE_ONLY) in row_types
        assert str(RowType.TARGET_ONLY) in row_types

    def test_matched_rows_carry_both_labels(self, matched_fixture):
        _, source_summary, target_summary, concept_matches, _ = matched_fixture
        rows = concept_sheet(source_summary, target_summary, concept_matches)
        matched_rows = [r for r in rows if r["row_type"] == str(RowType.MATCHED)]
        assert all(r["source_concept"] and r["target_concept"] for r in matched_rows)


class TestElementSheet:
    def test_outer_join_law(self, matched_fixture, sample_relational, sample_xml):
        _, source_summary, target_summary, _, validated = matched_fixture
        rows = element_sheet(
            sample_relational, sample_xml, source_summary, target_summary, validated
        )
        n_accepted = len(validated.accepted)
        expected = len(sample_relational) + len(sample_xml) - n_accepted
        assert len(rows) == expected

    def test_rejected_matches_not_joined(
        self, matched_fixture, sample_relational, sample_xml
    ):
        _, source_summary, target_summary, _, validated = matched_fixture
        rows = element_sheet(
            sample_relational, sample_xml, source_summary, target_summary, validated
        )
        joined_targets = {
            row["target_element"]
            for row in rows
            if row["row_type"] == str(RowType.MATCHED)
        }
        assert not any("Category" in target for target in joined_targets)

    def test_elements_indexed_to_concepts(
        self, matched_fixture, sample_relational, sample_xml
    ):
        _, source_summary, target_summary, _, validated = matched_fixture
        rows = element_sheet(
            sample_relational, sample_xml, source_summary, target_summary, validated
        )
        matched = [r for r in rows if r["row_type"] == str(RowType.MATCHED)]
        assert all(row["source_concept"] for row in matched)


class TestWorkbook:
    def test_write_csv_files(self, matched_fixture, sample_relational, sample_xml, tmp_path):
        _, source_summary, target_summary, concept_matches, validated = matched_fixture
        workbook = Workbook.build(
            sample_relational, sample_xml, source_summary, target_summary,
            validated, concept_matches,
        )
        concepts_path, elements_path = workbook.write(str(tmp_path / "study"))
        with open(concepts_path, encoding="utf-8") as handle:
            concept_rows = list(csv.DictReader(handle))
        assert len(concept_rows) == len(workbook.concepts)
        with open(elements_path, encoding="utf-8") as handle:
            element_rows = list(csv.DictReader(handle))
        assert len(element_rows) == len(workbook.elements)


class TestMatchTable:
    def _table(self, matched_fixture, sample_relational, sample_xml):
        _, source_summary, target_summary, _, validated = matched_fixture
        return MatchTable.build(
            list(validated), sample_relational, sample_xml,
            source_summary, target_summary,
        )

    def test_build_rows(self, matched_fixture, sample_relational, sample_xml):
        table = self._table(matched_fixture, sample_relational, sample_xml)
        assert len(table) == 3

    def test_sort_by_score(self, matched_fixture, sample_relational, sample_xml):
        table = self._table(matched_fixture, sample_relational, sample_xml)
        scores = [row.score for row in table.sorted_by("score", descending=True).rows]
        assert scores == sorted(scores, reverse=True)

    def test_group_by_status(self, matched_fixture, sample_relational, sample_xml):
        table = self._table(matched_fixture, sample_relational, sample_xml)
        groups = table.grouped_by("status")
        assert set(groups) == {"accepted", "rejected"}
        assert len(groups["accepted"]) == 2

    def test_filter(self, matched_fixture, sample_relational, sample_xml):
        table = self._table(matched_fixture, sample_relational, sample_xml)
        accepted = table.filtered(lambda row: row.status == "accepted")
        assert len(accepted) == 2

    def test_unknown_column(self, matched_fixture, sample_relational, sample_xml):
        table = self._table(matched_fixture, sample_relational, sample_xml)
        with pytest.raises(KeyError):
            table.sorted_by("nonsense")

    def test_csv_and_text_renderings(self, matched_fixture, sample_relational, sample_xml):
        table = self._table(matched_fixture, sample_relational, sample_xml)
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0].startswith("source,target,score")
        text = table.to_text(limit=2)
        assert "more rows" in text
        assert MatchTable([]).to_text() == "(no matches)"


class TestReports:
    def test_overlap_report_narrative(self, matched_fixture):
        result, *_ = matched_fixture
        report = matrix_overlap(result, threshold=0.3)
        text = overlap_report_text(report, "SA", "SB")
        assert "Overlap analysis" in text
        assert "SA ∩ SB" in text
        assert "%" in text

    def test_concept_match_text(self, matched_fixture):
        _, _, _, concept_matches, _ = matched_fixture
        text = concept_match_text(concept_matches)
        assert "<=>" in text
        assert concept_match_text([]) == "(no concept-level matches)"

    def test_partition_table_text(self):
        from repro.nway import build_vocabulary, partition_vocabulary
        from repro.schema import Schema

        s1 = Schema("S1")
        s1.add_root("a")
        s2 = Schema("S2")
        s2.add_root("a")
        vocabulary = build_vocabulary(
            {"S1": s1, "S2": s2}, [("S1", "a", "S2", "a")]
        )
        text = partition_table_text(partition_vocabulary(vocabulary))
        assert "{S1, S2}" in text
        assert "concepts" in text
