"""Link filters, node filters, and filter chains."""

import pytest

from repro.filters import (
    ConfidenceFilter,
    DepthFilter,
    FilterChain,
    KindFilter,
    NamePatternFilter,
    StatusFilter,
    SubtreeFilter,
    TopKPerSourceFilter,
)
from repro.match import Correspondence, MatchStatus
from repro.schema import ElementKind


def corr(source, target, score, status=MatchStatus.CANDIDATE):
    return Correspondence(source_id=source, target_id=target, score=score, status=status)


class TestLinkFilters:
    def test_confidence_range(self):
        link_filter = ConfidenceFilter(0.3, 0.8)
        kept = link_filter.apply(
            [corr("a", "b", 0.2), corr("a", "c", 0.5), corr("a", "d", 0.9)]
        )
        assert [c.target_id for c in kept] == ["c"]

    def test_confidence_invalid_range(self):
        with pytest.raises(ValueError):
            ConfidenceFilter(0.9, 0.1)

    def test_status_filter(self):
        accepted = corr("a", "b", 0.5, MatchStatus.ACCEPTED)
        candidate = corr("a", "c", 0.5)
        kept = StatusFilter(MatchStatus.ACCEPTED).apply([accepted, candidate])
        assert kept == [accepted]

    def test_status_filter_needs_statuses(self):
        with pytest.raises(ValueError):
            StatusFilter()

    def test_top_k_per_source(self):
        links = [
            corr("a", "b", 0.9),
            corr("a", "c", 0.8),
            corr("a", "d", 0.7),
            corr("x", "y", 0.1),
        ]
        kept = TopKPerSourceFilter(k=2).apply(links)
        assert {(c.source_id, c.target_id) for c in kept} == {
            ("a", "b"), ("a", "c"), ("x", "y"),
        }

    def test_top_k_keep_raises_outside_batch(self):
        with pytest.raises(NotImplementedError):
            TopKPerSourceFilter(k=1).keep(corr("a", "b", 0.5))


class TestNodeFilters:
    def test_depth_filter_tables_only(self, sample_relational):
        enabled = DepthFilter(max_depth=1).enabled_ids(sample_relational)
        assert "all_event_vitals" in enabled
        assert "all_event_vitals.event_id" not in enabled

    def test_depth_filter_attributes_only(self, sample_relational):
        enabled = DepthFilter(min_depth=2).enabled_ids(sample_relational)
        assert "all_event_vitals" not in enabled
        assert "all_event_vitals.event_id" in enabled

    def test_depth_filter_validation(self):
        with pytest.raises(ValueError):
            DepthFilter(min_depth=0)
        with pytest.raises(ValueError):
            DepthFilter(min_depth=3, max_depth=2)

    def test_subtree_filter(self, sample_relational):
        enabled = SubtreeFilter("person_master").enabled_ids(sample_relational)
        assert "person_master" in enabled
        assert "person_master.birth_dt" in enabled
        assert "all_event_vitals" not in enabled

    def test_subtree_filter_excluding_root(self, sample_relational):
        enabled = SubtreeFilter("person_master", include_root=False).enabled_ids(
            sample_relational
        )
        assert "person_master" not in enabled
        assert "person_master.birth_dt" in enabled

    def test_name_pattern_filter(self, sample_relational):
        enabled = NamePatternFilter(r"^DATE_").enabled_ids(sample_relational)
        assert "all_event_vitals.date_begin_156" in enabled
        assert "person_master.birth_dt" not in enabled

    def test_kind_filter(self, sample_relational):
        enabled = KindFilter(ElementKind.VIEW).enabled_ids(sample_relational)
        assert enabled == {"active_persons"}

    def test_kind_filter_validation(self):
        with pytest.raises(ValueError):
            KindFilter()


class TestFilterChain:
    def test_chain_composes_link_and_node(self, sample_relational, sample_xml):
        links = [
            corr("person_master.birth_dt", "individual.dateofbirth", 0.8),
            corr("all_event_vitals.date_begin_156", "event.datetime_first_info", 0.6),
            corr("person_master.last_nm", "individual.familyname", 0.2),
        ]
        chain = FilterChain(
            link_filters=[ConfidenceFilter(0.5)],
            source_filters=[SubtreeFilter("person_master")],
        )
        visible = chain.apply(links, sample_relational, sample_xml)
        assert [(c.source_id, c.target_id) for c in visible] == [
            ("person_master.birth_dt", "individual.dateofbirth")
        ]

    def test_with_builders_do_not_mutate(self, sample_relational, sample_xml):
        base = FilterChain()
        extended = base.with_link(ConfidenceFilter(0.5)).with_source(
            SubtreeFilter("person_master")
        ).with_target(DepthFilter(max_depth=1))
        assert not base.link_filters
        assert len(extended.link_filters) == 1
        assert len(extended.source_filters) == 1
        assert len(extended.target_filters) == 1

    def test_node_filters_intersect(self, sample_relational):
        chain = FilterChain(
            source_filters=[
                SubtreeFilter("person_master"),
                DepthFilter(min_depth=2),
            ]
        )
        enabled = chain.enabled_source_ids(sample_relational)
        assert "person_master" not in enabled
        assert "person_master.birth_dt" in enabled

    def test_empty_chain_keeps_everything(self, sample_relational, sample_xml):
        links = [corr("person_master", "individual", 0.1)]
        assert FilterChain().apply(links, sample_relational, sample_xml) == links
