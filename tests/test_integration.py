"""End-to-end integration: the full section-3 pipeline on the small pair.

This walks the paper's whole workflow on a generated pair:
summarize -> concept-at-a-time session -> concept matches -> spreadsheet
-> overlap analysis -> decision model -> repository storage -> reuse.
"""

import pytest

from repro.export import RowType, Workbook, overlap_report_text
from repro.match import HarmonyMatchEngine
from repro.metrics import prf_of_pairs, workflow_overlap
from repro.nway import nway_match
from repro.planning import DecisionModel
from repro.repository import AssertionMethod, MetadataRepository, TrustPolicy
from repro.workflow import EffortModel, GroundTruthOracle, MatchingSession, plan_team


@pytest.fixture(scope="module")
def pipeline(small_pair):
    source = small_pair.source.schema
    target = small_pair.target.schema
    source_summary = small_pair.source.truth_summary()
    target_summary = small_pair.target.truth_summary()
    engine = HarmonyMatchEngine()
    session = MatchingSession(
        source, target, source_summary,
        oracle=GroundTruthOracle(small_pair.truth_pairs),
        engine=engine,
    )
    report = session.run_all(target_summary=target_summary)
    return small_pair, session, report, source_summary, target_summary, engine


class TestFullPipeline:
    def test_session_quality(self, pipeline):
        small_pair, session, report, *_ = pipeline
        measurement = prf_of_pairs(session.accepted_pairs(), small_pair.truth_pairs)
        assert measurement.precision == 1.0  # perfect oracle
        assert measurement.recall > 0.5     # engine surfaced most truth

    def test_workbook_from_session(self, pipeline):
        small_pair, session, report, source_summary, target_summary, _ = pipeline
        workbook = Workbook.build(
            small_pair.source.schema,
            small_pair.target.schema,
            source_summary,
            target_summary,
            report.validated,
            report.concept_matches,
        )
        concept_rows = len(workbook.concepts)
        assert concept_rows == (
            len(source_summary) + len(target_summary) - len(report.concept_matches)
        )
        matched_rows = [
            row for row in workbook.elements if row["row_type"] == str(RowType.MATCHED)
        ]
        assert len(matched_rows) == len(report.validated.accepted)

    def test_overlap_feeds_decision(self, pipeline):
        small_pair, _, _, source_summary, target_summary, engine = pipeline
        result = engine.match(small_pair.source.schema, small_pair.target.schema)
        overlap = workflow_overlap(result, source_summary, target_summary)
        text = overlap_report_text(overlap)
        assert "Overlap analysis" in text
        recommendation = DecisionModel().evaluate(overlap)
        assert recommendation.choice is not None
        assert recommendation.subsume.total > 0
        assert recommendation.bridge.total > 0

    def test_effort_and_team_plan(self, pipeline):
        _, session, report, source_summary, *_ = pipeline
        model = EffortModel()
        estimate = model.session_estimate(report, len(source_summary))
        assert estimate.person_days > 0
        plan = plan_team(source_summary, 100, ["ann", "bob"])
        assert plan.makespan_days < estimate.person_days + 1

    def test_repository_round_trip_with_trust(self, pipeline):
        small_pair, session, report, *_ = pipeline
        with MetadataRepository() as repository:
            repository.register(small_pair.source.schema)
            repository.register(small_pair.target.schema)
            repository.store_matches(
                small_pair.source.schema.name,
                small_pair.target.schema.name,
                report.validated.accepted,
                asserted_by="engineer",
                method=AssertionMethod.HUMAN_VALIDATED,
            )
            strict = repository.matches(
                policy=TrustPolicy.for_business_intelligence()
            )
            assert strict
            all_matches = repository.matches()
            assert len(strict) <= len(all_matches)

    def test_nway_with_pair(self, small_pair):
        schemata = {
            "SA": small_pair.source.schema,
            "SB": small_pair.target.schema,
        }
        vocabulary, partition = nway_match(schemata)
        assert partition.n_cells == 3
        shared = partition.cell("SA", "SB")
        assert shared.cardinality > 0
        # Total entries cover every element of both schemata.
        total_elements = sum(len(s) for s in schemata.values())
        assert sum(cell.n_elements for cell in partition.cells) == total_elements
