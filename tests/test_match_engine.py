"""Engine behaviour: end-to-end matching, restriction, explanation, increments."""

import pytest

from repro.match import (
    HarmonyMatchEngine,
    IncrementalMatcher,
    MatchStatus,
    ThresholdSelection,
)
from repro.matchers import NameTokenVoter
from repro.voting import AverageMerger


class TestEngine:
    def test_result_shape(self, sample_relational, sample_xml):
        result = HarmonyMatchEngine().match(sample_relational, sample_xml)
        assert result.matrix.shape == (len(sample_relational), len(sample_xml))
        assert result.n_pairs == len(sample_relational) * len(sample_xml)
        assert result.elapsed_seconds > 0

    def test_true_pairs_rank_high(self, sample_relational, sample_xml):
        result = HarmonyMatchEngine().match(sample_relational, sample_xml)
        best_for_birth = result.matrix.best_for_source("person_master.birth_dt")
        assert best_for_birth.target_id == "individual.dateofbirth"
        best_for_blood = result.matrix.best_for_source("person_master.blood_type_cd")
        assert best_for_blood.target_id == "individual.bloodgroup"

    def test_restriction_to_subtree(self, sample_relational, sample_xml):
        engine = HarmonyMatchEngine()
        subtree_ids = [
            e.element_id for e in sample_relational.subtree("person_master")
        ]
        result = engine.match(
            sample_relational, sample_xml, source_element_ids=subtree_ids
        )
        assert result.matrix.shape == (len(subtree_ids), len(sample_xml))
        assert result.matrix.source_ids == subtree_ids

    def test_candidates_default_selection(self, sample_relational, sample_xml):
        result = HarmonyMatchEngine().match(sample_relational, sample_xml)
        for candidate in result.candidates(ThresholdSelection(0.3)):
            assert candidate.score >= 0.3
            assert candidate.status is MatchStatus.CANDIDATE

    def test_matched_unmatched_partition(self, sample_relational, sample_xml):
        result = HarmonyMatchEngine().match(sample_relational, sample_xml)
        threshold = 0.3
        matched = result.matched_target_ids(threshold)
        unmatched = result.unmatched_target_ids(threshold)
        assert matched | unmatched == {e.element_id for e in sample_xml}
        assert not matched & unmatched

    def test_profile_cache_reused(self, sample_relational, sample_xml):
        engine = HarmonyMatchEngine()
        first = engine.profile(sample_relational)
        second = engine.profile(sample_relational)
        assert first is second

    def test_custom_voters_and_merger(self, sample_relational, sample_xml):
        engine = HarmonyMatchEngine(
            voters=[NameTokenVoter()], merger=AverageMerger()
        )
        result = engine.match(sample_relational, sample_xml)
        assert result.voter_names == ["name_token"]

    def test_rejects_empty_voter_list(self):
        with pytest.raises(ValueError):
            HarmonyMatchEngine(voters=[])

    def test_explain_structure(self, sample_relational, sample_xml):
        engine = HarmonyMatchEngine()
        breakdown = engine.explain(
            sample_relational,
            sample_xml,
            "person_master.birth_dt",
            "individual.dateofbirth",
        )
        assert "merged" in breakdown
        assert "name_token" in breakdown
        for voter_name, parts in breakdown.items():
            assert -1.0 <= parts["confidence"] <= 1.0

    def test_explain_consistent_sign(self, sample_relational, sample_xml):
        engine = HarmonyMatchEngine()
        breakdown = engine.explain(
            sample_relational,
            sample_xml,
            "person_master.birth_dt",
            "individual.dateofbirth",
        )
        assert breakdown["name_token"]["confidence"] > 0


class TestIncrementalMatcher:
    def test_increments_tracked(self, sample_relational, sample_xml):
        matcher = IncrementalMatcher(sample_relational, sample_xml)
        first = matcher.match_subtree("person_master")
        second = matcher.match_subtree("all_event_vitals")
        assert len(matcher.increments) == 2
        assert first.n_pairs == first.n_source_elements * len(sample_xml)
        assert matcher.total_pairs_considered == first.n_pairs + second.n_pairs
        assert matcher.pairs_per_increment() == [first.n_pairs, second.n_pairs]

    def test_increment_restricts_target_too(self, sample_relational, sample_xml):
        matcher = IncrementalMatcher(sample_relational, sample_xml)
        target_ids = [e.element_id for e in sample_xml.subtree("individual")]
        increment = matcher.match_subtree("person_master", target_element_ids=target_ids)
        assert increment.n_target_elements == len(target_ids)
        assert increment.result.matrix.shape[1] == len(target_ids)

    def test_increment_scores_match_full_run(self, sample_relational, sample_xml):
        """Sub-tree increments agree with the full matrix on shared pairs
        for the restriction-invariant part of scoring (top pair identity)."""
        engine = HarmonyMatchEngine()
        matcher = IncrementalMatcher(sample_relational, sample_xml, engine=engine)
        increment = matcher.match_subtree("person_master")
        best = increment.result.matrix.best_for_source("person_master.birth_dt")
        assert best.target_id == "individual.dateofbirth"
