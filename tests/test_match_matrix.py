"""MatchMatrix queries and invariants."""

import numpy as np
import pytest

from repro.match import MatchMatrix


@pytest.fixture
def matrix():
    scores = np.array(
        [
            [0.9, 0.2, -0.5],
            [0.1, 0.7, 0.3],
        ]
    )
    return MatchMatrix(["a1", "a2"], ["b1", "b2", "b3"], scores)


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MatchMatrix(["a"], ["b"], np.zeros((2, 2)))

    def test_range_validation(self):
        with pytest.raises(ValueError):
            MatchMatrix(["a"], ["b"], np.array([[2.0]]))

    def test_properties(self, matrix):
        assert matrix.shape == (2, 3)
        assert matrix.n_pairs == 6


class TestQueries:
    def test_score_lookup(self, matrix):
        assert matrix.score("a1", "b1") == pytest.approx(0.9)
        assert matrix.score("a2", "b3") == pytest.approx(0.3)

    def test_pairs_above_sorted(self, matrix):
        pairs = matrix.pairs_above(0.3)
        assert [(p.source_id, p.target_id) for p in pairs] == [
            ("a1", "b1"), ("a2", "b2"), ("a2", "b3"),
        ]
        assert pairs[0].score >= pairs[-1].score

    def test_pairs_above_empty(self, matrix):
        assert matrix.pairs_above(0.95) == []

    def test_top_pairs(self, matrix):
        top = matrix.top_pairs(2)
        assert [(p.source_id, p.target_id) for p in top] == [
            ("a1", "b1"), ("a2", "b2"),
        ]

    def test_top_pairs_k_larger_than_matrix(self, matrix):
        assert len(matrix.top_pairs(100)) == 6

    def test_top_pairs_zero(self, matrix):
        assert matrix.top_pairs(0) == []

    def test_best_for_source(self, matrix):
        best = matrix.best_for_source("a2")
        assert best.target_id == "b2"

    def test_best_for_target(self, matrix):
        best = matrix.best_for_target("b3")
        assert best.source_id == "a2"

    def test_row_col_max(self, matrix):
        assert matrix.row_max().tolist() == [0.9, 0.7]
        assert matrix.col_max().tolist() == [0.9, 0.7, 0.3]

    def test_iter_pairs_row_major(self, matrix):
        pairs = list(matrix.iter_pairs())
        assert len(pairs) == 6
        assert pairs[0].source_id == "a1" and pairs[0].target_id == "b1"


class TestSubmatrix:
    def test_submatrix_values(self, matrix):
        sub = matrix.submatrix(["a2"], ["b3", "b1"])
        assert sub.shape == (1, 2)
        assert sub.score("a2", "b3") == pytest.approx(0.3)
        assert sub.score("a2", "b1") == pytest.approx(0.1)

    def test_submatrix_default_keeps_all(self, matrix):
        sub = matrix.submatrix()
        assert sub.shape == matrix.shape

    def test_submatrix_unknown_label(self, matrix):
        with pytest.raises(KeyError):
            matrix.submatrix(["nope"], None)

    def test_empty_submatrix(self, matrix):
        sub = matrix.submatrix([], [])
        assert sub.shape == (0, 0)
        assert sub.n_pairs == 0
