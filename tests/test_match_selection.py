"""Selection strategies: cardinality constraints and stability properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.match import (
    HungarianSelection,
    MatchMatrix,
    StableMarriageSelection,
    ThresholdSelection,
    TopKSelection,
)


def matrix_from(scores):
    scores = np.array(scores, dtype=float)
    sources = [f"a{i}" for i in range(scores.shape[0])]
    targets = [f"b{j}" for j in range(scores.shape[1])]
    return MatchMatrix(sources, targets, scores)


random_matrices = st.integers(min_value=1, max_value=6).flatmap(
    lambda rows: st.integers(min_value=1, max_value=6).flatmap(
        lambda cols: st.lists(
            st.lists(
                st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
                min_size=cols,
                max_size=cols,
            ),
            min_size=rows,
            max_size=rows,
        )
    )
)


class TestThreshold:
    def test_selects_above(self):
        selected = ThresholdSelection(0.5).select(
            matrix_from([[0.6, 0.4], [0.5, -0.2]])
        )
        assert {(c.source_id, c.target_id) for c in selected} == {
            ("a0", "b0"), ("a1", "b0"),
        }

    def test_sorted_best_first(self):
        selected = ThresholdSelection(0.0).select(matrix_from([[0.1, 0.9]]))
        assert selected[0].score >= selected[1].score

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ThresholdSelection(2.0)


class TestTopK:
    def test_k_per_source(self):
        selected = TopKSelection(k=1).select(matrix_from([[0.9, 0.8], [0.1, 0.7]]))
        by_source = {}
        for c in selected:
            by_source.setdefault(c.source_id, []).append(c.target_id)
        assert by_source == {"a0": ["b0"], "a1": ["b1"]}

    def test_threshold_gates(self):
        selected = TopKSelection(k=2, threshold=0.75).select(
            matrix_from([[0.9, 0.8], [0.1, 0.7]])
        )
        assert len(selected) == 2  # only the two >= 0.75

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKSelection(k=0)

    @given(random_matrices)
    @settings(max_examples=30)
    def test_at_most_k_per_source(self, scores):
        selected = TopKSelection(k=2, threshold=-1.0).select(matrix_from(scores))
        counts = {}
        for c in selected:
            counts[c.source_id] = counts.get(c.source_id, 0) + 1
        assert all(count <= 2 for count in counts.values())


class TestStableMarriage:
    def test_one_to_one(self):
        selected = StableMarriageSelection().select(
            matrix_from([[0.9, 0.8], [0.85, 0.1]])
        )
        sources = [c.source_id for c in selected]
        targets = [c.target_id for c in selected]
        assert len(sources) == len(set(sources))
        assert len(targets) == len(set(targets))

    def test_prefers_better_pairing(self):
        # a0 prefers b0 (0.9) but a1 needs b0 more; stable outcome pairs
        # a0-b0 (holder wins on target preference: 0.9 > 0.85).
        selected = StableMarriageSelection().select(
            matrix_from([[0.9, 0.8], [0.85, 0.1]])
        )
        pairs = {(c.source_id, c.target_id) for c in selected}
        assert ("a0", "b0") in pairs
        assert ("a1", "b1") in pairs

    def test_threshold_blocks_pairs(self):
        selected = StableMarriageSelection(threshold=0.5).select(
            matrix_from([[0.9, 0.1], [0.2, 0.3]])
        )
        assert {(c.source_id, c.target_id) for c in selected} == {("a0", "b0")}

    @given(random_matrices)
    @settings(max_examples=30)
    def test_matching_is_stable(self, scores):
        matrix = matrix_from(scores)
        threshold = 0.0
        selected = StableMarriageSelection(threshold=threshold).select(matrix)
        partner_of_source = {c.source_id: c.target_id for c in selected}
        partner_of_target = {c.target_id: c.source_id for c in selected}
        raw = matrix.scores
        source_index = {sid: i for i, sid in enumerate(matrix.source_ids)}
        target_index = {tid: j for j, tid in enumerate(matrix.target_ids)}

        def score_of(source_id, target_id):
            return raw[source_index[source_id], target_index[target_id]]

        # No blocking pair: a source and target that both prefer each other.
        for source_id in matrix.source_ids:
            for target_id in matrix.target_ids:
                score = score_of(source_id, target_id)
                if score < threshold:
                    continue
                current_target = partner_of_source.get(source_id)
                current_source = partner_of_target.get(target_id)
                source_prefers = (
                    current_target is None
                    or score > score_of(source_id, current_target)
                )
                target_prefers = (
                    current_source is None
                    or score > score_of(current_source, target_id)
                )
                assert not (source_prefers and target_prefers), (
                    f"blocking pair {source_id}-{target_id}"
                )

    @given(random_matrices)
    @settings(max_examples=30)
    def test_one_to_one_property(self, scores):
        selected = StableMarriageSelection(threshold=0.0).select(matrix_from(scores))
        sources = [c.source_id for c in selected]
        targets = [c.target_id for c in selected]
        assert len(sources) == len(set(sources))
        assert len(targets) == len(set(targets))


class TestHungarian:
    def test_maximises_total(self):
        # Greedy would take (a0,b0)=0.9 then (a1,b1)=0.1 -> 1.0 total;
        # optimal is 0.8 + 0.85 = 1.65.
        selected = HungarianSelection().select(
            matrix_from([[0.9, 0.8], [0.85, 0.1]])
        )
        assert {(c.source_id, c.target_id) for c in selected} == {
            ("a0", "b1"), ("a1", "b0"),
        }

    def test_threshold_filters_assignment(self):
        selected = HungarianSelection(threshold=0.5).select(
            matrix_from([[0.9, 0.1], [0.1, 0.2]])
        )
        assert {(c.source_id, c.target_id) for c in selected} == {("a0", "b0")}

    @given(random_matrices)
    @settings(max_examples=30)
    def test_total_at_least_stable_marriage(self, scores):
        matrix = matrix_from(scores)
        hungarian_total = sum(
            c.score for c in HungarianSelection(threshold=-1.0).select(matrix)
        )
        stable_total = sum(
            c.score for c in StableMarriageSelection(threshold=-1.0).select(matrix)
        )
        assert hungarian_total >= stable_total - 1e-9
