"""Profiles, vectorised set similarity, and the individual match voters."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.matchers import (
    DataTypeVoter,
    DocumentationVoter,
    EditDistanceVoter,
    ExactNameVoter,
    NameTokenVoter,
    NgramVoter,
    PathVoter,
    StructuralVoter,
    ThesaurusVoter,
    build_profile,
    default_voters,
)
from repro.matchers.setsim import (
    containment_matrix,
    dice_matrix,
    intersection_counts,
    jaccard_matrix,
)
from repro.text.similarity import dice_coefficient, jaccard, overlap_coefficient

token_lists = st.lists(
    st.sampled_from(["date", "begin", "event", "person", "name", "code"]),
    max_size=5,
)


class TestSetSimMatricesMatchPairwiseReference:
    @given(
        st.lists(token_lists, min_size=1, max_size=5),
        st.lists(token_lists, min_size=1, max_size=5),
    )
    def test_jaccard_matrix(self, source, target):
        matrix = jaccard_matrix(source, target)
        for i, a in enumerate(source):
            for j, b in enumerate(target):
                expected = jaccard(a, b) if (a or b) else 0.0
                if not a and not b:
                    expected = 0.0  # matrix treats empty-vs-empty as no evidence
                assert matrix[i, j] == pytest.approx(expected)

    @given(
        st.lists(token_lists, min_size=1, max_size=5),
        st.lists(token_lists, min_size=1, max_size=5),
    )
    def test_dice_matrix(self, source, target):
        matrix = dice_matrix(source, target)
        for i, a in enumerate(source):
            for j, b in enumerate(target):
                expected = 0.0 if not a and not b else dice_coefficient(a, b)
                assert matrix[i, j] == pytest.approx(expected)

    @given(
        st.lists(token_lists, min_size=1, max_size=5),
        st.lists(token_lists, min_size=1, max_size=5),
    )
    def test_containment_matrix(self, source, target):
        matrix = containment_matrix(source, target)
        for i, a in enumerate(source):
            for j, b in enumerate(target):
                expected = 0.0 if not a and not b else overlap_coefficient(a, b)
                assert matrix[i, j] == pytest.approx(expected)

    def test_intersection_counts(self):
        counts, source_sizes, target_sizes = intersection_counts(
            [["a", "b"], ["c"]], [["a"], ["a", "b", "c"]]
        )
        assert counts[0, 0] == 1
        assert counts[0, 1] == 2
        assert counts[1, 1] == 1
        assert source_sizes.tolist() == [2, 1]
        assert target_sizes.tolist() == [1, 3]


class TestProfile:
    def test_profile_basics(self, sample_relational):
        profile = build_profile(sample_relational)
        assert len(profile) == len(sample_relational)
        assert profile.element_ids[0] == "all_event_vitals"
        assert profile.depths[0] == 1
        assert profile.parent_index[0] == -1
        assert profile.parent_index[1] == 0

    def test_subtree_positions(self, sample_relational):
        profile = build_profile(sample_relational)
        positions = profile.subtree_positions("person_master")
        ids = [profile.element_ids[p] for p in positions]
        assert ids[0] == "person_master"
        assert all(eid.startswith("person_master") for eid in ids)

    def test_leaf_positions(self, sample_relational):
        profile = build_profile(sample_relational)
        leaves = {profile.element_ids[p] for p in profile.leaf_positions()}
        assert "all_event_vitals.event_id" in leaves
        assert "all_event_vitals" not in leaves

    def test_doc_terms_empty_without_documentation(self, sample_xml):
        profile = build_profile(sample_xml)
        position = profile.index_of["individual.dateofbirth"]
        assert profile.doc_terms[position] == []


class TestVoterContracts:
    """Shared contract: confidences in [-1,1], shapes align, zero evidence -> 0."""

    @pytest.mark.parametrize("voter", default_voters(), ids=lambda v: v.name)
    def test_full_grid_contract(self, voter, sample_relational, sample_xml):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        opinion = voter.vote(source, target)
        assert opinion.shape == (len(source), len(target))
        assert opinion.confidence.min() >= -1.0
        assert opinion.confidence.max() <= 1.0
        assert opinion.evidence.min() >= 0.0
        zero_evidence = opinion.evidence == 0
        assert np.all(opinion.confidence[zero_evidence] == 0.0)

    @pytest.mark.parametrize("voter", default_voters(), ids=lambda v: v.name)
    def test_restriction_matches_full_grid(self, voter, sample_relational, sample_xml):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        full = voter.vote(source, target)
        rows = source.subtree_positions("person_master")
        restricted = voter.vote(source, target, source_positions=rows)
        if voter.name in ("structure", "path", "documentation", "describing_text"):
            # Context-dependent voters (ancestors/children fall outside the
            # grid) and corpus-fit voters (TF-IDF IDF shifts with the grid)
            # may legitimately differ under restriction.
            return
        np.testing.assert_allclose(
            restricted.confidence, full.confidence[rows, :], atol=1e-12
        )


class TestIndividualVoters:
    def test_exact_name_hits_equal_names(self, sample_relational, sample_xml):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        opinion = ExactNameVoter().vote(source, target)
        # No identical names across the two samples.
        assert opinion.similarity.max() == 0.0

    def test_name_token_finds_birth_date(self, sample_relational, sample_xml):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        opinion = NameTokenVoter().vote(source, target)
        row = source.index_of["person_master.birth_dt"]
        col = target.index_of["individual.dateofbirth"]
        assert opinion.confidence[row, col] > 0.2
        assert opinion.confidence[row, col] == opinion.confidence[row].max()

    def test_thesaurus_bridges_synonyms(self, sample_relational, sample_xml):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        opinion = ThesaurusVoter().vote(source, target)
        row = source.index_of["all_event_vitals.date_begin_156"]
        col = target.index_of["event.datetime_first_info"]
        plain = NameTokenVoter().vote(source, target)
        assert opinion.confidence[row, col] > plain.confidence[row, col]

    def test_documentation_voter_rewards_shared_docs(
        self, sample_relational, sample_xml
    ):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        opinion = DocumentationVoter().vote(source, target)
        row = source.index_of["person_master.blood_type_cd"]
        col = target.index_of["individual.bloodgroup"]
        assert opinion.confidence[row, col] > 0.3

    def test_documentation_voter_zero_without_docs(self, sample_relational, sample_xml):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        opinion = DocumentationVoter().vote(source, target)
        col = target.index_of["individual.dateofbirth"]  # no documentation
        assert np.all(opinion.confidence[:, col] == 0.0)

    def test_datatype_voter_neutral_on_unknown(self, sample_relational, sample_xml):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        opinion = DataTypeVoter().vote(source, target)
        row = source.index_of["active_persons.person_id"]  # view column, unknown type
        assert np.all(opinion.confidence[row, :] == 0.0)

    def test_datatype_voter_compatible_positive(self, sample_relational, sample_xml):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        opinion = DataTypeVoter().vote(source, target)
        row = source.index_of["person_master.birth_dt"]
        col = target.index_of["individual.dateofbirth"]
        assert opinion.confidence[row, col] > 0.0

    def test_ngram_voter_tolerates_fusion(self):
        from repro.schema import Schema

        left = Schema("l")
        left.add_root("REGISTRATIONNUMBER")
        right = Schema("r")
        right.add_root("RegistrationNo")
        opinion = NgramVoter().vote(build_profile(left), build_profile(right))
        assert opinion.similarity[0, 0] > 0.4

    def test_edit_distance_cap(self, sample_relational, sample_xml):
        voter = EditDistanceVoter(max_pairs=4)
        with pytest.raises(ValueError):
            voter.vote(build_profile(sample_relational), build_profile(sample_xml))

    def test_edit_distance_small_grid(self):
        from repro.schema import Schema

        left = Schema("l")
        left.add_root("BIRTH_DATE")
        right = Schema("r")
        right.add_root("BIRTHDATE")
        opinion = EditDistanceVoter().vote(build_profile(left), build_profile(right))
        assert opinion.similarity[0, 0] > 0.8

    def test_structural_voter_container_alignment(self, sample_relational, sample_xml):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        opinion = StructuralVoter().vote(source, target)
        person_row = source.index_of["person_master"]
        individual_col = target.index_of["individual"]
        event_col = target.index_of["event"]
        assert (
            opinion.similarity[person_row, individual_col]
            > opinion.similarity[person_row, event_col]
        )

    def test_structural_voter_container_vs_leaf_penalty(
        self, sample_relational, sample_xml
    ):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        opinion = StructuralVoter().vote(source, target)
        table_row = source.index_of["person_master"]
        leaf_col = target.index_of["individual.dateofbirth"]
        assert opinion.confidence[table_row, leaf_col] < 0.0

    def test_path_voter_uses_ancestry(self, sample_relational, sample_xml):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        opinion = PathVoter().vote(source, target)
        row = source.index_of["all_event_vitals.event_id"]
        col_same_context = target.index_of["event.eventidentifier"]
        col_other_context = target.index_of["individual.familyname"]
        assert (
            opinion.confidence[row, col_same_context]
            > opinion.confidence[row, col_other_context]
        )

    def test_calibration_validation(self):
        with pytest.raises(ValueError):
            NameTokenVoter(neutral=0.0)
        with pytest.raises(ValueError):
            NameTokenVoter(negative_scale=1.5)
        with pytest.raises(ValueError):
            NameTokenVoter(tau=0.0)
