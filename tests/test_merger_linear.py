"""The production conviction-linear merger and remaining voter coverage."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.matchers import (
    DEFAULT_VOTER_WEIGHTS,
    DescribingTextVoter,
    build_profile,
    default_voters,
)
from repro.voting import ConvictionLinearMerger, merger_by_name


def _stack(*layers):
    return np.stack([np.array(layer, dtype=float) for layer in layers])


class TestConvictionLinearMerger:
    def test_signed_square_of_single_vote(self):
        merged = ConvictionLinearMerger().merge(_stack([[0.8]]))
        assert merged[0, 0] == pytest.approx(0.8 * 0.8)

    def test_negative_votes_keep_their_sign(self):
        merged = ConvictionLinearMerger().merge(_stack([[-0.8]]))
        assert merged[0, 0] == pytest.approx(-0.64)

    def test_strong_negative_survives_mild_positives(self):
        """The property that motivated the merger: three mild agreements do
        not wash out one decisive contradiction."""
        merged = ConvictionLinearMerger().merge(
            _stack([[0.3]], [[0.3]], [[0.3]], [[-0.9]])
        )
        assert merged[0, 0] < 0.0

    def test_weights_shift_the_balance(self):
        stacked = _stack([[0.8]], [[-0.8]])
        favour_first = ConvictionLinearMerger(voter_weights=[3.0, 1.0])
        favour_second = ConvictionLinearMerger(voter_weights=[1.0, 3.0])
        assert favour_first.merge(stacked)[0, 0] > 0
        assert favour_second.merge(stacked)[0, 0] < 0

    def test_zero_votes_merge_to_zero(self):
        merged = ConvictionLinearMerger().merge(_stack([[0.0]], [[0.0]]))
        assert merged[0, 0] == 0.0

    def test_weight_count_validated_at_merge(self):
        merger = ConvictionLinearMerger(voter_weights=[1.0])
        with pytest.raises(ValueError):
            merger.merge(_stack([[0.1]], [[0.2]]))

    def test_weight_validation_at_construction(self):
        with pytest.raises(ValueError):
            ConvictionLinearMerger(voter_weights=[])
        with pytest.raises(ValueError):
            ConvictionLinearMerger(voter_weights=[-1.0])
        with pytest.raises(ValueError):
            ConvictionLinearMerger(voter_weights=[0.0, 0.0])

    def test_registered_by_name(self):
        assert merger_by_name("conviction_linear").name == "conviction_linear"

    def test_default_weights_align_with_default_voters(self):
        assert len(DEFAULT_VOTER_WEIGHTS) == len(default_voters())

    @given(
        st.lists(
            st.lists(
                st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
                min_size=2,
                max_size=2,
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_bounds_property(self, rows):
        stacked = np.array(rows)[:, None, :]  # (voters, 1, 2)
        merged = ConvictionLinearMerger().merge(stacked)
        assert merged.min() >= -1.0
        assert merged.max() <= 1.0

    def test_magnitude_compression(self):
        """Signed squaring compresses: |merged| <= max |vote|."""
        stacked = _stack([[0.5, -0.3]], [[0.2, -0.6]])
        merged = ConvictionLinearMerger().merge(stacked)
        assert np.all(np.abs(merged) <= np.abs(stacked).max(axis=0) + 1e-12)


class TestDescribingTextVoter:
    def test_combines_name_and_docs(self, sample_relational, sample_xml):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        opinion = DescribingTextVoter().vote(source, target)
        row = source.index_of["person_master.blood_type_cd"]
        col = target.index_of["individual.bloodgroup"]
        # Documentation agreement ("ABO blood group ...") drives this pair
        # even though the names share only the "blood" token.
        assert opinion.confidence[row, col] > 0.2
        assert opinion.confidence[row, col] == opinion.confidence[row].max()

    def test_name_keeps_vector_nonempty_without_docs(
        self, sample_relational, sample_xml
    ):
        source = build_profile(sample_relational)
        target = build_profile(sample_xml)
        opinion = DescribingTextVoter().vote(source, target)
        col = target.index_of["individual.dateofbirth"]  # no documentation
        assert opinion.evidence[:, col].max() > 0  # name tokens still count
