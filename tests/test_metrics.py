"""P/R/F1, threshold sweeps, overlap partitions, ranking metrics."""

import numpy as np
import pytest

from repro.match import HarmonyMatchEngine, MatchMatrix
from repro.metrics import (
    average_precision,
    best_f1,
    matrix_overlap,
    precision_at_k,
    prf,
    prf_of_pairs,
    reciprocal_rank,
    threshold_sweep,
    workflow_overlap,
)
from repro.match.correspondence import Correspondence


class TestPrf:
    def test_perfect(self):
        measurement = prf_of_pairs({("a", "b")}, {("a", "b")})
        assert measurement.precision == 1.0
        assert measurement.recall == 1.0
        assert measurement.f1 == 1.0

    def test_half_precision(self):
        measurement = prf_of_pairs({("a", "b"), ("a", "c")}, {("a", "b")})
        assert measurement.precision == 0.5
        assert measurement.recall == 1.0
        assert measurement.f1 == pytest.approx(2 / 3)

    def test_empty_prediction(self):
        measurement = prf_of_pairs(set(), {("a", "b")})
        assert measurement.precision == 0.0
        assert measurement.recall == 0.0
        assert measurement.f1 == 0.0

    def test_empty_truth(self):
        measurement = prf_of_pairs({("a", "b")}, set())
        assert measurement.recall == 0.0

    def test_from_correspondences(self):
        measurement = prf([Correspondence("a", "b", 0.9)], {("a", "b")})
        assert measurement.f1 == 1.0

    def test_as_row_format(self):
        row = prf_of_pairs({("a", "b")}, {("a", "b")}).as_row()
        assert "P=1.000" in row and "tp=1" in row


class TestSweeps:
    @pytest.fixture
    def matrix(self):
        return MatchMatrix(
            ["a1", "a2"], ["b1", "b2"],
            np.array([[0.9, 0.1], [0.2, 0.8]]),
        )

    def test_threshold_sweep_monotone_predictions(self, matrix):
        sweep = threshold_sweep(matrix, {("a1", "b1"), ("a2", "b2")})
        predicted = [measurement.predicted for _, measurement in sweep]
        assert predicted == sorted(predicted, reverse=True)

    def test_best_f1_finds_operating_point(self, matrix):
        threshold, measurement = best_f1(matrix, {("a1", "b1"), ("a2", "b2")})
        assert measurement.f1 == 1.0
        assert 0.2 < threshold <= 0.8


class TestMatrixOverlap:
    def test_partition_is_total(self, small_pair_result):
        report = matrix_overlap(small_pair_result, threshold=0.3)
        all_targets = set(small_pair_result.matrix.target_ids)
        assert report.intersection_target_ids | report.target_only_ids == all_targets
        assert not report.intersection_target_ids & report.target_only_ids
        all_sources = set(small_pair_result.matrix.source_ids)
        assert report.intersection_source_ids | report.source_only_ids == all_sources

    def test_fractions(self, small_pair_result):
        report = matrix_overlap(small_pair_result, threshold=0.3)
        assert report.target_matched_fraction == pytest.approx(
            len(report.intersection_target_ids) / report.target_total
        )
        assert report.target_unmatched_count == len(report.target_only_ids)

    def test_summary_lines(self, small_pair_result):
        report = matrix_overlap(small_pair_result, threshold=0.3)
        lines = report.summary_lines()
        assert any("matched fraction" in line for line in lines)


class TestWorkflowOverlap:
    def test_workflow_tighter_than_matrix(self, small_pair, small_pair_result):
        source_summary = small_pair.source.truth_summary()
        target_summary = small_pair.target.truth_summary()
        workflow = workflow_overlap(
            small_pair_result, source_summary, target_summary
        )
        naive = matrix_overlap(small_pair_result, threshold=0.1)
        assert (
            len(workflow.intersection_target_ids)
            <= len(naive.intersection_target_ids)
        )

    def test_workflow_finds_real_overlap(self, small_pair, small_pair_result):
        workflow = workflow_overlap(
            small_pair_result,
            small_pair.source.truth_summary(),
            small_pair.target.truth_summary(),
        )
        measurement = prf_of_pairs(workflow.matched_pairs, small_pair.truth_pairs)
        assert measurement.precision > 0.5
        assert measurement.recall > 0.25
        assert workflow.concept_matches

    def test_matched_pairs_within_concept_matches(self, small_pair, small_pair_result):
        source_summary = small_pair.source.truth_summary()
        target_summary = small_pair.target.truth_summary()
        workflow = workflow_overlap(
            small_pair_result, source_summary, target_summary
        )
        matched_concepts = {
            (m.source_concept_id, m.target_concept_id)
            for m in workflow.concept_matches
        }
        for source_id, target_id in workflow.matched_pairs:
            concept_pair = (
                source_summary.concept_of(source_id).concept_id,
                target_summary.concept_of(target_id).concept_id,
            )
            assert concept_pair in matched_concepts


class TestRankingMetrics:
    def test_precision_at_k(self):
        ranked = ["a", "b", "c", "d"]
        assert precision_at_k(ranked, {"a", "c"}, 2) == 0.5
        assert precision_at_k(ranked, {"a", "c"}, 4) == 0.5
        with pytest.raises(ValueError):
            precision_at_k(ranked, {"a"}, 0)

    def test_reciprocal_rank(self):
        assert reciprocal_rank(["x", "a"], {"a"}) == 0.5
        assert reciprocal_rank(["a"], {"a"}) == 1.0
        assert reciprocal_rank(["x"], {"a"}) == 0.0

    def test_average_precision(self):
        assert average_precision(["a", "x", "b"], {"a", "b"}) == pytest.approx(
            (1.0 + 2 / 3) / 2
        )
        assert average_precision(["x"], {"a"}) == 0.0
        assert average_precision(["a"], set()) == 0.0
