"""Mapping network: graph lifecycle, multi-hop composition, service, CLI."""

import json

import pytest

from repro.match import Correspondence, MatchStatus
from repro.network import MappingGraph, build_adjacency, compose_stored
from repro.repository import (
    AssertionMethod,
    MetadataRepository,
    ReusePolicy,
    TrustPolicy,
    compose_matches,
)
from repro.schema import Schema
from repro.service import (
    MatchOptions,
    MatchService,
    NetworkMatchRequest,
    NetworkMatchResponse,
)
from repro.synthetic import generate_mapping_chain


def small_schema(name, elements=("x", "y")):
    schema = Schema(name)
    root = schema.add_root(name.upper())
    for element in elements:
        schema.add_child(root, element)
    return schema


@pytest.fixture(params=["memory", "sqlite"])
def repository(request, tmp_path):
    if request.param == "memory":
        repo = MetadataRepository()
    else:
        repo = MetadataRepository(path=str(tmp_path / "network.db"))
    yield repo
    repo.close()


@pytest.fixture
def chain_repository(repository):
    """a - b - c - d chain with the b<->c mapping stored REVERSED (c -> b)."""
    for name in "abcd":
        repository.register(small_schema(name))
    repository.store_match(
        "a", "b", Correspondence("a.x", "b.x", 0.8), asserted_by="alice"
    )
    repository.store_match(
        "c", "b", Correspondence("c.x", "b.x", 0.7), asserted_by="alice"
    )
    repository.store_match(
        "c", "d", Correspondence("c.x", "d.x", 0.9), asserted_by="alice"
    )
    return repository


class TestMappingGraph:
    def test_topology(self, chain_repository):
        graph = MappingGraph(chain_repository)
        assert graph.n_nodes == 4
        refresh = graph.refresh()
        assert refresh.n_edges == 3
        assert graph.neighbours("b") == ["a", "c"]
        assert graph.neighbours("a") == ["b"]
        with pytest.raises(KeyError):
            graph.neighbours("missing")

    def test_legs_flip_stored_direction(self, chain_repository):
        graph = MappingGraph(chain_repository)
        # b -> c is only stored as c -> b; traversal must see it flipped.
        legs = graph.legs("b", "c")
        assert [(leg.source_element, leg.target_element) for leg in legs] == [
            ("b.x", "c.x")
        ]

    def test_paths_are_acyclic_and_bounded(self, chain_repository):
        graph = MappingGraph(chain_repository)
        assert graph.paths("a", "c", max_hops=1) == [("a", "b", "c")]
        assert graph.paths("a", "d", max_hops=1) == []
        assert graph.paths("a", "d", max_hops=2) == [("a", "b", "c", "d")]
        # A direct edge is never a "path" (composition needs >= 1 pivot).
        assert graph.paths("a", "b", max_hops=3) == []
        with pytest.raises(ValueError):
            graph.paths("a", "d", max_hops=0)

    def test_single_pivot_composition_flips_legs(self, chain_repository):
        graph = MappingGraph(chain_repository)
        composed = graph.compose("a", "c", max_hops=1)
        assert len(composed) == 1
        assert composed[0].pair == ("a.x", "c.x")
        assert composed[0].score == pytest.approx(0.7)  # min of the legs

    def test_multi_hop_decays_per_extra_pivot(self, chain_repository):
        graph = MappingGraph(chain_repository, hop_decay=0.9)
        composed = graph.compose("a", "d", max_hops=2)
        assert composed[0].pair == ("a.x", "d.x")
        # min(0.8, 0.7, 0.9) = 0.7; one pivot beyond the first -> one decay.
        assert composed[0].score == pytest.approx(0.7 * 0.9)
        assert "composed via b > c" in composed[0].note

    def test_multi_path_evidence_merges_strongest(self, repository):
        for name in ("a", "p", "q", "c"):
            repository.register(small_schema(name))
        for pivot, score in (("p", 0.9), ("q", 0.5)):
            repository.store_match(
                "a", pivot, Correspondence("a.x", f"{pivot}.x", score),
                asserted_by="alice",
            )
            repository.store_match(
                pivot, "c", Correspondence(f"{pivot}.x", "c.x", score),
                asserted_by="alice",
            )
        graph = MappingGraph(repository)
        composed = graph.compose("a", "c", max_hops=1)
        assert len(composed) == 1
        assert composed[0].score == pytest.approx(0.9)  # p wins
        assert "+1 more path" in composed[0].note
        route = graph.route("a", "c", max_hops=1)
        assert route.n_paths == 2

    def test_rejected_legs_never_traverse(self, chain_repository):
        chain_repository.store_match(
            "a", "b",
            Correspondence("a.y", "b.y", 0.99, status=MatchStatus.REJECTED),
            asserted_by="bob",
        )
        graph = MappingGraph(chain_repository)
        assert all(c.pair != ("a.y", "c.y") for c in graph.compose("a", "c"))

    def test_trust_policy_gates_legs_per_query(self, chain_repository):
        graph = MappingGraph(chain_repository)
        strict = TrustPolicy(min_confidence=0.75)
        # The c->b leg (0.7) falls below the gate; composition dies.
        assert graph.compose("a", "c", max_hops=1, policy=strict) == []
        # Same cached adjacency, permissive query still composes.
        assert len(graph.compose("a", "c", max_hops=1)) == 1

    def test_staleness_tracks_both_clocks(self, chain_repository):
        graph = MappingGraph(chain_repository)
        graph.refresh()
        assert not graph.is_stale()
        assert not graph.refresh().rebuilt
        chain_repository.store_match(
            "a", "d", Correspondence("a.y", "d.y", 0.5), asserted_by="alice"
        )
        assert graph.is_stale()
        assert graph.refresh().rebuilt
        chain_repository.register(small_schema("e"))
        assert graph.is_stale()
        chain_repository.unregister("e")
        assert graph.is_stale()
        graph.refresh()
        assert not graph.is_stale()

    def test_unregister_drops_edges(self, chain_repository):
        graph = MappingGraph(chain_repository)
        assert graph.paths("a", "d", max_hops=2)
        chain_repository.unregister("b")
        assert graph.paths("a", "d", max_hops=3) == []
        with pytest.raises(KeyError):
            graph.paths("a", "b", max_hops=1)

    def test_hop_decay_validation(self, chain_repository):
        with pytest.raises(ValueError):
            MappingGraph(chain_repository, hop_decay=0.0)
        with pytest.raises(ValueError):
            MappingGraph(chain_repository).compose("a", "c", hop_decay=1.5)

    def test_degenerate_self_query_refused(self, chain_repository):
        # An a -> P -> a round trip must never come back as a plausible
        # "composition" of a schema with itself.
        graph = MappingGraph(chain_repository)
        with pytest.raises(ValueError):
            graph.compose("b", "b", max_hops=2)
        with pytest.raises(ValueError):
            graph.paths("b", "b", max_hops=2)
        with pytest.raises(ValueError):
            compose_matches(chain_repository, "b", "b")


class TestComposeMatchesRefactor:
    """compose_matches is now the max_hops=1 case of the path composer."""

    def test_reversed_direction_legs_compose(self, chain_repository):
        # Regression: both legs of a -> c touch stored rows whose query
        # orientation differs from the stored one (c -> b is reversed).
        composed = compose_matches(chain_repository, "a", "c")
        assert [c.pair for c in composed] == [("a.x", "c.x")]
        assert composed[0].score == pytest.approx(0.7)
        flipped = compose_matches(chain_repository, "c", "a")
        assert [c.pair for c in flipped] == [("c.x", "a.x")]

    def test_k1_matches_reference_implementation(self, repository):
        """The refactored composer reproduces the original single-pivot
        algorithm (inlined here) to 1e-9 on a dense multi-pivot fixture."""
        import random

        rng = random.Random(18)
        names = ["s", "t", "p1", "p2", "p3"]
        for name in names:
            repository.register(small_schema(name, ["e0", "e1", "e2"]))
        stored = []
        for left in names:
            for right in names:
                if left >= right:
                    continue
                for _ in range(3):
                    correspondence = Correspondence(
                        f"{left}.e{rng.randrange(3)}",
                        f"{right}.e{rng.randrange(3)}",
                        round(rng.uniform(0.1, 1.0), 3),
                    )
                    if rng.random() < 0.5:
                        repository.store_match(
                            left, right, correspondence, asserted_by="alice"
                        )
                        stored.append((left, right, correspondence))
                    else:
                        flipped = Correspondence(
                            correspondence.target_id,
                            correspondence.source_id,
                            correspondence.score,
                        )
                        repository.store_match(
                            right, left, flipped, asserted_by="alice"
                        )
                        stored.append((right, left, flipped))

        def reference(source_schema, target_schema):
            via = {}
            best = {}
            def legs(schema_name):
                out = []
                for a, b, c in stored:
                    if a == schema_name:
                        out.append((b, c.source_id, c.target_id, c.score))
                    elif b == schema_name:
                        out.append((a, c.target_id, c.source_id, c.score))
                return out
            for pivot, own, pivot_el, score in legs(source_schema):
                if pivot == target_schema:
                    continue
                via.setdefault((pivot, pivot_el), []).append((own, score))
            for pivot, own, pivot_el, score in legs(target_schema):
                if pivot == source_schema:
                    continue
                for source_el, source_score in via.get((pivot, pivot_el), []):
                    pair = (source_el, own)
                    composed = min(source_score, score)
                    if composed > best.get(pair, float("-inf")):
                        best[pair] = composed
            return best

        for source, target in (("s", "t"), ("t", "s"), ("p1", "p3")):
            expected = reference(source, target)
            actual = {
                c.pair: c.score for c in compose_matches(repository, source, target)
            }
            assert set(actual) == set(expected)
            for pair, score in expected.items():
                assert actual[pair] == pytest.approx(score, abs=1e-9)

    def test_pool_short_circuits_store_scans(self, chain_repository):
        pool = chain_repository.matches()
        from_pool = compose_matches(chain_repository, "a", "c", pool=pool)
        assert from_pool == compose_matches(chain_repository, "a", "c")
        # compose_stored works without any repository at all.
        assert compose_stored(pool, "a", "c") == from_pool

    def test_multi_hop_through_compose_matches(self, chain_repository):
        composed = compose_matches(
            chain_repository, "a", "d", max_hops=2, hop_decay=1.0
        )
        assert [c.pair for c in composed] == [("a.x", "d.x")]
        assert composed[0].score == pytest.approx(0.7)

    def test_adjacency_skips_self_matches(self, repository):
        repository.register(small_schema("a"))
        repository.store_match(
            "a", "a", Correspondence("a.x", "a.y", 0.9), asserted_by="alice"
        )
        assert build_adjacency(repository.matches()) == {}


class TestReusePolicyComposedParameter:
    def test_external_composed_candidates_join_at_composed_weight(
        self, chain_repository
    ):
        policy = ReusePolicy()
        external = [Correspondence("a.x", "d.x", 0.63, asserted_by="composer")]
        priors = policy.priors(chain_repository, "a", "d", composed=external)
        assert priors[("a.x", "d.x")].method is AssertionMethod.COMPOSED
        assert priors[("a.x", "d.x")].weighted_score == pytest.approx(
            policy.composed_weight * 0.63
        )

    def test_rejection_still_vetoes_external_composed(self, chain_repository):
        chain_repository.store_match(
            "a", "d",
            Correspondence("a.x", "d.x", 0.9, status=MatchStatus.REJECTED),
            asserted_by="bob",
        )
        policy = ReusePolicy()
        external = [Correspondence("a.x", "d.x", 0.99, asserted_by="composer")]
        priors = policy.priors(chain_repository, "a", "d", composed=external)
        assert ("a.x", "d.x") not in priors


class TestNetworkMatchService:
    def test_requires_repository(self):
        with pytest.raises(ValueError):
            MatchService().network_match(NetworkMatchRequest(source="a", target="b"))

    def test_requires_registered_endpoints(self, chain_repository):
        service = MatchService(repository=chain_repository)
        with pytest.raises(KeyError):
            service.network_match(NetworkMatchRequest(source="a", target="nope"))

    def test_compose_only(self, chain_repository):
        service = MatchService(repository=chain_repository)
        response = service.network_match(
            NetworkMatchRequest(source="a", target="d", max_hops=2)
        )
        assert not response.verified
        assert response.n_paths == 1
        assert response.paths[0].nodes == ("a", "b", "c", "d")
        assert response.correspondences == response.composed
        assert response.correspondences[0].score == pytest.approx(0.7 * 0.9)
        assert response.n_nodes == 4 and response.n_edges == 3

    def test_min_score_filters_composed(self, chain_repository):
        service = MatchService(repository=chain_repository)
        response = service.network_match(
            NetworkMatchRequest(source="a", target="d", max_hops=2, min_score=0.95)
        )
        assert response.composed == ()
        assert response.n_paths == 1  # the path existed; its evidence was weak

    def test_verify_folds_composition_into_fresh_run(self, tmp_path):
        chain = generate_mapping_chain(n_schemata=3, seed=7)
        repository = MetadataRepository()
        for generated in chain.schemata:
            repository.register(generated.schema)
        service = MatchService(repository=repository)
        options = MatchOptions(selection="stable_marriage")
        for i in range(2):
            service.persist(
                service.match_pair(chain.names[i], chain.names[i + 1], options=options)
            )
        response = service.network_match(
            NetworkMatchRequest(
                source=chain.names[0],
                target=chain.names[2],
                max_hops=1,
                options=options,
                verify=True,
            )
        )
        assert response.verified
        assert response.n_boosted > 0
        boosted = [c for c in response.correspondences if "reuse-boosted" in c.note]
        assert len(boosted) == response.n_boosted

    def test_warm_graph_is_shared_across_calls(self, chain_repository):
        service = MatchService(repository=chain_repository)
        request = NetworkMatchRequest(source="a", target="c", max_hops=1)
        service.network_match(request)
        graph = service.mapping_graph()
        assert not graph.is_stale()
        assert service.mapping_graph() is graph

    def test_response_json_round_trip(self, chain_repository):
        service = MatchService(repository=chain_repository)
        response = service.network_match(
            NetworkMatchRequest(source="a", target="d", max_hops=2)
        )
        assert NetworkMatchResponse.from_json(response.to_json()) == response
        with pytest.raises(ValueError):
            NetworkMatchResponse.from_dict({"format_version": 99})

    def test_request_validation(self):
        with pytest.raises(TypeError):
            NetworkMatchRequest(source=small_schema("a"), target="b")
        with pytest.raises(ValueError):
            NetworkMatchRequest(source="a", target="a")
        with pytest.raises(ValueError):
            NetworkMatchRequest(source="a", target="b", max_hops=0)
        with pytest.raises(ValueError):
            NetworkMatchRequest(source="a", target="b", hop_decay=0.0)
        with pytest.raises(TypeError):
            NetworkMatchRequest(source="a", target="b", reuse=None)

    def test_verify_fold_inherits_request_trust(self, tmp_path):
        """A request-level trust gate governs direct priors too, not just
        the routed legs."""
        chain = generate_mapping_chain(n_schemata=3, seed=7)
        repository = MetadataRepository()
        for generated in chain.schemata:
            repository.register(generated.schema)
        service = MatchService(repository=repository)
        options = MatchOptions(selection="stable_marriage")
        for i in range(2):
            service.persist(
                service.match_pair(chain.names[i], chain.names[i + 1], options=options)
            )
        # A direct low-trust automatic assertion between the endpoints.
        truth = sorted(chain.truth_pairs(0, 2))[0]
        repository.store_match(
            chain.names[0], chain.names[2],
            Correspondence(truth[0], truth[1], 0.9),
            asserted_by="untrusted-engine",
        )
        gated = TrustPolicy(trusted_asserters=frozenset({"nobody"}))
        response = service.network_match(
            NetworkMatchRequest(
                source=chain.names[0], target=chain.names[2],
                max_hops=1, options=options, verify=True, trust=gated,
            )
        )
        # Every leg and every direct prior fails the gate: nothing composes,
        # nothing boosts, nothing seeds.
        assert response.composed == ()
        assert response.n_boosted == 0 and response.n_seeded == 0
        assert all("reuse-" not in c.note for c in response.correspondences)


class TestMappingChain:
    def test_ground_truth_is_total_for_any_pair(self):
        chain = generate_mapping_chain(n_schemata=5, seed=3)
        size = len(chain.schemata[0].schema)
        assert all(len(g.schema) == size for g in chain.schemata)
        assert len(chain.truth_pairs(0, 1)) == size
        assert len(chain.truth_pairs(0, 4)) == size
        assert chain.names == ["N00", "N01", "N02", "N03", "N04"]

    def test_deterministic(self):
        first = generate_mapping_chain(n_schemata=3, seed=11)
        second = generate_mapping_chain(n_schemata=3, seed=11)
        assert first.truth_pairs(0, 2) == second.truth_pairs(0, 2)

    def test_too_short(self):
        with pytest.raises(ValueError):
            generate_mapping_chain(n_schemata=1)


class TestNetworkMatchCli:
    @pytest.fixture
    def chain_db(self, tmp_path):
        chain = generate_mapping_chain(n_schemata=4, seed=2009)
        path = str(tmp_path / "chain.db")
        with MetadataRepository(path=path) as repository:
            for generated in chain.schemata:
                repository.register(generated.schema)
            service = MatchService(repository=repository)
            options = MatchOptions(selection="stable_marriage")
            for i in range(3):
                service.persist(
                    service.match_pair(
                        chain.names[i], chain.names[i + 1], options=options
                    )
                )
        return path, chain.names

    def test_text_output(self, chain_db, capsys):
        from repro.cli import main

        path, names = chain_db
        assert main(["network-match", names[0], names[2], "--db", path]) == 0
        out = capsys.readouterr().out
        assert "pivot path(s)" in out
        assert f"via {names[1]}" in out

    def test_json_output(self, chain_db, capsys):
        from repro.cli import main

        path, names = chain_db
        assert main(
            ["network-match", names[0], names[3], "--db", path,
             "--max-hops", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["routing"]["max_hops"] == 2
        assert payload["routing"]["paths"][0]["nodes"] == names
        restored = NetworkMatchResponse.from_dict(payload)
        assert restored.source_name == names[0]

    def test_unknown_endpoint_exits_2(self, chain_db, capsys):
        from repro.cli import main

        path, names = chain_db
        with pytest.raises(SystemExit) as excinfo:
            main(["network-match", names[0], "missing", "--db", path])
        assert excinfo.value.code == 2
