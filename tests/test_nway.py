"""N-way machinery: union-find, vocabulary, 2^N-1 partition, mediation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nway import (
    NWayPartition,
    UnionFind,
    all_signatures,
    build_vocabulary,
    distill_mediated_schema,
    nway_match,
    partition_vocabulary,
)
from repro.schema import Schema


def tiny_schema(name, roots):
    schema = Schema(name)
    for root, children in roots.items():
        parent = schema.add_root(root)
        for child in children:
            schema.add_child(parent, child)
    return schema


@pytest.fixture
def trio():
    s1 = tiny_schema("S1", {"person": ["name", "birth"], "vehicle": ["reg"]})
    s2 = tiny_schema("S2", {"person": ["name"], "event": ["when"]})
    s3 = tiny_schema("S3", {"event": ["when", "where"]})
    return {"S1": s1, "S2": s2, "S3": s3}


@pytest.fixture
def trio_vocabulary(trio):
    matched = [
        ("S1", "person", "S2", "person"),
        ("S1", "person.name", "S2", "person.name"),
        ("S2", "event", "S3", "event"),
        ("S2", "event.when", "S3", "event.when"),
    ]
    return build_vocabulary(trio, matched)


class TestUnionFind:
    def test_union_and_find(self):
        forest = UnionFind()
        forest.union("a", "b")
        forest.union("b", "c")
        assert forest.find("a") == forest.find("c")
        assert forest.find("d") == "d"

    def test_groups(self):
        forest = UnionFind()
        forest.union("a", "b")
        forest.add("c")
        groups = forest.groups()
        assert sorted(map(sorted, groups.values())) == [["a", "b"], ["c"]]

    @given(st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=30,
    ))
    @settings(max_examples=40)
    def test_equivalence_relation(self, unions):
        forest = UnionFind()
        for left, right in unions:
            forest.union(str(left), str(right))
        # Transitivity: members of one group all share a root.
        for members in forest.groups().values():
            roots = {forest.find(member) for member in members}
            assert len(roots) == 1


class TestVocabulary:
    def test_every_element_in_exactly_one_entry(self, trio, trio_vocabulary):
        seen = {}
        for entry in trio_vocabulary.entries:
            for schema_name, element_ids in entry.members.items():
                for element_id in element_ids:
                    key = (schema_name, element_id)
                    assert key not in seen
                    seen[key] = entry.entry_id
        total_elements = sum(len(schema) for schema in trio.values())
        assert len(seen) == total_elements

    def test_signatures(self, trio_vocabulary):
        shared_12 = trio_vocabulary.entries_with_signature(frozenset(["S1", "S2"]))
        labels = {entry.label.lower() for entry in shared_12}
        assert "person" in labels and "name" in labels

    def test_unique_to(self, trio_vocabulary):
        only_s1 = trio_vocabulary.unique_to("S1")
        labels = {entry.label.lower() for entry in only_s1}
        assert "vehicle" in labels
        assert "person" not in labels

    def test_entries_covering(self, trio_vocabulary):
        covering_s2 = trio_vocabulary.entries_covering(["S2"])
        assert all("S2" in entry.signature for entry in covering_s2)

    def test_shared_by_all_empty_here(self, trio_vocabulary):
        assert trio_vocabulary.shared_by_all() == []


class TestPartition:
    def test_cell_count_law(self, trio_vocabulary):
        partition = partition_vocabulary(trio_vocabulary)
        assert partition.n_cells == 2 ** 3 - 1

    def test_cells_partition_vocabulary(self, trio_vocabulary):
        partition = partition_vocabulary(trio_vocabulary)
        partition.check_partition_laws()
        assert sum(cell.cardinality for cell in partition.cells) == len(
            trio_vocabulary
        )

    def test_cell_lookup(self, trio_vocabulary):
        partition = partition_vocabulary(trio_vocabulary)
        cell = partition.cell("S1", "S2")
        assert cell.cardinality == 2  # person + name

    def test_unknown_cell(self, trio_vocabulary):
        partition = partition_vocabulary(trio_vocabulary)
        with pytest.raises(KeyError):
            partition.cell("S1", "NOPE")

    def test_table_rows(self, trio_vocabulary):
        partition = partition_vocabulary(trio_vocabulary)
        rows = partition.table()
        assert len(rows) == 7
        assert all(len(row) == 3 for row in rows)

    @given(st.integers(min_value=1, max_value=6))
    def test_all_signatures_count(self, n):
        names = [f"S{i}" for i in range(n)]
        assert len(all_signatures(names)) == 2 ** n - 1

    def test_signatures_sorted_smallest_first(self):
        signatures = all_signatures(["B", "A"])
        assert signatures[0] == frozenset(["A"])
        assert signatures[-1] == frozenset(["A", "B"])


class TestNwayMatch:
    def test_end_to_end(self, trio):
        vocabulary, partition = nway_match(trio)
        assert partition.n_cells == 7
        partition.check_partition_laws()
        # The engine should at least link the identically-named concepts.
        cell_12 = partition.cell("S1", "S2")
        cell_123 = partition.cell("S1", "S2", "S3")
        linked = cell_12.cardinality + cell_123.cardinality
        assert linked >= 1


class TestMediatedSchema:
    def test_distill_keeps_shared(self, trio, trio_vocabulary):
        mediated = distill_mediated_schema(trio_vocabulary, trio, min_support=2)
        names = {element.name.lower() for element in mediated}
        assert "person" in names
        assert "name" in names
        assert "vehicle" not in names  # S1-only

    def test_leaves_attach_under_container(self, trio, trio_vocabulary):
        mediated = distill_mediated_schema(trio_vocabulary, trio, min_support=2)
        name_elements = mediated.find_by_name("name")
        assert name_elements
        parent = mediated.parent(name_elements[0])
        assert parent is not None and parent.name.lower() == "person"

    def test_min_support_filtering(self, trio, trio_vocabulary):
        strict = distill_mediated_schema(trio_vocabulary, trio, min_support=3)
        assert len(strict) == 0  # nothing shared by all three

    def test_invalid_min_support(self, trio, trio_vocabulary):
        with pytest.raises(ValueError):
            distill_mediated_schema(trio_vocabulary, trio, min_support=0)

    def test_mediated_is_valid_schema(self, trio, trio_vocabulary):
        mediated = distill_mediated_schema(trio_vocabulary, trio, min_support=2)
        mediated.validate()
