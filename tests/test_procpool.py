"""Process-pool serving: CLI validation and live multi-process behaviour.

The live tests drive ``repro serve --workers N`` as a real subprocess --
forking from inside a (threaded) pytest process is exactly the hazard the
CLI path avoids, so the tests take the same route production does.  Each
one seeds a pooled-WAL repository, starts the pool, talks to it over
HTTP, and asserts on the parent's exit status and output.

Covered: the announce/round-trip/SIGTERM lifecycle; answers identical to
a direct in-process MatchService (the serving tier must never change
scores); cross-process cache invalidation (a write from THIS process is
seen by every worker's next response); SIGINT; a SIGKILLed worker taking
the pool down with status 1; and the exit-2 validation of every bad flag
combination.  Bench E20 measures the same tier under load.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.match import Correspondence
from repro.repository import MetadataRepository
from repro.server import MatchServiceClient, serve_process_pool
from repro.service import MatchRequest, MatchService, NetworkMatchRequest
from repro.synthetic import generate_clustered_corpus

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process-pool serving is POSIX-only"
)


def _seed(db_path: str) -> list[str]:
    corpus = generate_clustered_corpus(
        n_domains=2, schemata_per_domain=3, seed=41
    )
    with MetadataRepository(path=db_path, backend="pooled") as repository:
        for generated in corpus.schemata:
            repository.register(generated.schema)
        return sorted(repository.schema_names())


class _Pool:
    """A ``repro serve --workers N`` subprocess plus a client for it."""

    def __init__(self, db_path: str, workers: int, extra: list[str] = ()):
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--db", db_path,
                "--workers", str(workers),
                "--port", "0",
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            start_new_session=True,
            env={
                **os.environ,
                "PYTHONPATH": str(Path(repro.__file__).resolve().parents[1]),
            },
        )
        # The announce line prints only once the socket is bound and every
        # worker is forked; it carries the ephemeral port.
        line = self.process.stdout.readline()
        assert "serving on http://" in line, f"unexpected announce: {line!r}"
        url = line.split("serving on ", 1)[1].split()[0]
        self.announce = line
        self.client = MatchServiceClient(url, timeout=60.0)

    def worker_pids(self) -> list[int]:
        listing = subprocess.run(
            ["ps", "--ppid", str(self.process.pid), "-o", "pid="],
            capture_output=True, text=True,
        )
        return [int(token) for token in listing.stdout.split()]

    def stop(self, signum=signal.SIGTERM, timeout: float = 60.0) -> int:
        self.process.send_signal(signum)
        remainder = self.process.communicate(timeout=timeout)[0]
        self.output = self.announce + remainder
        return self.process.returncode

    def kill(self) -> None:
        """Teardown backstop: SIGKILL the whole process group (the parent
        alone would leave workers holding the stdout pipe open)."""
        if self.process.poll() is None:
            try:
                os.killpg(os.getpgid(self.process.pid), signal.SIGKILL)
            except ProcessLookupError:
                pass
        try:
            self.process.communicate(timeout=30)
        except (ValueError, subprocess.TimeoutExpired):
            pass


@pytest.fixture
def pool(tmp_path):
    db_path = str(tmp_path / "pool.db")
    names = _seed(db_path)
    started = _Pool(db_path, workers=2)
    started.names = names
    started.db_path = db_path
    yield started
    started.kill()


class TestProcessPoolServing:
    def test_lifecycle_announce_roundtrip_sigterm(self, pool):
        assert "2 worker processes" in pool.announce
        health = pool.client.health()
        assert health["status"] == "ok"
        assert health["repository"]["n_registered"] == len(pool.names)
        assert health["repository"]["backend"]["kind"] == "pooled-wal"
        assert len(pool.worker_pids()) == 2
        assert pool.stop() == 0
        assert "stopped cleanly" in pool.output
        assert pool.worker_pids() == []

    def test_served_scores_equal_direct_service(self, pool):
        source, target = pool.names[0], pool.names[1]
        served = pool.client.match(MatchRequest(source=source, target=target))
        with MetadataRepository(path=pool.db_path, backend="pooled") as repo:
            referee = MatchService(repository=repo).match_pair(source, target)
        assert served.correspondences, "the served answer must be non-trivial"
        assert [
            (c.source_id, c.target_id, c.score)
            for c in served.correspondences
        ] == [
            (c.source_id, c.target_id, c.score)
            for c in referee.correspondences
        ]
        assert pool.stop() == 0

    def test_write_from_another_process_invalidates_every_worker(self, pool):
        """The tentpole's cross-process exactness claim, minimally: a match
        stored by THIS process must change the network-match answers served
        by ALL workers -- their caches key on the DB-backed clocks.  Bench
        E20 runs the full interleaved sweep; this is the smoke version."""
        a, b, c = pool.names[0], pool.names[1], pool.names[2]
        request = NetworkMatchRequest(source=a, target=c, max_hops=2)
        # Warm every worker's cache with the pre-write (edgeless, empty)
        # answer: the kernel load-balances connections, and 8 requests make
        # a one-worker-only streak vanishingly unlikely.
        for _ in range(8):
            assert not pool.client.network_match(request).correspondences
        with MetadataRepository(path=pool.db_path, backend="pooled") as repo:
            referee = MatchService(repository=repo)
            # The cross-process write: persist a->b and b->c mappings, which
            # gives the a->c network route something to compose.
            referee.persist(referee.match_pair(a, b))
            referee.persist(referee.match_pair(b, c))
            expected = {
                corr.pair: corr.score
                for corr in referee.network_match(request).correspondences
            }
            for _ in range(8):
                served = pool.client.network_match(request)
                assert {
                    corr.pair: pytest.approx(corr.score, abs=1e-9)
                    for corr in served.correspondences
                } == expected, "a served response missed the cross-process write"
        assert expected  # the write really changed the answer
        assert pool.stop() == 0

    def test_workers_report_cascade_stats_post_fork(self, pool):
        """The /metrics regression for the cascade tier: each prefork worker
        owns its own CascadeCounters (forked before any request), so after
        cascaded traffic the fleet's /metrics responses must carry live
        per-worker oracle-spend counters -- and at least one worker must
        report the spend it actually served."""
        from repro.cascade import CascadePlan
        from repro.service import MatchOptions

        source, target = pool.names[0], pool.names[1]
        options = MatchOptions(cascade=CascadePlan(band=0.4, budget=6))
        for _ in range(6):
            served = pool.client.match(
                MatchRequest(source=source, target=target, options=options)
            )
            assert served.cascade is not None
            assert served.cascade.oracle_calls <= 6
        # The kernel load-balances connections across workers; sample the
        # fleet until a worker that served cascaded traffic answers.
        samples = [pool.client.metrics()["cascade"] for _ in range(8)]
        for counters in samples:
            assert counters["oracle_calls"] <= counters["escalated"]
            assert counters["escalated"] <= counters["ambiguous"]
            assert counters["requests"] >= 0
        assert any(counters["requests"] >= 1 for counters in samples), (
            "no sampled worker reported cascade spend"
        )
        assert pool.stop() == 0

    def test_sigint_also_drains_cleanly(self, pool):
        pool.client.health()
        assert pool.stop(signal.SIGINT) == 0
        assert "stopped cleanly" in pool.output

    def test_killed_worker_takes_the_pool_down_with_status_1(self, pool):
        pool.client.health()
        victims = pool.worker_pids()
        assert len(victims) == 2
        os.kill(victims[0], signal.SIGKILL)
        # The parent reaps the corpse, SIGTERMs the survivor, and exits 1
        # on its own -- no signal from the test.
        remainder = pool.process.communicate(timeout=60)[0]
        assert pool.process.returncode == 1
        assert "worker failure" in pool.announce + remainder
        assert pool.worker_pids() == []


class TestServeWorkersCli:
    """Flag validation: every bad combination exits 2 before any fork."""

    def test_zero_workers_exits_2(self):
        with pytest.raises(SystemExit) as caught:
            main(["serve", "--workers", "0"])
        assert caught.value.code == 2

    def test_workers_without_db_exits_2(self):
        with pytest.raises(SystemExit) as caught:
            main(["serve", "--workers", "2"])
        assert caught.value.code == 2

    def test_workers_with_legacy_backend_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as caught:
            main([
                "serve", "--workers", "2",
                "--db", str(tmp_path / "a.db"),
                "--backend", "sqlite",
            ])
        assert caught.value.code == 2

    def test_pooled_backend_without_db_exits_2(self):
        with pytest.raises(SystemExit) as caught:
            main(["serve", "--backend", "pooled"])
        assert caught.value.code == 2

    def test_zero_pool_size_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as caught:
            main([
                "serve", "--db", str(tmp_path / "a.db"), "--pool-size", "0"
            ])
        assert caught.value.code == 2

    def test_unopenable_db_exits_2_before_forking(self, tmp_path):
        with pytest.raises(SystemExit) as caught:
            main(["serve", "--workers", "2", "--db", str(tmp_path)])
        assert caught.value.code == 2


class TestServeProcessPoolApi:
    def test_rejects_non_positive_worker_counts(self, tmp_path):
        with pytest.raises(ValueError, match="n_workers"):
            serve_process_pool(str(tmp_path / "a.db"), 0)
