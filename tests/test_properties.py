"""Cross-cutting property-based tests (hypothesis) on core invariants.

Each class targets one law the system depends on: allocation conservation,
vocabulary partition totality, naming non-emptiness, engine determinism,
confidence monotonicity, and serialization round-trips over *generated*
schemata (not just the handwritten fixtures).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.match import HarmonyMatchEngine, MatchMatrix
from repro.nway import build_vocabulary, partition_vocabulary
from repro.schema import Schema, schema_from_dict, schema_to_dict
from repro.synthetic import NamingStyle, PairSpec, allocate, generate_pair, render_name
from repro.voting import confidence


class TestAllocateProperties:
    @given(
        st.integers(min_value=0, max_value=200),
        st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=12),
    )
    def test_conservation_and_caps(self, total, capacities):
        if sum(capacities) < total:
            with pytest.raises(ValueError):
                allocate(total, capacities)
            return
        shares = allocate(total, capacities)
        assert sum(shares) == total
        assert all(0 <= share <= cap for share, cap in zip(shares, capacities))

    @given(
        st.integers(min_value=0, max_value=100),
        st.lists(st.integers(min_value=5, max_value=40), min_size=1, max_size=10),
    )
    def test_evenness(self, total, capacities):
        """Uncapped buckets end within one unit of each other."""
        if sum(capacities) < total:
            return
        shares = allocate(total, capacities)
        open_shares = [
            share for share, cap in zip(shares, capacities) if share < cap
        ]
        if len(open_shares) > 1:
            assert max(open_shares) - min(open_shares) <= max(
                1, total // len(capacities)
            )

    @given(st.integers(min_value=0, max_value=50))
    def test_deterministic(self, total):
        capacities = [10, 20, 30]
        if total <= 60:
            assert allocate(total, capacities) == allocate(total, capacities)


class TestNamingProperties:
    styles = st.builds(
        NamingStyle,
        case=st.sampled_from(("upper_snake", "lower_snake", "pascal", "camel")),
        synonym_probability=st.floats(0, 1),
        abbreviate_probability=st.floats(0, 1),
        drop_probability=st.floats(0, 1),
        filler_probability=st.floats(0, 1),
        numeric_suffix_probability=st.floats(0, 1),
    )

    @given(
        st.lists(
            st.sampled_from(["date", "begin", "event", "person", "quantity"]),
            min_size=1,
            max_size=4,
        ).map(tuple),
        styles,
        st.integers(min_value=0, max_value=10_000),
    )
    def test_never_empty_and_deterministic(self, tokens, style, seed):
        first = render_name(tokens, style, random.Random(seed))
        second = render_name(tokens, style, random.Random(seed))
        assert first
        assert first == second

    @given(st.integers(min_value=0, max_value=1000))
    def test_clean_style_is_identity_modulo_case(self, seed):
        name = render_name(
            ("date", "begin"), NamingStyle.clean(), random.Random(seed)
        )
        assert name == "date_begin"


class TestVocabularyPartitionLaws:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 4), st.integers(0, 3), st.integers(0, 4)),
            max_size=25,
        )
    )
    @settings(max_examples=40)
    def test_partition_laws_hold_for_any_match_set(self, raw_matches):
        schemata = {}
        for index in range(4):
            schema = Schema(f"S{index}")
            root = schema.add_root("root")
            for child in range(5):
                schema.add_child(root, f"e{child}")
            schemata[f"S{index}"] = schema
        matched = []
        for left_schema, left_el, right_schema, right_el in raw_matches:
            if left_schema == right_schema:
                continue
            matched.append(
                (
                    f"S{left_schema}",
                    f"root.e{left_el}" if left_el < 5 else "root",
                    f"S{right_schema}",
                    f"root.e{right_el}" if right_el < 5 else "root",
                )
            )
        vocabulary = build_vocabulary(schemata, matched)
        partition = partition_vocabulary(vocabulary)  # law-checks internally
        assert partition.n_cells == 15
        total_elements = sum(len(schema) for schema in schemata.values())
        assert sum(cell.n_elements for cell in partition.cells) == total_elements


class TestConfidenceMonotonicity:
    @given(
        st.floats(min_value=0.51, max_value=1.0),
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.1, max_value=50.0),
    )
    def test_positive_votes_grow_with_evidence(self, similarity, evidence, extra):
        assert confidence(similarity, evidence + extra) >= confidence(
            similarity, evidence
        )

    @given(
        st.floats(min_value=0.0, max_value=0.49),
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.1, max_value=50.0),
    )
    def test_negative_votes_fall_with_evidence(self, similarity, evidence, extra):
        assert confidence(similarity, evidence + extra) <= confidence(
            similarity, evidence
        )

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=20.0),
    )
    def test_monotone_in_similarity(self, sim_a, sim_b, evidence):
        low, high = sorted((sim_a, sim_b))
        assert confidence(high, evidence) >= confidence(low, evidence)


class TestEngineDeterminism:
    def test_same_input_same_matrix(self, sample_relational, sample_xml):
        first = HarmonyMatchEngine().match(sample_relational, sample_xml)
        second = HarmonyMatchEngine().match(sample_relational, sample_xml)
        np.testing.assert_array_equal(first.matrix.scores, second.matrix.scores)

    def test_generation_and_match_deterministic_end_to_end(self):
        spec = PairSpec(
            n_source_concepts=8,
            n_target_concepts=6,
            n_shared_concepts=3,
            source_elements=70,
            target_elements=50,
            matched_target_elements=18,
        )
        runs = []
        for _ in range(2):
            pair = generate_pair(spec, seed=99)
            result = HarmonyMatchEngine().match(
                pair.source.schema, pair.target.schema
            )
            runs.append(result.matrix.scores)
        np.testing.assert_array_equal(runs[0], runs[1])


class TestSerializationRoundTripGenerated:
    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_round_trip_any_generated_schema(self, seed):
        pair = generate_pair(
            PairSpec(
                n_source_concepts=5,
                n_target_concepts=4,
                n_shared_concepts=2,
                source_elements=40,
                target_elements=30,
                matched_target_elements=10,
            ),
            seed=seed,
        )
        for generated in (pair.source, pair.target):
            rebuilt = schema_from_dict(schema_to_dict(generated.schema))
            assert [e.element_id for e in rebuilt] == [
                e.element_id for e in generated.schema
            ]
            assert [e.name for e in rebuilt] == [
                e.name for e in generated.schema
            ]
            rebuilt.validate()


class TestMatrixInvariants:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30)
    def test_top_pairs_agree_with_pairs_above(self, rows, cols, seed):
        rng = random.Random(seed)
        scores = np.array(
            [[rng.uniform(-1, 1) for _ in range(cols)] for _ in range(rows)]
        )
        matrix = MatchMatrix(
            [f"a{i}" for i in range(rows)],
            [f"b{j}" for j in range(cols)],
            scores,
        )
        everything = matrix.pairs_above(-1.0)
        top = matrix.top_pairs(rows * cols)
        assert [(p.source_id, p.target_id) for p in everything[: len(top)]] == [
            (p.source_id, p.target_id) for p in top
        ] or sorted(p.score for p in everything) == sorted(p.score for p in top)
        assert len(top) == rows * cols
