"""Metadata repository: every backend, provenance, trust, reuse."""

import pytest

from repro.match import Correspondence, MatchStatus
from repro.repository import (
    AssertionMethod,
    MetadataRepository,
    ProvenanceRecord,
    TrustPolicy,
    compose_matches,
    reuse_candidates,
)
from repro.schema import Schema


def small_schema(name, elements):
    schema = Schema(name)
    root = schema.add_root(name.upper())
    for element in elements:
        schema.add_child(root, element)
    return schema


@pytest.fixture(params=["memory", "sqlite", "pooled"])
def repository(request, tmp_path):
    if request.param == "memory":
        repo = MetadataRepository()
    else:
        repo = MetadataRepository(
            path=str(tmp_path / "repo.db"), backend=request.param
        )
    yield repo
    repo.close()


class TestSchemaStorage:
    def test_register_and_fetch(self, repository, sample_relational):
        repository.register(sample_relational)
        rebuilt = repository.schema("SA_sample")
        assert len(rebuilt) == len(sample_relational)
        assert "SA_sample" in repository
        assert len(repository) == 1

    def test_fetch_unknown(self, repository):
        with pytest.raises(KeyError):
            repository.schema("missing")

    def test_register_under_alias(self, repository, sample_relational):
        repository.register(sample_relational, name="alias")
        assert "alias" in repository

    def test_unregister_cascades_matches(self, repository):
        a = small_schema("a", ["x"])
        b = small_schema("b", ["y"])
        repository.register(a)
        repository.register(b)
        repository.store_match(
            "a", "b", Correspondence("a.x", "b.y", 0.9), asserted_by="alice"
        )
        repository.unregister("a")
        assert "a" not in repository
        assert repository.matches() == []


class TestMatchKnowledge:
    def test_store_requires_registered_schemas(self, repository):
        with pytest.raises(KeyError):
            repository.store_match(
                "a", "b", Correspondence("x", "y", 0.5), asserted_by="alice"
            )

    def test_sequence_is_logical_time(self, repository):
        a, b = small_schema("a", ["x"]), small_schema("b", ["y"])
        repository.register(a)
        repository.register(b)
        first = repository.store_match(
            "a", "b", Correspondence("a.x", "b.y", 0.5), asserted_by="alice"
        )
        second = repository.store_match(
            "a", "b", Correspondence("a.x", "b.y", 0.6), asserted_by="bob"
        )
        assert second.provenance.sequence == first.provenance.sequence + 1

    def test_query_by_schemas(self, repository):
        a, b, c = (small_schema(n, ["x"]) for n in "abc")
        for schema in (a, b, c):
            repository.register(schema)
        repository.store_match(
            "a", "b", Correspondence("a.x", "b.x", 0.5), asserted_by="alice"
        )
        repository.store_match(
            "a", "c", Correspondence("a.x", "c.x", 0.5), asserted_by="alice"
        )
        assert len(repository.matches(source_schema="a")) == 2
        assert len(repository.matches(target_schema="c")) == 1
        assert len(repository.matches_touching("b")) == 1

    def test_bulk_store(self, repository):
        a, b = small_schema("a", ["x", "y"]), small_schema("b", ["x", "y"])
        repository.register(a)
        repository.register(b)
        count = repository.store_matches(
            "a",
            "b",
            [Correspondence("a.x", "b.x", 0.7), Correspondence("a.y", "b.y", 0.6)],
            asserted_by="engine",
        )
        assert count == 2
        assert len(repository.matches()) == 2

    def test_round_trip_preserves_correspondence_fields(self, repository):
        a, b = small_schema("a", ["x"]), small_schema("b", ["y"])
        repository.register(a)
        repository.register(b)
        original = Correspondence(
            "a.x", "b.y", 0.42, status=MatchStatus.ACCEPTED, note="checked"
        )
        repository.store_match(
            "a", "b", original, asserted_by="alice",
            method=AssertionMethod.HUMAN_VALIDATED, context="planning",
        )
        stored = repository.matches()[0]
        assert stored.correspondence.score == pytest.approx(0.42)
        assert stored.correspondence.status is MatchStatus.ACCEPTED
        assert stored.provenance.method is AssertionMethod.HUMAN_VALIDATED
        assert stored.provenance.context == "planning"


class TestTrustPolicies:
    def test_confidence_gate(self):
        record = ProvenanceRecord(
            asserted_by="engine", method=AssertionMethod.AUTOMATIC, confidence=0.3
        )
        assert TrustPolicy(min_confidence=0.2).trusts(record)
        assert not TrustPolicy(min_confidence=0.5).trusts(record)

    def test_bi_policy_requires_human(self):
        automatic = ProvenanceRecord(
            asserted_by="engine", method=AssertionMethod.AUTOMATIC, confidence=0.9
        )
        human = ProvenanceRecord(
            asserted_by="alice", method=AssertionMethod.HUMAN_VALIDATED, confidence=0.9
        )
        policy = TrustPolicy.for_business_intelligence()
        assert not policy.trusts(automatic)
        assert policy.trusts(human)

    def test_search_policy_permissive(self):
        weak = ProvenanceRecord(
            asserted_by="engine", method=AssertionMethod.AUTOMATIC, confidence=0.15
        )
        assert TrustPolicy.for_search().trusts(weak)

    def test_asserter_whitelist(self):
        record = ProvenanceRecord(
            asserted_by="mallory", method=AssertionMethod.HUMAN_VALIDATED, confidence=0.9
        )
        assert not TrustPolicy(trusted_asserters=frozenset({"alice"})).trusts(record)

    def test_composed_exclusion(self):
        composed = ProvenanceRecord(
            asserted_by="composer", method=AssertionMethod.COMPOSED, confidence=0.9
        )
        assert not TrustPolicy(allow_composed=False).trusts(composed)

    def test_policy_filter_in_query(self, repository):
        a, b = small_schema("a", ["x"]), small_schema("b", ["y"])
        repository.register(a)
        repository.register(b)
        repository.store_match(
            "a", "b", Correspondence("a.x", "b.y", 0.1), asserted_by="engine"
        )
        repository.store_match(
            "a", "b", Correspondence("a.x", "b.y", 0.9), asserted_by="alice",
            method=AssertionMethod.HUMAN_VALIDATED,
        )
        trusted = repository.matches(policy=TrustPolicy.for_business_intelligence())
        assert len(trusted) == 1
        assert trusted[0].provenance.asserted_by == "alice"

    def test_provenance_validation(self):
        with pytest.raises(ValueError):
            ProvenanceRecord(asserted_by="", method=AssertionMethod.AUTOMATIC, confidence=0.5)
        with pytest.raises(ValueError):
            ProvenanceRecord(asserted_by="a", method=AssertionMethod.AUTOMATIC, confidence=2.0)


class TestReuse:
    def _pivot_setup(self, repository):
        a = small_schema("a", ["x"])
        b = small_schema("b", ["x"])
        c = small_schema("c", ["x"])
        for schema in (a, b, c):
            repository.register(schema)
        repository.store_match(
            "a", "b", Correspondence("a.x", "b.x", 0.8), asserted_by="alice"
        )
        repository.store_match(
            "b", "c", Correspondence("b.x", "c.x", 0.6), asserted_by="alice"
        )

    def test_composition_via_pivot(self, repository):
        self._pivot_setup(repository)
        composed = compose_matches(repository, "a", "c")
        assert len(composed) == 1
        assert composed[0].pair == ("a.x", "c.x")
        assert composed[0].score == pytest.approx(0.6)  # min of the legs

    def test_composition_direction_flips(self, repository):
        self._pivot_setup(repository)
        composed = compose_matches(repository, "c", "a")
        assert composed[0].pair == ("c.x", "a.x")

    def test_rejected_legs_ignored(self, repository):
        a = small_schema("a", ["x"])
        b = small_schema("b", ["x"])
        c = small_schema("c", ["x"])
        for schema in (a, b, c):
            repository.register(schema)
        repository.store_match(
            "a", "b",
            Correspondence("a.x", "b.x", 0.8, status=MatchStatus.REJECTED),
            asserted_by="alice",
        )
        repository.store_match(
            "b", "c", Correspondence("b.x", "c.x", 0.6), asserted_by="alice"
        )
        assert compose_matches(repository, "a", "c") == []

    def test_reuse_candidates_can_store(self, repository):
        self._pivot_setup(repository)
        candidates = reuse_candidates(repository, "a", "c", store=True)
        assert len(candidates) == 1
        stored = repository.matches(source_schema="a", target_schema="c")
        assert stored[0].provenance.method is AssertionMethod.COMPOSED


class TestMatchGeneration:
    def test_bumps_on_every_match_mutation(self, repository):
        a, b = small_schema("a", ["x"]), small_schema("b", ["y"])
        repository.register(a)
        repository.register(b)
        before = repository.match_generation
        repository.store_match(
            "a", "b", Correspondence("a.x", "b.y", 0.5), asserted_by="alice"
        )
        after_single = repository.match_generation
        assert after_single > before
        repository.store_matches(
            "a", "b", [Correspondence("a.x", "b.y", 0.6)], asserted_by="bob"
        )
        after_bulk = repository.match_generation
        assert after_bulk > after_single
        repository.unregister("b")  # the cascade deletes matches
        assert repository.match_generation > after_bulk

    def test_empty_bulk_store_does_not_bump(self, repository):
        a, b = small_schema("a", ["x"]), small_schema("b", ["y"])
        repository.register(a)
        repository.register(b)
        before = repository.match_generation
        assert repository.store_matches("a", "b", [], asserted_by="alice") == 0
        assert repository.match_generation == before

    def test_schema_registration_does_not_bump(self, repository):
        before = repository.match_generation
        repository.register(small_schema("a", ["x"]))
        assert repository.match_generation == before


class TestMatchesBetween:
    def test_both_orientations(self, repository):
        a, b, c = (small_schema(n, ["x"]) for n in "abc")
        for schema in (a, b, c):
            repository.register(schema)
        repository.store_match(
            "a", "b", Correspondence("a.x", "b.x", 0.5), asserted_by="alice"
        )
        repository.store_match(
            "b", "a", Correspondence("b.x", "a.x", 0.6), asserted_by="alice"
        )
        repository.store_match(
            "a", "c", Correspondence("a.x", "c.x", 0.7), asserted_by="alice"
        )
        between = repository.matches_between("a", "b")
        assert len(between) == 2
        assert {m.source_schema for m in between} == {"a", "b"}
        assert repository.matches_between("b", "c") == []
        # Agrees with the Python-side filter over the full pool.
        pool = repository.matches()
        assert between == [
            m
            for m in pool
            if {m.source_schema, m.target_schema} == {"a", "b"}
        ]


class TestSqliteMigrationIdempotency:
    """Era'd stores must migrate in place, twice, without data loss.

    ``pr1``: before the correspondence asserter was persisted separately
    (no ``corr_asserted_by`` column) and before corpus fingerprints.
    ``pr2``: the asserter column exists; fingerprint tables do not.
    ``pr3``: fingerprints exist; the mapping-network-era pair indexes
    do not.
    """

    _BASE_MATCHES = (
        "CREATE TABLE matches ("
        " id INTEGER PRIMARY KEY AUTOINCREMENT,"
        " source_schema TEXT NOT NULL, target_schema TEXT NOT NULL,"
        " source_element TEXT NOT NULL, target_element TEXT NOT NULL,"
        " score REAL NOT NULL, status TEXT NOT NULL,"
        " annotation TEXT NOT NULL, note TEXT NOT NULL,"
        "{corr_asserted_by}"
        " asserted_by TEXT NOT NULL, method TEXT NOT NULL,"
        " confidence REAL NOT NULL, sequence INTEGER NOT NULL,"
        " context TEXT NOT NULL, prov_note TEXT NOT NULL)"
    )

    def _seed_era_db(self, path, era):
        import sqlite3

        from repro.schema import schema_to_dict

        connection = sqlite3.connect(path)
        connection.execute(
            "CREATE TABLE schemata (name TEXT PRIMARY KEY, payload TEXT NOT NULL)"
        )
        has_corr_column = era != "pr1"
        connection.execute(
            self._BASE_MATCHES.format(
                corr_asserted_by=(
                    " corr_asserted_by TEXT NOT NULL DEFAULT ''," if has_corr_column else ""
                )
            )
        )
        import json

        for name in ("a", "b"):
            connection.execute(
                "INSERT INTO schemata (name, payload) VALUES (?, ?)",
                (name, json.dumps(schema_to_dict(small_schema(name, ["x"])))),
            )
        row = ("a", "b", "a.x", "b.x", 0.8, "candidate", "equivalent", "")
        tail = ("alice", "automatic", 0.8, 1, "general", "")
        if has_corr_column:
            connection.execute(
                "INSERT INTO matches (source_schema, target_schema, source_element,"
                " target_element, score, status, annotation, note, corr_asserted_by,"
                " asserted_by, method, confidence, sequence, context, prov_note)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                row + ("alice",) + tail,
            )
        else:
            connection.execute(
                "INSERT INTO matches (source_schema, target_schema, source_element,"
                " target_element, score, status, annotation, note,"
                " asserted_by, method, confidence, sequence, context, prov_note)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                row + tail,
            )
        if era == "pr3":
            connection.execute(
                "CREATE TABLE corpus_fingerprints ("
                " name TEXT PRIMARY KEY, payload TEXT NOT NULL)"
            )
            connection.execute(
                "INSERT INTO corpus_fingerprints (name, payload) VALUES (?, ?)",
                ("a", json.dumps({"format_version": 1, "hash": "h", "terms": {}})),
            )
        connection.commit()
        connection.close()

    @pytest.mark.parametrize("era", ["pr1", "pr2", "pr3"])
    def test_open_twice_migrates_without_data_loss(self, tmp_path, era):
        import sqlite3

        path = str(tmp_path / f"{era}.db")
        self._seed_era_db(path, era)
        for round_trip in range(2):
            with MetadataRepository(path=path) as repository:
                assert repository.schema_names() == ["a", "b"]
                assert len(repository.schema("a")) == 2
                matches = repository.matches()
                assert len(matches) == 1 + round_trip
                assert matches[0].correspondence.pair == ("a.x", "b.x")
                assert matches[0].correspondence.asserted_by == "alice"
                assert matches[0].provenance.sequence == 1
                if era == "pr3":
                    assert repository.get_fingerprint("a") is not None
                # The store stays writable after migration; the sequence
                # counter continues from the persisted maximum.
                stored = repository.store_match(
                    "a", "b",
                    Correspondence("a.x", "b.x", 0.5 + round_trip / 10),
                    asserted_by="bob",
                )
                assert stored.provenance.sequence == 2 + round_trip
        connection = sqlite3.connect(path)
        names = {
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type IN ('table', 'index')"
            )
        }
        connection.close()
        assert "corpus_fingerprints" in names
        assert "idx_matches_schema_pair" in names
        assert "idx_matches_target_schema" in names


class TestSqlitePersistence:
    def test_survives_reopen(self, tmp_path, sample_relational):
        path = str(tmp_path / "persistent.db")
        with MetadataRepository(path=path) as repo:
            repo.register(sample_relational)
            repo.register(small_schema("other", ["x"]))
            repo.store_match(
                "SA_sample", "other",
                Correspondence("person_master", "other.x", 0.5),
                asserted_by="alice",
            )
        with MetadataRepository(path=path) as reopened:
            assert len(reopened) == 2
            assert len(reopened.matches()) == 1
            # Sequence counter continues after the stored maximum.
            stored = reopened.store_match(
                "SA_sample", "other",
                Correspondence("person_master", "other.x", 0.6),
                asserted_by="bob",
            )
            assert stored.provenance.sequence == 2


class TestServiceResponsePersistence:
    """A persisted MatchResponse round-trips identically through both backends."""

    def _persist_through(self, path, sample_relational, sample_xml):
        from repro.schema import schema_to_dict
        from repro.service import MatchOptions, MatchService

        repository = MetadataRepository(path=path)
        service = MatchService(repository=repository)
        response = service.match_pair(
            sample_relational, sample_xml, options=MatchOptions(threshold=0.05)
        )
        stored_count = service.persist(response)
        schemata = {
            name: schema_to_dict(repository.schema(name))
            for name in repository.schema_names()
        }
        return response, stored_count, schemata, repository

    def test_sqlite_round_trip_equals_memory(
        self, tmp_path, sample_relational, sample_xml
    ):
        memory_response, memory_count, memory_schemata, memory_repo = (
            self._persist_through(None, sample_relational, sample_xml)
        )
        path = str(tmp_path / "knowledge.db")
        sqlite_response, sqlite_count, sqlite_schemata, sqlite_repo = (
            self._persist_through(path, sample_relational, sample_xml)
        )
        assert memory_count == sqlite_count > 0
        # The response envelopes are identical up to wall time (matching is
        # deterministic; elapsed_seconds is the one measured field) ...
        from dataclasses import replace

        assert replace(memory_response, elapsed_seconds=0.0) == replace(
            sqlite_response, elapsed_seconds=0.0
        )
        # ... the serialised schemata are byte-identical across backends ...
        assert memory_schemata == sqlite_schemata
        # ... and every stored match (correspondence + provenance) agrees.
        assert memory_repo.matches() == sqlite_repo.matches()
        sqlite_repo.close()

        # Reopening the SQLite store reconstructs the same knowledge.
        with MetadataRepository(path=path) as reopened:
            assert reopened.matches() == memory_repo.matches()
            assert {
                name: len(reopened.schema(name)) for name in reopened.schema_names()
            } == {name: len(sample_relational) if name == "SA_sample" else len(sample_xml) for name in memory_repo.schema_names()}
        memory_repo.close()
