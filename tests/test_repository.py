"""Metadata repository: both backends, provenance, trust, reuse."""

import pytest

from repro.match import Correspondence, MatchStatus
from repro.repository import (
    AssertionMethod,
    MetadataRepository,
    ProvenanceRecord,
    TrustPolicy,
    compose_matches,
    reuse_candidates,
)
from repro.schema import Schema


def small_schema(name, elements):
    schema = Schema(name)
    root = schema.add_root(name.upper())
    for element in elements:
        schema.add_child(root, element)
    return schema


@pytest.fixture(params=["memory", "sqlite"])
def repository(request, tmp_path):
    if request.param == "memory":
        repo = MetadataRepository()
    else:
        repo = MetadataRepository(path=str(tmp_path / "repo.db"))
    yield repo
    repo.close()


class TestSchemaStorage:
    def test_register_and_fetch(self, repository, sample_relational):
        repository.register(sample_relational)
        rebuilt = repository.schema("SA_sample")
        assert len(rebuilt) == len(sample_relational)
        assert "SA_sample" in repository
        assert len(repository) == 1

    def test_fetch_unknown(self, repository):
        with pytest.raises(KeyError):
            repository.schema("missing")

    def test_register_under_alias(self, repository, sample_relational):
        repository.register(sample_relational, name="alias")
        assert "alias" in repository

    def test_unregister_cascades_matches(self, repository):
        a = small_schema("a", ["x"])
        b = small_schema("b", ["y"])
        repository.register(a)
        repository.register(b)
        repository.store_match(
            "a", "b", Correspondence("a.x", "b.y", 0.9), asserted_by="alice"
        )
        repository.unregister("a")
        assert "a" not in repository
        assert repository.matches() == []


class TestMatchKnowledge:
    def test_store_requires_registered_schemas(self, repository):
        with pytest.raises(KeyError):
            repository.store_match(
                "a", "b", Correspondence("x", "y", 0.5), asserted_by="alice"
            )

    def test_sequence_is_logical_time(self, repository):
        a, b = small_schema("a", ["x"]), small_schema("b", ["y"])
        repository.register(a)
        repository.register(b)
        first = repository.store_match(
            "a", "b", Correspondence("a.x", "b.y", 0.5), asserted_by="alice"
        )
        second = repository.store_match(
            "a", "b", Correspondence("a.x", "b.y", 0.6), asserted_by="bob"
        )
        assert second.provenance.sequence == first.provenance.sequence + 1

    def test_query_by_schemas(self, repository):
        a, b, c = (small_schema(n, ["x"]) for n in "abc")
        for schema in (a, b, c):
            repository.register(schema)
        repository.store_match(
            "a", "b", Correspondence("a.x", "b.x", 0.5), asserted_by="alice"
        )
        repository.store_match(
            "a", "c", Correspondence("a.x", "c.x", 0.5), asserted_by="alice"
        )
        assert len(repository.matches(source_schema="a")) == 2
        assert len(repository.matches(target_schema="c")) == 1
        assert len(repository.matches_touching("b")) == 1

    def test_bulk_store(self, repository):
        a, b = small_schema("a", ["x", "y"]), small_schema("b", ["x", "y"])
        repository.register(a)
        repository.register(b)
        count = repository.store_matches(
            "a",
            "b",
            [Correspondence("a.x", "b.x", 0.7), Correspondence("a.y", "b.y", 0.6)],
            asserted_by="engine",
        )
        assert count == 2
        assert len(repository.matches()) == 2

    def test_round_trip_preserves_correspondence_fields(self, repository):
        a, b = small_schema("a", ["x"]), small_schema("b", ["y"])
        repository.register(a)
        repository.register(b)
        original = Correspondence(
            "a.x", "b.y", 0.42, status=MatchStatus.ACCEPTED, note="checked"
        )
        repository.store_match(
            "a", "b", original, asserted_by="alice",
            method=AssertionMethod.HUMAN_VALIDATED, context="planning",
        )
        stored = repository.matches()[0]
        assert stored.correspondence.score == pytest.approx(0.42)
        assert stored.correspondence.status is MatchStatus.ACCEPTED
        assert stored.provenance.method is AssertionMethod.HUMAN_VALIDATED
        assert stored.provenance.context == "planning"


class TestTrustPolicies:
    def test_confidence_gate(self):
        record = ProvenanceRecord(
            asserted_by="engine", method=AssertionMethod.AUTOMATIC, confidence=0.3
        )
        assert TrustPolicy(min_confidence=0.2).trusts(record)
        assert not TrustPolicy(min_confidence=0.5).trusts(record)

    def test_bi_policy_requires_human(self):
        automatic = ProvenanceRecord(
            asserted_by="engine", method=AssertionMethod.AUTOMATIC, confidence=0.9
        )
        human = ProvenanceRecord(
            asserted_by="alice", method=AssertionMethod.HUMAN_VALIDATED, confidence=0.9
        )
        policy = TrustPolicy.for_business_intelligence()
        assert not policy.trusts(automatic)
        assert policy.trusts(human)

    def test_search_policy_permissive(self):
        weak = ProvenanceRecord(
            asserted_by="engine", method=AssertionMethod.AUTOMATIC, confidence=0.15
        )
        assert TrustPolicy.for_search().trusts(weak)

    def test_asserter_whitelist(self):
        record = ProvenanceRecord(
            asserted_by="mallory", method=AssertionMethod.HUMAN_VALIDATED, confidence=0.9
        )
        assert not TrustPolicy(trusted_asserters=frozenset({"alice"})).trusts(record)

    def test_composed_exclusion(self):
        composed = ProvenanceRecord(
            asserted_by="composer", method=AssertionMethod.COMPOSED, confidence=0.9
        )
        assert not TrustPolicy(allow_composed=False).trusts(composed)

    def test_policy_filter_in_query(self, repository):
        a, b = small_schema("a", ["x"]), small_schema("b", ["y"])
        repository.register(a)
        repository.register(b)
        repository.store_match(
            "a", "b", Correspondence("a.x", "b.y", 0.1), asserted_by="engine"
        )
        repository.store_match(
            "a", "b", Correspondence("a.x", "b.y", 0.9), asserted_by="alice",
            method=AssertionMethod.HUMAN_VALIDATED,
        )
        trusted = repository.matches(policy=TrustPolicy.for_business_intelligence())
        assert len(trusted) == 1
        assert trusted[0].provenance.asserted_by == "alice"

    def test_provenance_validation(self):
        with pytest.raises(ValueError):
            ProvenanceRecord(asserted_by="", method=AssertionMethod.AUTOMATIC, confidence=0.5)
        with pytest.raises(ValueError):
            ProvenanceRecord(asserted_by="a", method=AssertionMethod.AUTOMATIC, confidence=2.0)


class TestReuse:
    def _pivot_setup(self, repository):
        a = small_schema("a", ["x"])
        b = small_schema("b", ["x"])
        c = small_schema("c", ["x"])
        for schema in (a, b, c):
            repository.register(schema)
        repository.store_match(
            "a", "b", Correspondence("a.x", "b.x", 0.8), asserted_by="alice"
        )
        repository.store_match(
            "b", "c", Correspondence("b.x", "c.x", 0.6), asserted_by="alice"
        )

    def test_composition_via_pivot(self, repository):
        self._pivot_setup(repository)
        composed = compose_matches(repository, "a", "c")
        assert len(composed) == 1
        assert composed[0].pair == ("a.x", "c.x")
        assert composed[0].score == pytest.approx(0.6)  # min of the legs

    def test_composition_direction_flips(self, repository):
        self._pivot_setup(repository)
        composed = compose_matches(repository, "c", "a")
        assert composed[0].pair == ("c.x", "a.x")

    def test_rejected_legs_ignored(self, repository):
        a = small_schema("a", ["x"])
        b = small_schema("b", ["x"])
        c = small_schema("c", ["x"])
        for schema in (a, b, c):
            repository.register(schema)
        repository.store_match(
            "a", "b",
            Correspondence("a.x", "b.x", 0.8, status=MatchStatus.REJECTED),
            asserted_by="alice",
        )
        repository.store_match(
            "b", "c", Correspondence("b.x", "c.x", 0.6), asserted_by="alice"
        )
        assert compose_matches(repository, "a", "c") == []

    def test_reuse_candidates_can_store(self, repository):
        self._pivot_setup(repository)
        candidates = reuse_candidates(repository, "a", "c", store=True)
        assert len(candidates) == 1
        stored = repository.matches(source_schema="a", target_schema="c")
        assert stored[0].provenance.method is AssertionMethod.COMPOSED


class TestSqlitePersistence:
    def test_survives_reopen(self, tmp_path, sample_relational):
        path = str(tmp_path / "persistent.db")
        with MetadataRepository(path=path) as repo:
            repo.register(sample_relational)
            repo.register(small_schema("other", ["x"]))
            repo.store_match(
                "SA_sample", "other",
                Correspondence("person_master", "other.x", 0.5),
                asserted_by="alice",
            )
        with MetadataRepository(path=path) as reopened:
            assert len(reopened) == 2
            assert len(reopened.matches()) == 1
            # Sequence counter continues after the stored maximum.
            stored = reopened.store_match(
                "SA_sample", "other",
                Correspondence("person_master", "other.x", 0.6),
                asserted_by="bob",
            )
            assert stored.provenance.sequence == 2


class TestServiceResponsePersistence:
    """A persisted MatchResponse round-trips identically through both backends."""

    def _persist_through(self, path, sample_relational, sample_xml):
        from repro.schema import schema_to_dict
        from repro.service import MatchOptions, MatchService

        repository = MetadataRepository(path=path)
        service = MatchService(repository=repository)
        response = service.match_pair(
            sample_relational, sample_xml, options=MatchOptions(threshold=0.05)
        )
        stored_count = service.persist(response)
        schemata = {
            name: schema_to_dict(repository.schema(name))
            for name in repository.schema_names()
        }
        return response, stored_count, schemata, repository

    def test_sqlite_round_trip_equals_memory(
        self, tmp_path, sample_relational, sample_xml
    ):
        memory_response, memory_count, memory_schemata, memory_repo = (
            self._persist_through(None, sample_relational, sample_xml)
        )
        path = str(tmp_path / "knowledge.db")
        sqlite_response, sqlite_count, sqlite_schemata, sqlite_repo = (
            self._persist_through(path, sample_relational, sample_xml)
        )
        assert memory_count == sqlite_count > 0
        # The response envelopes are identical up to wall time (matching is
        # deterministic; elapsed_seconds is the one measured field) ...
        from dataclasses import replace

        assert replace(memory_response, elapsed_seconds=0.0) == replace(
            sqlite_response, elapsed_seconds=0.0
        )
        # ... the serialised schemata are byte-identical across backends ...
        assert memory_schemata == sqlite_schemata
        # ... and every stored match (correspondence + provenance) agrees.
        assert memory_repo.matches() == sqlite_repo.matches()
        sqlite_repo.close()

        # Reopening the SQLite store reconstructs the same knowledge.
        with MetadataRepository(path=path) as reopened:
            assert reopened.matches() == memory_repo.matches()
            assert {
                name: len(reopened.schema(name)) for name in reopened.schema_names()
            } == {name: len(sample_relational) if name == "SA_sample" else len(sample_xml) for name in memory_repo.schema_names()}
        memory_repo.close()
