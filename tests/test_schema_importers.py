"""DDL and XSD importers plus the JSON round-trip."""

import pytest

from repro.schema import (
    DataType,
    ElementKind,
    ParseError,
    parse_ddl,
    parse_xsd,
    schema_from_dict,
    schema_to_dict,
)
from repro.schema.datatypes import parse_sql_type, parse_xsd_type


class TestDdlImporter:
    def test_sample_structure(self, sample_relational):
        assert len(sample_relational) == 15  # 2 tables + 10 cols + view + 2 view cols
        assert len(sample_relational.roots()) == 3

    def test_column_types(self, sample_relational):
        event_id = sample_relational.element("all_event_vitals.event_id")
        assert event_id.data_type is DataType.DECIMAL
        assert event_id.is_key
        assert not event_id.nullable

    def test_inline_comment_becomes_documentation(self, sample_relational):
        begin = sample_relational.element("all_event_vitals.date_begin_156")
        assert begin.documentation == "date the event began"

    def test_comment_on_table(self, sample_relational):
        table = sample_relational.element("all_event_vitals")
        assert "Vital facts" in table.documentation

    def test_comment_on_column_overrides(self, sample_relational):
        blood = sample_relational.element("person_master.blood_type_cd")
        assert blood.documentation == "ABO blood group of the person"

    def test_not_null_parsed(self, sample_relational):
        cd = sample_relational.element("all_event_vitals.event_type_cd")
        assert not cd.nullable

    def test_view_parsed(self, sample_relational):
        view = sample_relational.element("active_persons")
        assert view.kind is ElementKind.VIEW
        assert len(sample_relational.children(view)) == 2

    def test_table_level_primary_key_clause(self):
        schema = parse_ddl(
            "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a));"
        )
        assert schema.element("t.a").is_key
        assert not schema.element("t.b").is_key

    def test_unsupported_statement(self):
        with pytest.raises(ParseError):
            parse_ddl("DROP TABLE t;")

    def test_garbage_column(self):
        with pytest.raises(ParseError):
            parse_ddl("CREATE TABLE t (!!!);")

    def test_comment_on_unknown_table(self):
        with pytest.raises(ParseError):
            parse_ddl("COMMENT ON TABLE missing IS 'x';")

    def test_semicolons_inside_strings(self):
        schema = parse_ddl(
            "CREATE TABLE t (a INT);\nCOMMENT ON TABLE t IS 'a; b';"
        )
        assert schema.element("t").documentation == "a; b"

    def test_escaped_quote_in_comment(self):
        schema = parse_ddl(
            "CREATE TABLE t (a INT);\nCOMMENT ON TABLE t IS 'it''s here';"
        )
        assert schema.element("t").documentation == "it's here"

    def test_schema_qualified_table_name(self):
        schema = parse_ddl("CREATE TABLE ops.t (a INT);")
        assert "t" in schema

    def test_empty_input(self):
        assert len(parse_ddl("")) == 0


class TestXsdImporter:
    def test_sample_structure(self, sample_xml):
        names = [e.name for e in sample_xml]
        assert "Event" in names
        assert "Individual" in names
        assert "EventReport" in names

    def test_documentation_extracted(self, sample_xml):
        event = sample_xml.element("event")
        assert "operationally significant" in event.documentation

    def test_types_normalised(self, sample_xml):
        dob = sample_xml.element("individual.dateofbirth")
        assert dob.data_type is DataType.DATE

    def test_attribute_parsed(self, sample_xml):
        verified = sample_xml.element("event.verified")
        assert verified.kind is ElementKind.ATTRIBUTE
        assert verified.data_type is DataType.BOOLEAN
        assert verified.nullable

    def test_min_occurs_zero_nullable(self, sample_xml):
        category = sample_xml.element("event.category")
        assert category.nullable

    def test_type_reference_expanded(self, sample_xml):
        report_children = {e.name for e in sample_xml.children("eventreport")}
        assert "EventIdentifier" in report_children

    def test_recursive_type_does_not_loop(self):
        xsd = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:complexType name="Node">
            <xs:sequence><xs:element name="child" type="Node"/></xs:sequence>
          </xs:complexType>
        </xs:schema>"""
        schema = parse_xsd(xsd)
        assert len(schema) >= 2  # finite despite the recursion

    def test_malformed_xml(self):
        with pytest.raises(ParseError):
            parse_xsd("<not-closed")

    def test_wrong_root(self):
        with pytest.raises(ParseError):
            parse_xsd("<foo/>")

    def test_choice_content_model(self):
        xsd = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:complexType name="T">
            <xs:choice>
              <xs:element name="a" type="xs:string"/>
              <xs:element name="b" type="xs:int"/>
            </xs:choice>
          </xs:complexType>
        </xs:schema>"""
        schema = parse_xsd(xsd)
        assert {e.name for e in schema.children("t")} == {"a", "b"}


class TestTypeParsing:
    @pytest.mark.parametrize(
        "declared,expected",
        [
            ("VARCHAR2(30)", DataType.STRING),
            ("NUMBER(10,2)", DataType.DECIMAL),
            ("INT", DataType.INTEGER),
            ("TIMESTAMP", DataType.DATETIME),
            ("BLOB", DataType.BINARY),
            ("MYSTERY_TYPE", DataType.UNKNOWN),
        ],
    )
    def test_sql_types(self, declared, expected):
        assert parse_sql_type(declared) is expected

    @pytest.mark.parametrize(
        "declared,expected",
        [
            ("xs:string", DataType.STRING),
            ("xsd:dateTime", DataType.DATETIME),
            ("xs:ID", DataType.IDENTIFIER),
            ("tns:CustomType", DataType.UNKNOWN),
        ],
    )
    def test_xsd_types(self, declared, expected):
        assert parse_xsd_type(declared) is expected


class TestSerialization:
    def test_round_trip(self, sample_relational):
        payload = schema_to_dict(sample_relational)
        rebuilt = schema_from_dict(payload)
        assert len(rebuilt) == len(sample_relational)
        assert [e.element_id for e in rebuilt] == [
            e.element_id for e in sample_relational
        ]
        original = sample_relational.element("all_event_vitals.date_begin_156")
        copy = rebuilt.element("all_event_vitals.date_begin_156")
        assert copy.documentation == original.documentation
        assert copy.data_type is original.data_type

    def test_version_check(self, sample_relational):
        payload = schema_to_dict(sample_relational)
        payload["format_version"] = 99
        with pytest.raises(ParseError):
            schema_from_dict(payload)

    def test_file_round_trip(self, sample_xml, tmp_path):
        from repro.schema import dump_schema, load_schema

        path = str(tmp_path / "schema.json")
        dump_schema(sample_xml, path)
        rebuilt = load_schema(path)
        assert len(rebuilt) == len(sample_xml)
        assert rebuilt.kind == "xml"
