"""Schema container: construction, traversal, invariants."""

import pytest

from repro.schema import (
    DuplicateElementError,
    ElementKind,
    Schema,
    SchemaElement,
    SchemaError,
    UnknownElementError,
)


@pytest.fixture
def tree():
    schema = Schema("test", kind="relational")
    table = schema.add_root("PERSON", kind=ElementKind.TABLE)
    schema.add_child(table, "PERSON_ID", kind=ElementKind.COLUMN)
    name = schema.add_child(table, "NAME", kind=ElementKind.COLUMN)
    schema.add_child(name, "SUBFIELD")
    schema.add_root("VEHICLE", kind=ElementKind.TABLE)
    return schema


class TestConstruction:
    def test_len_and_iteration_order(self, tree):
        assert len(tree) == 5
        assert [e.name for e in tree] == [
            "PERSON", "PERSON_ID", "NAME", "SUBFIELD", "VEHICLE",
        ]

    def test_duplicate_id_rejected(self, tree):
        with pytest.raises(DuplicateElementError):
            tree.add(SchemaElement(element_id="person", name="x"))

    def test_missing_parent_rejected(self):
        schema = Schema("s")
        with pytest.raises(SchemaError):
            schema.add(SchemaElement(element_id="c", name="c", parent_id="nope"))

    def test_self_parent_rejected(self):
        with pytest.raises(ValueError):
            SchemaElement(element_id="x", name="x", parent_id="x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            SchemaElement(element_id="x", name="")

    def test_empty_schema_name_rejected(self):
        with pytest.raises(ValueError):
            Schema("")

    def test_derived_ids_unique(self):
        schema = Schema("s")
        first = schema.add_root("SAME")
        second = schema.add_root("SAME")
        assert first.element_id != second.element_id

    def test_add_child_by_id_string(self, tree):
        child = tree.add_child("vehicle", "REG_NO")
        assert tree.parent(child).name == "VEHICLE"

    def test_add_child_unknown_parent(self, tree):
        with pytest.raises(UnknownElementError):
            tree.add_child("missing", "X")


class TestTraversal:
    def test_roots(self, tree):
        assert [r.name for r in tree.roots()] == ["PERSON", "VEHICLE"]

    def test_children(self, tree):
        assert [c.name for c in tree.children("person")] == ["PERSON_ID", "NAME"]

    def test_parent_of_root_is_none(self, tree):
        assert tree.parent("person") is None

    def test_depths(self, tree):
        assert tree.depth("person") == 1
        assert tree.depth("person.name") == 2
        assert tree.depth("person.name.subfield") == 3
        assert tree.max_depth() == 3

    def test_elements_at_depth(self, tree):
        assert {e.name for e in tree.elements_at_depth(1)} == {"PERSON", "VEHICLE"}

    def test_subtree_preorder(self, tree):
        names = [e.name for e in tree.subtree("person")]
        assert names == ["PERSON", "PERSON_ID", "NAME", "SUBFIELD"]

    def test_descendants_excludes_root(self, tree):
        assert [e.name for e in tree.descendants("person")] == [
            "PERSON_ID", "NAME", "SUBFIELD",
        ]

    def test_ancestors(self, tree):
        assert [a.name for a in tree.ancestors("person.name.subfield")] == [
            "NAME", "PERSON",
        ]

    def test_leaves(self, tree):
        assert {e.name for e in tree.leaves()} == {
            "PERSON_ID", "SUBFIELD", "VEHICLE",
        }

    def test_path(self, tree):
        assert tree.path("person.name.subfield") == "PERSON/NAME/SUBFIELD"

    def test_find_by_name_case_insensitive(self, tree):
        assert len(tree.find_by_name("person")) == 1

    def test_unknown_lookup(self, tree):
        with pytest.raises(UnknownElementError):
            tree.element("missing")
        with pytest.raises(UnknownElementError):
            tree.depth("missing")
        with pytest.raises(UnknownElementError):
            tree.subtree("missing")

    def test_contains(self, tree):
        assert "person" in tree
        assert "missing" not in tree

    def test_filter_elements(self, tree):
        tables = tree.filter_elements(lambda e: e.kind is ElementKind.TABLE)
        assert len(tables) == 2


class TestIntegrity:
    def test_validate_ok(self, tree):
        tree.validate()

    def test_stats(self, tree):
        assert tree.stats() == {
            "elements": 5, "roots": 2, "leaves": 3, "max_depth": 3,
        }

    def test_replace_element_keeps_parent(self, tree):
        element = tree.element("person.name")
        tree.replace_element(element.with_documentation("the name"))
        assert tree.element("person.name").documentation == "the name"

    def test_replace_element_cannot_reparent(self, tree):
        moved = SchemaElement(element_id="person.name", name="NAME", parent_id="vehicle")
        with pytest.raises(SchemaError):
            tree.replace_element(moved)

    def test_describing_text(self):
        element = SchemaElement(element_id="e", name="N", documentation="docs here")
        assert element.describing_text() == "N docs here"
        bare = SchemaElement(element_id="e", name="N")
        assert bare.describing_text() == "N"

    def test_kind_container_flags(self):
        assert ElementKind.TABLE.is_container()
        assert ElementKind.COMPLEX_TYPE.is_container()
        assert not ElementKind.COLUMN.is_container()
