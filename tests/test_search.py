"""Schema search: indexing, query forms, BM25 ranking, fragments."""

import pytest

from repro.schema import Schema
from repro.search import (
    KeywordQuery,
    PredicateQuery,
    SchemaIndex,
    SchemaQuery,
    SchemaSearchEngine,
)


def themed_schema(name, roots):
    schema = Schema(name)
    for root, children in roots.items():
        parent = schema.add_root(root)
        for child in children:
            schema.add_child(parent, child)
    return schema


@pytest.fixture(scope="module")
def registry():
    schemata = {
        "medical": themed_schema(
            "medical",
            {"patient": ["blood_test", "diagnosis", "physician"],
             "ward": ["bed_count", "head_nurse"]},
        ),
        "motorpool": themed_schema(
            "motorpool",
            {"vehicle": ["registration", "engine_hours", "fuel_level"]},
        ),
        "hr": themed_schema(
            "hr",
            {"employee": ["family_name", "hire_date", "blood_type"]},
        ),
    }
    index = SchemaIndex()
    for schema in schemata.values():
        index.add(schema)
    return index, schemata


class TestIndex:
    def test_registration(self, registry):
        index, _ = registry
        assert len(index) == 3
        assert "medical" in index
        assert set(index.names) == {"medical", "motorpool", "hr"}

    def test_reindex_replaces(self, registry):
        index, schemata = registry
        before = index.entry("medical").n_terms
        index.add(schemata["medical"])
        assert index.entry("medical").n_terms == before
        assert len(index) == 3

    def test_remove(self):
        index = SchemaIndex()
        schema = themed_schema("x", {"a": ["b"]})
        index.add(schema)
        index.remove("x")
        assert len(index) == 0
        assert index.document_frequency("a") == 0

    def test_unknown_entry(self, registry):
        index, _ = registry
        with pytest.raises(KeyError):
            index.entry("nope")

    def test_candidates_by_posting(self, registry):
        index, _ = registry
        candidates = index.candidates(KeywordQuery("blood").terms())
        assert candidates == {"medical", "hr"}


class TestKeywordSearch:
    def test_ranks_topical_schema_first(self, registry):
        index, _ = registry
        engine = SchemaSearchEngine(index)
        hits = engine.search(KeywordQuery("patient blood test physician"))
        assert hits[0].schema_name == "medical"

    def test_scores_descending(self, registry):
        index, _ = registry
        hits = SchemaSearchEngine(index).search(KeywordQuery("blood"))
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_limit(self, registry):
        index, _ = registry
        hits = SchemaSearchEngine(index).search(KeywordQuery("blood"), limit=1)
        assert len(hits) == 1

    def test_no_hits(self, registry):
        index, _ = registry
        assert SchemaSearchEngine(index).search(KeywordQuery("zeppelin")) == []

    def test_predicate_gating(self, registry):
        index, _ = registry
        hits = SchemaSearchEngine(index).search(
            KeywordQuery("blood"),
            predicate=PredicateQuery(min_elements=6),
        )
        assert [hit.schema_name for hit in hits] == ["medical"]


class TestSchemaAsQuery:
    def test_query_by_example(self, registry):
        index, _ = registry
        probe = themed_schema(
            "probe", {"casualty": ["blood_test", "physician", "diagnosis"]}
        )
        hits = SchemaSearchEngine(index).search(SchemaQuery(probe))
        assert hits[0].schema_name == "medical"

    def test_exclude_self(self, registry):
        index, schemata = registry
        hits = SchemaSearchEngine(index).search(
            SchemaQuery(schemata["medical"]), exclude="medical"
        )
        assert all(hit.schema_name != "medical" for hit in hits)


class TestFragmentSearch:
    def test_fragment_hits_point_at_roots(self, registry):
        index, _ = registry
        hits = SchemaSearchEngine(index).search_fragments(KeywordQuery("blood test"))
        assert hits[0].schema_name == "medical"
        assert hits[0].root_name == "patient"

    def test_fragments_more_specific_than_schemas(self, registry):
        index, _ = registry
        hits = SchemaSearchEngine(index).search_fragments(KeywordQuery("bed nurse"))
        assert hits[0].root_name == "ward"


class TestParameterValidation:
    def test_bm25_params(self, registry):
        index, _ = registry
        with pytest.raises(ValueError):
            SchemaSearchEngine(index, k1=0)
        with pytest.raises(ValueError):
            SchemaSearchEngine(index, b=2.0)

    def test_predicate_admits(self):
        schema = themed_schema("x", {"a": ["b", "c"]})
        assert PredicateQuery(min_elements=2).admits(schema)
        assert not PredicateQuery(max_elements=2).admits(schema)
        assert not PredicateQuery(kind="relational").admits(schema)
