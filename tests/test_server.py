"""The serving tier: wire protocol, response cache, HTTP server, CLI."""

from __future__ import annotations

import json
import socket
import threading
import urllib.request

import pytest

from repro.cli import main
from repro.repository import MetadataRepository, ReusePolicy
from repro.repository.provenance import AssertionMethod, TrustPolicy
from repro.schema import parse_ddl
from repro.server import (
    MatchServer,
    MatchServerError,
    MatchServiceClient,
    ResponseCache,
    canonical_request_key,
)
from repro.service import (
    CorpusMatchRequest,
    MatchOptions,
    MatchRequest,
    MatchResponse,
    MatchService,
    NetworkMatchRequest,
)
from repro.synthetic import generate_clustered_corpus
from tests.conftest import SAMPLE_DDL

SCORE_TOLERANCE = 1e-9


# ----------------------------------------------------------------------
# Requests as wire data
# ----------------------------------------------------------------------
class TestRequestWire:
    def test_match_request_round_trip(self):
        request = MatchRequest(
            source="A",
            target="B",
            options=MatchOptions(threshold=0.3, selection="top_k", top_k=2),
            source_element_ids=("a", "b"),
        )
        assert MatchRequest.from_dict(request.to_dict()) == request

    def test_match_request_inline_schema_round_trip(self):
        schema = parse_ddl(SAMPLE_DDL, name="wire_sample")
        request = MatchRequest(source=schema, target="B")
        rebuilt = MatchRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert isinstance(rebuilt.source, type(schema))
        assert rebuilt.source.name == "wire_sample"
        assert len(rebuilt.source) == len(schema)
        assert rebuilt.target == "B"

    def test_match_request_defaults_fill_gaps(self):
        rebuilt = MatchRequest.from_dict({"source": "A", "target": "B"})
        assert rebuilt == MatchRequest(source="A", target="B")

    def test_malformed_schema_ref_rejected(self):
        with pytest.raises(ValueError, match="schema reference"):
            MatchRequest.from_dict({"source": {"bogus": 1}, "target": "B"})

    def test_corpus_request_round_trip(self):
        request = CorpusMatchRequest(
            source="A",
            top_k=3,
            retrieval_limit=7,
            exclude=("X",),
            reuse=ReusePolicy(boost=0.5, trust=TrustPolicy(min_confidence=0.2)),
            executor="thread",
            max_workers=2,
        )
        assert CorpusMatchRequest.from_dict(request.to_dict()) == request

    def test_corpus_request_reuse_none_survives(self):
        request = CorpusMatchRequest(source="A", reuse=None)
        rebuilt = CorpusMatchRequest.from_dict(request.to_dict())
        assert rebuilt.reuse is None
        # An absent key means "default policy", not "off".
        assert CorpusMatchRequest.from_dict({"source": "A"}).reuse == ReusePolicy()

    def test_network_request_round_trip(self):
        request = NetworkMatchRequest(
            source="A",
            target="C",
            max_hops=3,
            hop_decay=0.8,
            min_score=0.1,
            trust=TrustPolicy(require_human=True),
            verify=True,
            reuse=ReusePolicy(seed_floor=0.1),
        )
        assert NetworkMatchRequest.from_dict(request.to_dict()) == request


# ----------------------------------------------------------------------
# The generation-aware response cache
# ----------------------------------------------------------------------
class TestResponseCache:
    def test_hit_and_miss(self):
        cache = ResponseCache()
        assert cache.lookup("k", (1, 1)) is None
        cache.store("k", {"x": 1}, (1, 1))
        assert cache.lookup("k", (1, 1)) == {"x": 1}
        stats = cache.stats
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_clock_movement_invalidates(self):
        cache = ResponseCache()
        cache.store("k", {"x": 1}, (1, 1))
        assert cache.lookup("k", (1, 2)) is None
        assert cache.stats.invalidations == 1
        assert len(cache) == 0  # evicted, not retained stale

    def test_none_clocks_compare_stable(self):
        # A repository-less service: nothing the response depends on can
        # change, so the constant watermark hits forever.
        cache = ResponseCache()
        cache.store("k", {"x": 1}, (None, None))
        assert cache.lookup("k", (None, None)) == {"x": 1}

    def test_lru_eviction(self):
        cache = ResponseCache(max_entries=2)
        cache.store("a", 1, (0, 0))
        cache.store("b", 2, (0, 0))
        assert cache.lookup("a", (0, 0)) == 1  # refresh a; b is now LRU
        cache.store("c", 3, (0, 0))
        assert cache.lookup("b", (0, 0)) is None
        assert cache.lookup("a", (0, 0)) == 1
        assert cache.stats.evictions == 1

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            ResponseCache(max_entries=0)

    def test_canonical_key_is_order_and_default_insensitive(self):
        explicit = MatchRequest(
            source="A", target="B", options=MatchOptions()
        ).to_dict()
        shuffled = dict(reversed(list(explicit.items())))
        assert canonical_request_key("/match", explicit) == canonical_request_key(
            "/match", shuffled
        )
        # Same request via from_dict with everything defaulted.
        sparse = MatchRequest.from_dict({"source": "A", "target": "B"}).to_dict()
        assert canonical_request_key("/match", sparse) == canonical_request_key(
            "/match", explicit
        )
        assert canonical_request_key("/match", explicit) != canonical_request_key(
            "/corpus-match", explicit
        )


# ----------------------------------------------------------------------
# The HTTP server (in-process, ephemeral port)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def corpus_schemata():
    corpus = generate_clustered_corpus(
        n_domains=2, schemata_per_domain=3, seed=2009
    )
    return [generated.schema for generated in corpus.schemata]


@pytest.fixture
def served(corpus_schemata):
    """A live server over a freshly seeded in-memory repository."""
    repository = MetadataRepository()
    for schema in corpus_schemata:
        repository.register(schema)
    service = MatchService(repository=repository)
    server = MatchServer(service, port=0)
    worker = threading.Thread(target=server.serve_forever, daemon=True)
    worker.start()
    try:
        yield server, MatchServiceClient(server.url), service
    finally:
        server.shutdown()
        worker.join()
        server.server_close()


class TestMatchServer:
    def test_healthz(self, served):
        server, client, _ = served
        health = client.health()
        assert health["status"] == "ok"
        from repro import __version__

        assert health["version"] == __version__
        assert health["repository"]["bound"] is True
        assert health["repository"]["n_registered"] == 6

    def test_schemas_endpoint(self, served):
        _, client, _ = served
        payload = client.schemas()
        assert payload["n_registered"] == 6
        assert "D0S0" in payload["names"]

    def test_match_round_trips_and_equals_direct(self, served):
        _, client, service = served
        request = MatchRequest(
            source="D0S0", target="D0S1", options=MatchOptions(threshold=0.2)
        )
        over_wire = client.match(request)
        assert isinstance(over_wire, MatchResponse)
        direct = service.match(request)
        assert len(over_wire) == len(direct)
        for ours, theirs in zip(over_wire.correspondences, direct.correspondences):
            assert ours.pair == theirs.pair
            assert abs(ours.score - theirs.score) <= SCORE_TOLERANCE

    def test_repeated_request_served_from_cache(self, served):
        _, client, _ = served
        request = MatchRequest(source="D0S0", target="D0S1")
        first = client.match(request)
        assert client.last_cache_status == "miss"
        second = client.match(request)
        assert client.last_cache_status == "hit"
        assert first == second

    def test_sparse_body_inherits_server_default_options(self, corpus_schemata):
        """A wire body with no "options" key runs under the SERVER's
        defaults (what `repro serve --threshold` configures), not the
        library defaults; an explicit "options" key still wins."""
        repository = MetadataRepository()
        for schema in corpus_schemata:
            repository.register(schema)
        service = MatchService(
            repository=repository, options=MatchOptions(threshold=0.9)
        )
        server = MatchServer(service, port=0)
        worker = threading.Thread(target=server.serve_forever, daemon=True)
        worker.start()
        try:
            client = MatchServiceClient(server.url)
            sparse = client.post_json(
                "/match", {"source": "D0S0", "target": "D0S1"}
            )
            assert sparse["options"]["threshold"] == 0.9
            explicit = client.post_json(
                "/match",
                {
                    "source": "D0S0",
                    "target": "D0S1",
                    "options": {"threshold": 0.2},
                },
            )
            assert explicit["options"]["threshold"] == 0.2
            assert len(explicit["correspondences"]) >= len(
                sparse["correspondences"]
            )
        finally:
            server.shutdown()
            worker.join()
            server.server_close()

    def test_near_repeated_request_hits_too(self, served):
        _, client, _ = served
        client.match(MatchRequest(source="D0S0", target="D0S1"))
        # Same request, sparsely spelled: defaults omitted on the wire.
        client.post_json("/match", {"source": "D0S0", "target": "D0S1"})
        assert client.last_cache_status == "hit"

    def test_inline_schema_request(self, served, sample_relational):
        _, client, _ = served
        response = client.match(
            MatchRequest(source=sample_relational, target="D0S0")
        )
        assert response.source_name == sample_relational.name

    def test_corpus_match_round_trip(self, served):
        _, client, service = served
        request = CorpusMatchRequest(source="D0S0", top_k=2)
        over_wire = client.corpus_match(request)
        direct = service.corpus_match(request)
        assert over_wire.candidate_names == direct.candidate_names
        assert over_wire.n_registered == 6

    def test_unknown_endpoint_404(self, served):
        _, client, _ = served
        with pytest.raises(MatchServerError) as caught:
            client.post_json("/bogus", {})
        assert caught.value.status == 404
        with pytest.raises(MatchServerError) as caught:
            client.get_json("/bogus")
        assert caught.value.status == 404

    def test_undecodable_body_400(self, served):
        server, _, _ = served
        request = urllib.request.Request(
            server.url + "/match",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10)
        assert caught.value.code == 400

    def test_invalid_request_body_400(self, served):
        _, client, _ = served
        with pytest.raises(MatchServerError) as caught:
            client.post_json("/match", {"source": "D0S0"})  # no target
        assert caught.value.status == 400

    def test_unregistered_schema_404(self, served):
        _, client, _ = served
        with pytest.raises(MatchServerError) as caught:
            client.post_json(
                "/match", MatchRequest(source="NOPE", target="D0S0").to_dict()
            )
        assert caught.value.status == 404

    def test_metrics_accumulate(self, served):
        _, client, _ = served
        request = MatchRequest(source="D0S0", target="D0S1")
        client.match(request)
        client.match(request)
        endpoints = client.metrics()["endpoints"]
        assert endpoints["/match"]["requests"] == 2
        assert endpoints["/match"]["cache_hits"] == 1
        assert endpoints["/match"]["cache_misses"] == 1

    def test_cascade_counters_on_health_and_metrics(self, served):
        from repro.cascade import CascadePlan

        _, client, _ = served
        # Always present, zeroed before any cascaded request -- monitoring
        # asserts on the block unconditionally.
        before = client.metrics()["cascade"]
        assert before["requests"] == 0
        assert before["oracle_calls"] == 0

        request = MatchRequest(
            source="D0S0",
            target="D0S1",
            options=MatchOptions(cascade=CascadePlan(band=0.4, budget=10)),
        )
        response = client.match(request)
        assert response.cascade is not None
        assert response.cascade.n_escalated <= 10

        for payload in (client.health(), client.metrics()):
            counters = payload["cascade"]
            assert counters["requests"] == 1
            assert counters["escalated"] <= 10
            assert counters["oracle_calls"] <= counters["escalated"]
            assert counters["compiled_plans"] == 1
            assert counters["oracle_cache_hits"] >= 0
        # The cached-response replay does not double-count oracle spend.
        client.match(request)
        assert client.metrics()["cascade"]["requests"] == 1


class TestCacheInvalidationOverHttp:
    """Satellite contract: writes mid-session evict entries keyed under the
    old generation clocks, and the recomputed answers match fresh state."""

    def test_register_invalidates_match_entries(self, served, sample_relational):
        server, client, _ = served
        request = MatchRequest(source="D0S0", target="D0S1")
        client.match(request)
        client.match(request)
        assert client.last_cache_status == "hit"
        server.service.repository.register(sample_relational, name="NEWCOMER")
        client.match(request)
        assert client.last_cache_status == "miss"
        assert server.cache.stats.invalidations >= 1

    def test_stored_matches_invalidate_corpus_and_network_entries(self, served):
        server, client, service = served
        repository = service.repository
        # Seed the mapping network: persist D0S0<->D0S1 and D0S1<->D0S2.
        options = MatchOptions(selection="stable_marriage")
        for pair in (("D0S0", "D0S1"), ("D0S1", "D0S2")):
            service.persist(service.match_pair(*pair, options=options))

        corpus_request = CorpusMatchRequest(source="D0S0", top_k=2)
        network_request = NetworkMatchRequest(source="D0S0", target="D0S2")
        before_corpus = client.corpus_match(corpus_request)
        before_network = client.network_match(network_request)
        client.corpus_match(corpus_request)
        assert client.last_cache_status == "hit"
        client.network_match(network_request)
        assert client.last_cache_status == "hit"

        # The write: a human validates a brand-new D0S1<->D0S2 leg hanging
        # off an element that already pivots D0S0 -> D0S1, so the routed
        # D0S0 -> D0S2 answer must change.
        old_generation = repository.match_generation
        invalidations_before = server.cache.stats.invalidations
        pivot = repository.matches(source_schema="D0S0", target_schema="D0S1")[0]
        from repro.match import Correspondence

        repository.store_matches(
            "D0S1",
            "D0S2",
            [
                Correspondence(
                    source_id=pivot.correspondence.target_id,
                    target_id="freshly_validated_target",
                    score=1.0,
                )
            ],
            asserted_by="validator",
            method=AssertionMethod.HUMAN_VALIDATED,
        )
        assert repository.match_generation > old_generation

        after_corpus = client.corpus_match(corpus_request)
        assert client.last_cache_status == "miss"
        after_network = client.network_match(network_request)
        assert client.last_cache_status == "miss"
        # Both stale entries are gone: whether the write's nudge swept them
        # or the per-lookup clock check refused them, the counter moved.
        assert server.cache.stats.invalidations >= invalidations_before + 2

        # Recomputed, not stale: the fresh answers fold the new assertion.
        fresh = MatchService(repository=repository)
        assert after_network.correspondences == (
            fresh.network_match(network_request).correspondences
        )
        assert after_corpus.candidate_names == (
            fresh.corpus_match(corpus_request).candidate_names
        )
        # And the new pair actually changed the routed answer.
        assert after_network.correspondences != before_network.correspondences
        assert before_corpus.n_registered == after_corpus.n_registered


# ----------------------------------------------------------------------
# The serve CLI (exit codes; the smoke test with SIGINT lives in CI)
# ----------------------------------------------------------------------
class TestServeCli:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as caught:
            main(["--version"])
        assert caught.value.code == 0
        assert f"harmonia {__version__}" in capsys.readouterr().out

    def test_port_in_use_exits_2(self):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(SystemExit) as caught:
                main(["serve", "--port", str(port)])
            assert caught.value.code == 2
        finally:
            blocker.close()

    def test_bad_cache_size_exits_2(self):
        with pytest.raises(SystemExit) as caught:
            main(["serve", "--cache-size", "0"])
        assert caught.value.code == 2

    def test_unopenable_db_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as caught:
            main(["serve", "--db", str(tmp_path)])  # a directory, not a file
        assert caught.value.code == 2

    def test_unparseable_corpus_file_exits_2(self, tmp_path):
        bad = tmp_path / "broken.sql"
        bad.write_text("CREATE TABLE (")
        with pytest.raises(SystemExit) as caught:
            main(["serve", str(bad)])
        assert caught.value.code == 2
