"""The MatchService facade: options, routing, envelopes, knowledge loop.

Covers the service-layer guarantees:

* ``MatchOptions`` compiles to the exact same ensemble/merger the engine
  defaults to, and round-trips through dicts;
* auto-routing picks the exact grid for small pairs, the blocked fast path
  at the paper's corpus scale (E16 workload), with batch-routed candidate
  scores equal to the exact path within 1e-9;
* ``MatchResponse`` envelopes JSON-round-trip (property-tested);
* one service shares one profile/feature cache across engines and runners;
* repository binding: schema-by-name requests, persist, recall.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import default_service, quick_match
from repro.baselines.engines import baseline_engines, baseline_options
from repro.cascade import CascadePlan, CascadeReport, CascadeStage
from repro.match import (
    Correspondence,
    HarmonyMatchEngine,
    MatchStatus,
    SemanticAnnotation,
    StableMarriageSelection,
    ThresholdSelection,
)
from repro.repository import AssertionMethod, MetadataRepository, ProvenanceRecord
from repro.service import (
    DEFAULT_VOTER_NAMES,
    MatchOptions,
    MatchRequest,
    MatchResponse,
    MatchService,
)

TOLERANCE = 1e-9


class TestMatchOptions:
    def test_defaults_compile_to_engine_defaults(self):
        options = MatchOptions()
        voters = options.build_voters()
        reference = HarmonyMatchEngine()
        assert [v.name for v in voters] == [v.name for v in reference.voters]
        assert list(DEFAULT_VOTER_NAMES) == [v.name for v in voters]
        merger = options.build_merger()
        assert merger.name == "conviction_linear"
        # The calibrated default weights survive compilation.
        assert np.allclose(
            merger.voter_weights, reference.merger.voter_weights
        )

    def test_lexicon_is_shared_between_thesaurus_and_structure(self):
        voters = MatchOptions(voters=("thesaurus", "structure")).build_voters()
        assert voters[0].lexicon is voters[1].lexicon

    def test_selection_building(self):
        assert isinstance(
            MatchOptions(selection="threshold", threshold=0.2).build_selection(),
            ThresholdSelection,
        )
        marriage = MatchOptions(
            selection="stable_marriage", threshold=0.13
        ).build_selection()
        assert isinstance(marriage, StableMarriageSelection)
        assert marriage.threshold == 0.13

    def test_validation(self):
        with pytest.raises(ValueError):
            MatchOptions(voters=("bogus",))
        with pytest.raises(ValueError):
            MatchOptions(voters=())
        with pytest.raises(ValueError):
            MatchOptions(merger="bogus")
        with pytest.raises(ValueError):
            MatchOptions(merger="weighted_linear")  # weights required
        with pytest.raises(ValueError):
            MatchOptions(selection="bogus")
        with pytest.raises(ValueError):
            MatchOptions(threshold=1.5)
        with pytest.raises(ValueError):
            MatchOptions(top_k=0)
        with pytest.raises(ValueError):
            MatchOptions(execution="gpu")
        with pytest.raises(ValueError):
            MatchOptions(fill_value=-2.0)
        with pytest.raises(ValueError):
            MatchOptions(voters=("path",), merger_weights=(0.5, 0.5))

    def test_dict_round_trip(self):
        options = MatchOptions(
            voters=("name_token", "path"),
            merger="weighted_linear",
            merger_weights=(0.3, 0.7),
            selection="top_k",
            top_k=3,
            threshold=0.05,
            execution="batch",
            fill_value=-0.1,
        )
        assert MatchOptions.from_dict(options.to_dict()) == options
        assert MatchOptions.from_dict(json.loads(json.dumps(options.to_dict()))) == options
        assert MatchOptions.from_dict({}) == MatchOptions()

    def test_options_are_hashable_cache_keys(self):
        assert MatchOptions() == MatchOptions()
        assert hash(MatchOptions()) == hash(MatchOptions())
        assert MatchOptions() != MatchOptions(execution="batch")

    def test_baseline_options_mirror_baseline_engines(self, sample_relational, sample_xml):
        engines = baseline_engines()
        for name, options in baseline_options().items():
            compiled = HarmonyMatchEngine(
                voters=options.build_voters(), merger=options.build_merger()
            )
            reference = engines[name].match(sample_relational, sample_xml)
            ours = compiled.match(sample_relational, sample_xml)
            assert np.allclose(
                ours.matrix.scores, reference.matrix.scores, atol=TOLERANCE
            ), name


class TestRouting:
    def test_small_pair_routes_exact(self, sample_relational, sample_xml):
        response = MatchService().match_pair(sample_relational, sample_xml)
        assert response.route == "exact"
        assert "auto_batch_pairs" in response.routing_reason
        assert response.n_candidates == response.n_pairs
        assert response.candidate_fraction == 1.0
        assert response.result is not None

    def test_execution_hints_are_honoured(self, sample_relational, sample_xml):
        service = MatchService()
        batch = service.match_pair(
            sample_relational, sample_xml, options=MatchOptions(execution="batch")
        )
        assert batch.route == "batch"
        assert batch.routing_reason == "requested"
        assert batch.n_candidates < batch.n_pairs
        exact = service.match_pair(
            sample_relational, sample_xml, options=MatchOptions(execution="exact")
        )
        assert exact.route == "exact"

    def test_pair_threshold_routes_batch(self, small_pair):
        source = small_pair.source.schema
        target = small_pair.target.schema
        service = MatchService(auto_batch_pairs=len(source) * len(target))
        assert service.match_pair(source, target).route == "batch"
        service = MatchService(auto_batch_pairs=len(source) * len(target) + 1)
        assert service.match_pair(source, target).route == "exact"

    def test_target_restriction_forces_exact(self, small_pair):
        source = small_pair.source.schema
        target = small_pair.target.schema
        service = MatchService(auto_batch_pairs=1)  # everything wants batch
        ids = [element.element_id for element in target][:5]
        response = service.match_pair(source, target, target_element_ids=ids)
        assert response.route == "exact"
        assert "target-side restriction" in response.routing_reason
        with pytest.raises(ValueError):
            service.match_pair(
                source,
                target,
                options=MatchOptions(execution="batch"),
                target_element_ids=ids,
            )

    def test_source_restriction_rides_the_batch_path(self, small_pair):
        source = small_pair.source.schema
        target = small_pair.target.schema
        service = MatchService()
        ids = [element.element_id for element in source][:20]
        response = service.match_pair(
            source,
            target,
            options=MatchOptions(execution="batch"),
            source_element_ids=ids,
        )
        assert response.route == "batch"
        assert response.n_source == len(ids)

    def test_sweep_routing_by_total_pairs(self, small_pair):
        schemata = {
            "SA": small_pair.source.schema,
            "SB": small_pair.target.schema,
        }
        total = len(small_pair.source.schema) * len(small_pair.target.schema)
        service = MatchService()
        responses = service.match_all_pairs(schemata)
        assert [r.route for r in responses] == ["exact"]
        service = MatchService(auto_batch_pairs=total)
        responses = service.match_all_pairs(schemata)
        assert [r.route for r in responses] == ["batch"]

    def test_small_registry_sweep_stays_exact_regardless_of_count(self, small_pair):
        # Many tiny schemata are cheap and lossless on the exact engine;
        # registry size alone must not buy blocking's recall trade-off.
        from repro.synthetic import PairSpec, generate_pair

        tiny = {
            f"S{i}": generate_pair(PairSpec(), seed=i).target.schema
            for i in range(5)
        }
        responses = MatchService().match_all_pairs(tiny)
        assert all(r.route == "exact" for r in responses)

    def test_corpus_sweep_and_exact_sweep_agree(self, small_pair):
        source = small_pair.source.schema
        corpus = {"SB": small_pair.target.schema}
        service = MatchService()
        exact = service.match_corpus(
            source, corpus, options=MatchOptions(execution="exact", threshold=0.2)
        )
        fast = service.match_corpus(
            source, corpus, options=MatchOptions(execution="batch", threshold=0.2)
        )
        assert [r.target_name for r in exact] == ["SB"]
        exact_pairs = {c.pair: c.score for c in exact[0].correspondences}
        for correspondence in fast[0].correspondences:
            assert correspondence.pair in exact_pairs
            assert (
                abs(exact_pairs[correspondence.pair] - correspondence.score)
                <= TOLERANCE
            )


class TestE16ScaleRouting:
    """The acceptance workload: the paper's 1378x784 case study."""

    @pytest.fixture(scope="class")
    def case_pair(self):
        from repro.synthetic import case_study

        pair = case_study(seed=2009)
        return pair.source.schema, pair.target.schema

    def test_auto_routes_batch_with_exact_scores(self, case_pair):
        source, target = case_pair
        service = MatchService()
        response = service.match_pair(source, target)
        assert response.route == "batch"
        assert response.n_pairs == len(source) * len(target)
        assert response.n_pairs >= service.auto_batch_pairs
        assert 0 < response.n_candidates < response.n_pairs

        exact = service.match_pair(
            source, target, options=MatchOptions(execution="exact")
        )
        assert exact.route == "exact"
        exact_scores = {c.pair: c.score for c in exact.correspondences}
        # Batch-selected correspondences carry exactly the exact-path score.
        assert response.correspondences, "batch route selected nothing"
        for correspondence in response.correspondences:
            assert correspondence.pair in exact_scores
            assert (
                abs(exact_scores[correspondence.pair] - correspondence.score)
                <= TOLERANCE
            )


def _score_strategy():
    return st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)


def _cascade_plan_strategy():
    return st.builds(
        CascadePlan,
        band=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        budget=st.one_of(st.none(), st.integers(min_value=0, max_value=1000)),
        oracle=st.sampled_from(("thesaurus", "recorded", "custom_llm")),
        weight=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    )


def _cascade_report_strategy():
    stage = st.builds(
        CascadeStage,
        name=st.sampled_from(("cheap", "oracle")),
        n_pairs=st.integers(min_value=0, max_value=100_000),
        elapsed_seconds=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        oracle_calls=st.integers(min_value=0, max_value=1000),
    )
    return st.builds(
        CascadeReport,
        plan=_cascade_plan_strategy(),
        n_ambiguous=st.integers(min_value=0, max_value=100_000),
        n_escalated=st.integers(min_value=0, max_value=1000),
        oracle_calls=st.integers(min_value=0, max_value=1000),
        oracle_cache_hits=st.integers(min_value=0, max_value=1000),
        truncated=st.booleans(),
        stages=st.lists(stage, min_size=0, max_size=3).map(tuple),
    )


def _options_strategy():
    return st.one_of(
        st.just(MatchOptions()),
        st.builds(
            MatchOptions,
            voters=st.just(("name_token", "path")),
            merger=st.sampled_from(
                ("conviction_linear", "average", "max_conviction", "min")
            ),
            selection=st.sampled_from(
                ("threshold", "top_k", "stable_marriage", "hungarian")
            ),
            threshold=_score_strategy(),
            top_k=st.integers(min_value=1, max_value=5),
            execution=st.sampled_from(("auto", "exact", "batch")),
            fill_value=_score_strategy(),
            cascade=st.one_of(st.none(), _cascade_plan_strategy()),
        ),
    )


def _correspondence_strategy():
    return st.builds(
        Correspondence,
        source_id=st.text(min_size=1, max_size=10),
        target_id=st.text(min_size=1, max_size=10),
        score=_score_strategy(),
        status=st.sampled_from(MatchStatus),
        annotation=st.sampled_from(SemanticAnnotation),
        asserted_by=st.text(min_size=1, max_size=10),
        note=st.text(max_size=10),
    )


def _response_strategy():
    return st.builds(
        MatchResponse,
        source_name=st.text(min_size=1, max_size=12),
        target_name=st.text(min_size=1, max_size=12),
        n_source=st.integers(min_value=0, max_value=5000),
        n_target=st.integers(min_value=0, max_value=5000),
        n_pairs=st.integers(min_value=0, max_value=10_000_000),
        n_candidates=st.integers(min_value=0, max_value=10_000_000),
        route=st.sampled_from(("exact", "batch")),
        routing_reason=st.text(max_size=30),
        elapsed_seconds=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        voter_names=st.lists(st.text(min_size=1, max_size=8), max_size=4).map(tuple),
        options=_options_strategy(),
        correspondences=st.lists(_correspondence_strategy(), max_size=5).map(tuple),
        provenance=st.builds(
            ProvenanceRecord,
            asserted_by=st.text(min_size=1, max_size=10),
            method=st.sampled_from(AssertionMethod),
            confidence=_score_strategy(),
            sequence=st.integers(min_value=0, max_value=1000),
            context=st.text(max_size=10),
            note=st.text(max_size=10),
        ),
        cascade=st.one_of(st.none(), _cascade_report_strategy()),
    )


class TestResponseRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(_response_strategy())
    def test_dict_and_json_round_trip(self, response):
        assert MatchResponse.from_dict(response.to_dict()) == response
        assert MatchResponse.from_json(response.to_json()) == response
        json.dumps(response.to_dict())  # strictly JSON-serialisable

    def test_live_result_is_not_part_of_identity(self, sample_relational, sample_xml):
        response = MatchService().match_pair(sample_relational, sample_xml)
        rebuilt = MatchResponse.from_dict(response.to_dict())
        assert rebuilt == response
        assert rebuilt.result is None
        assert response.result is not None

    def test_version_gate(self):
        with pytest.raises(ValueError):
            MatchResponse.from_dict({"format_version": 99})


class TestSharedCaches:
    def test_engine_and_runner_share_profiles(self, sample_relational):
        service = MatchService()
        engine_profile = service.engine().profile(sample_relational)
        runner_profile = service.runner().profile(sample_relational)
        assert engine_profile is runner_profile
        # Different configurations still share the same cache.
        other = service.engine(MatchOptions(voters=("name_token",)))
        assert other.profile(sample_relational) is engine_profile

    def test_compiled_executors_are_cached_by_value(self):
        service = MatchService()
        assert service.engine() is service.engine(MatchOptions())
        assert service.runner() is service.runner(MatchOptions())
        assert service.engine(MatchOptions(execution="batch")) is not service.engine()

    def test_quick_match_uses_the_shared_service(self, sample_relational, sample_xml):
        response = quick_match(sample_relational, sample_xml, threshold=0.05)
        assert isinstance(response, MatchResponse)
        assert all(c.score >= 0.05 for c in response.correspondences)
        service = default_service()
        assert service is default_service()
        assert id(sample_relational) in service._profiles


class TestRepositoryBinding:
    def test_refs_resolve_through_repository(self, sample_relational, sample_xml):
        repository = MetadataRepository()
        repository.register(sample_relational, name="SA")
        repository.register(sample_xml, name="SB")
        service = MatchService(repository=repository)
        response = service.match(MatchRequest(source="SA", target="SB"))
        assert response.source_name == "SA_sample"  # the schema's own name
        assert response.n_source == len(sample_relational)

    def test_refs_without_repository_fail(self, sample_relational):
        with pytest.raises(ValueError):
            MatchService().match(MatchRequest(source="SA", target=sample_relational))

    def test_persist_and_recall(self, sample_relational, sample_xml):
        service = MatchService(repository=MetadataRepository())
        response = service.match_pair(
            sample_relational, sample_xml, options=MatchOptions(threshold=0.05)
        )
        stored = service.persist(response)
        assert stored == len(response.correspondences) > 0
        recalled = service.recall("SA_sample", "SB_sample")
        assert set(c.pair for c in recalled) == set(
            c.pair for c in response.correspondences
        )
        provenances = service.repository.matches("SA_sample", "SB_sample")
        assert all(
            m.provenance.method is AssertionMethod.AUTOMATIC for m in provenances
        )
        assert all(m.provenance.context == "route=exact" for m in provenances)

    def test_persist_requires_repository(self, sample_relational, sample_xml):
        service = MatchService()
        response = service.match_pair(sample_relational, sample_xml)
        with pytest.raises(ValueError):
            service.persist(response)

    def test_persist_sweep_response_needs_registered_schemata(
        self, sample_relational, sample_xml
    ):
        # Sweep envelopes carry no live result, so persist cannot
        # auto-register; it must fail with guidance, not a raw KeyError.
        service = MatchService(repository=MetadataRepository())
        responses = service.match_corpus(
            sample_relational,
            {"SB": sample_xml},
            options=MatchOptions(execution="batch", threshold=0.05),
        )
        with pytest.raises(ValueError, match="not.*registered"):
            service.persist(responses[0])
        service.repository.register(sample_relational)
        service.repository.register(sample_xml, name="SB")
        assert service.persist(responses[0]) == len(responses[0].correspondences)

    def test_clear_caches_releases_profiles_and_features(self, sample_relational):
        service = MatchService()
        service.engine().profile(sample_relational)
        assert service._profiles
        service.clear_caches()
        assert not service._profiles
        # Compiled engines share the cleared dict and simply re-profile.
        assert service.engine().profile(sample_relational) is not None


class TestNwayThroughService:
    def test_nway_service_equals_engine_path_on_small_registry(self, small_pair):
        from repro.nway import nway_match

        schemata = {
            "SA": small_pair.source.schema,
            "SB": small_pair.target.schema,
        }
        vocabulary_engine, _ = nway_match(schemata, engine=HarmonyMatchEngine())
        vocabulary_service, _ = nway_match(schemata, service=MatchService())
        assert len(vocabulary_service) == len(vocabulary_engine)
