"""The sharded corpus subsystem: partitioned retrieval, bulk ingestion,
and the background refresh worker.

The load-bearing claims, each with the test that can fail it:

* sharded top-k retrieval returns EXACTLY the unsharded engine's hits --
  same names, same order, scores equal with ``==`` (stronger than the
  1e-9 the E21 bench asserts) -- for any shard count;
* ``bulk_register_schemas`` / ``bulk_ingest`` land the same repository
  state as a ``register()`` loop, just in fewer transactions;
* the refresh worker keeps shards warm without ever being a correctness
  dependency: a query racing ahead of it (or running with no worker at
  all) still sees zero stale results, and the final state under a
  register/refresh/query hammer is exactly the serial rebuild's.
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import (
    CorpusIndex,
    CorpusRefreshWorker,
    RefreshWorkerStats,
    ShardStats,
    ShardedCorpusIndex,
    bulk_ingest,
    iter_schema_payloads,
    shard_of_name,
)
from repro.repository import MetadataRepository
from repro.schema.serialize import schema_from_dict, schema_to_dict
from repro.service import MatchService
from repro.service.requests import CorpusMatchRequest
from repro.synthetic import generate_enterprise_corpus, generate_scaled_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_enterprise_corpus(n_schemata=90, n_domains=6, seed=17)


@pytest.fixture()
def repository(corpus):
    repo = MetadataRepository()
    for name in corpus.names:
        repo.register(corpus.by_name(name).schema)
    return repo


def _renamed(corpus, source_name: str, new_name: str):
    payload = schema_to_dict(corpus.by_name(source_name).schema)
    payload["name"] = new_name
    return schema_from_dict(payload)


class TestShardOfName:
    def test_in_range_and_stable(self):
        for name in ("orders", "D0S0", "schema/with:separators", ""):
            for n_shards in (1, 2, 7, 64):
                shard = shard_of_name(name, n_shards)
                assert 0 <= shard < n_shards
                assert shard == shard_of_name(name, n_shards)

    def test_single_shard_is_always_zero(self):
        assert shard_of_name("anything", 1) == 0

    def test_spreads_names_across_shards(self):
        counts = [0] * 8
        for i in range(800):
            counts[shard_of_name(f"schema-{i}", 8)] += 1
        # Uniform would be 100 each; hash-range keeps every shard populated.
        assert min(counts) > 50

    def test_rejects_non_positive_shard_counts(self):
        with pytest.raises(ValueError):
            shard_of_name("orders", 0)


class TestExactness:
    """Sharded retrieval == unsharded retrieval, bit for bit."""

    @pytest.mark.parametrize("n_shards", [1, 3, 8])
    def test_scores_equal_the_unsharded_engine(self, corpus, repository, n_shards):
        flat = CorpusIndex(repository)
        sharded = ShardedCorpusIndex(repository, n_shards=n_shards)
        for query_name in corpus.names[::9]:
            query = corpus.by_name(query_name).schema
            expected = flat.top_candidates(query, limit=8, exclude=query_name)
            actual = sharded.top_candidates(query, limit=8, exclude=query_name)
            assert [hit.schema_name for hit in actual] == [
                hit.schema_name for hit in expected
            ]
            for got, want in zip(actual, expected):
                assert got.score == want.score  # equality, not approx

    def test_small_limits_and_exclude(self, corpus, repository):
        flat = CorpusIndex(repository)
        sharded = ShardedCorpusIndex(repository, n_shards=4)
        query = corpus.by_name("D0S0").schema
        for limit in (1, 2, 30):
            assert sharded.top_candidates(query, limit=limit) == flat.top_candidates(
                query, limit=limit
            )
        excluded = flat.top_candidates(query, limit=1)[0].schema_name
        assert sharded.top_candidates(
            query, limit=3, exclude=excluded
        ) == flat.top_candidates(query, limit=3, exclude=excluded)

    def test_rejects_non_positive_limit(self, repository, corpus):
        sharded = ShardedCorpusIndex(repository, n_shards=2)
        with pytest.raises(ValueError):
            sharded.top_candidates(corpus.by_name("D0S0").schema, limit=0)

    def test_empty_repository_returns_nothing(self, corpus):
        sharded = ShardedCorpusIndex(MetadataRepository(), n_shards=4)
        assert sharded.top_candidates(corpus.by_name("D0S0").schema) == []
        assert len(sharded) == 0 and sharded.names == []

    def test_scaled_corpus_dialects_stay_exact(self, ):
        # The E21 workload in miniature: dialected domains, shared facets.
        scaled = generate_scaled_corpus(120, schemata_per_domain=20)
        repo = MetadataRepository()
        for generated in scaled.schemata:
            repo.register(generated.schema)
        flat = CorpusIndex(repo)
        sharded = ShardedCorpusIndex(repo, n_shards=6)
        for query_name in scaled.names[::17]:
            query = scaled.by_name(query_name).schema
            assert sharded.top_candidates(
                query, limit=5, exclude=query_name
            ) == flat.top_candidates(query, limit=5, exclude=query_name)


class TestShardAssignment:
    def test_domain_aware_override_stays_exact(self, corpus, repository):
        # Route whole domains to shards: D<d>S<o> -> d mod n_shards.
        def by_domain(name: str) -> int:
            return int(name[1 : name.index("S")]) % 3

        flat = CorpusIndex(repository)
        sharded = ShardedCorpusIndex(repository, n_shards=3, shard_assign=by_domain)
        query = corpus.by_name("D2S1").schema
        assert sharded.top_candidates(query, limit=6) == flat.top_candidates(
            query, limit=6
        )
        # Every member of one domain shares one shard.
        assert {sharded.shard_of(n) for n in corpus.names if n.startswith("D4")} == {
            by_domain("D4S0")
        }

    def test_out_of_range_assignment_is_an_error(self, repository):
        sharded = ShardedCorpusIndex(
            repository, n_shards=2, shard_assign=lambda name: 5
        )
        with pytest.raises(ValueError):
            sharded.refresh()

    def test_rejects_non_positive_shard_count(self, repository):
        with pytest.raises(ValueError):
            ShardedCorpusIndex(repository, n_shards=0)


class TestShardedLifecycle:
    def test_one_registration_rebuilds_one_shard(self, corpus, repository):
        sharded = ShardedCorpusIndex(repository, n_shards=4)
        sharded.refresh()
        before = [stats.n_refreshes for stats in sharded.shard_stats()]
        repository.register(_renamed(corpus, "D0S0", "ZNEWCOMER"))
        assert sharded.is_stale()
        refresh = sharded.refresh()
        assert refresh.n_added == 1 and not sharded.is_stale()
        after = [stats.n_refreshes for stats in sharded.shard_stats()]
        rebuilt = [i for i in range(4) if after[i] > before[i]]
        assert rebuilt == [shard_of_name("ZNEWCOMER", 4)]

    def test_refresh_shard_leaves_the_rest_stale(self, corpus, repository):
        sharded = ShardedCorpusIndex(repository, n_shards=4)
        sharded.refresh()
        repository.register(_renamed(corpus, "D0S0", "ZNEWCOMER"))
        target = shard_of_name("ZNEWCOMER", 4)
        refresh = sharded.refresh_shard(target)
        assert refresh.n_added == 1
        assert sharded.is_stale()  # other shards still stamped older
        assert set(sharded.stale_shards()) == set(range(4)) - {target}
        sharded.refresh()
        assert not sharded.is_stale()

    def test_refresh_shard_validates_the_ordinal(self, repository):
        sharded = ShardedCorpusIndex(repository, n_shards=2)
        with pytest.raises(ValueError):
            sharded.refresh_shard(2)

    def test_unregister_is_removed_from_its_shard(self, corpus, repository):
        sharded = ShardedCorpusIndex(repository, n_shards=4)
        sharded.refresh()
        repository.unregister("D0S0")
        refresh = sharded.refresh()
        assert refresh.n_removed == 1
        assert "D0S0" not in sharded.names
        assert len(sharded) == len(repository)

    def test_monitoring_reads_never_refresh(self, corpus, repository):
        sharded = ShardedCorpusIndex(repository, n_shards=4)
        assert sharded.n_indexed() == 0        # nothing published yet
        assert all(s.n_indexed == 0 for s in sharded.shard_stats())
        sharded.refresh()
        repository.register(_renamed(corpus, "D0S0", "ZNEWCOMER"))
        assert sharded.n_indexed() == 90       # still the published snapshot
        assert len(sharded) == 91              # len() refreshes first

    def test_shards_partition_the_corpus(self, corpus, repository):
        sharded = ShardedCorpusIndex(repository, n_shards=5)
        sharded.refresh()
        stats = sharded.shard_stats()
        assert sum(s.n_indexed for s in stats) == 90
        assert sorted(sharded.names) == sorted(repository.schema_names())


class TestBulkRegister:
    def test_matches_a_register_loop_exactly(self, corpus):
        loop_repo, bulk_repo = MetadataRepository(), MetadataRepository()
        schemas = [corpus.by_name(name).schema for name in corpus.names[:30]]
        for schema in schemas:
            loop_repo.register(schema)
        written = bulk_repo.bulk_register_schemas(schemas, chunk_size=7)
        assert written == 30
        assert bulk_repo.schema_names() == loop_repo.schema_names()
        assert bulk_repo.generation == loop_repo.generation
        for name in loop_repo.schema_names():
            assert bulk_repo.schema_payload(name) == loop_repo.schema_payload(name)

    def test_identical_payloads_are_skipped(self, corpus, repository):
        generation = repository.generation
        schemas = [corpus.by_name(name).schema for name in corpus.names[:10]]
        written = repository.bulk_register_schemas(schemas)
        assert written == 0
        assert repository.generation == generation

    def test_duplicates_collapse_to_the_last_occurrence(self, corpus):
        repo = MetadataRepository()
        payload_v1 = schema_to_dict(corpus.by_name("D0S0").schema)
        payload_v2 = schema_to_dict(corpus.by_name("D0S1").schema)
        payload_v2["name"] = "D0S0"
        written = repo.bulk_register_schemas(
            [("D0S0", payload_v1), ("D0S0", payload_v2)]
        )
        assert written == 1
        assert repo.schema_payload("D0S0") == payload_v2

    def test_rejects_non_positive_chunk_size(self, corpus):
        with pytest.raises(ValueError):
            MetadataRepository().bulk_register_schemas(
                [corpus.by_name("D0S0").schema], chunk_size=0
            )


class TestIngest:
    def _jsonl(self, corpus, path, names, wrap_every=2):
        with path.open("w") as handle:
            for i, name in enumerate(names):
                payload = schema_to_dict(corpus.by_name(name).schema)
                line = (
                    {"name": name, "schema": payload} if i % wrap_every else payload
                )
                handle.write(json.dumps(line) + "\n")
        return path

    def test_jsonl_and_directory_loaders(self, corpus, tmp_path):
        jsonl = self._jsonl(corpus, tmp_path / "c.jsonl", corpus.names[:8])
        assert [name for name, _ in iter_schema_payloads(jsonl)] == corpus.names[:8]
        directory = tmp_path / "schemas"
        directory.mkdir()
        for name in corpus.names[:3]:
            (directory / f"{name}.json").write_text(
                json.dumps(schema_to_dict(corpus.by_name(name).schema))
            )
        assert len(list(iter_schema_payloads(directory))) == 3

    def test_missing_path_and_nameless_payload_fail(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(iter_schema_payloads(tmp_path / "nope.jsonl"))
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"elements": []}\n')
        with pytest.raises(ValueError, match="has no name"):
            list(iter_schema_payloads(bad))

    def test_ingest_warms_the_index(self, corpus, tmp_path):
        jsonl = self._jsonl(corpus, tmp_path / "c.jsonl", corpus.names[:20])
        repo = MetadataRepository()
        report = bulk_ingest(repo, iter_schema_payloads(jsonl))
        assert report.n_read == report.n_written == report.n_fingerprinted == 20
        assert report.schemata_per_second > 0
        refresh = CorpusIndex(repo).refresh()
        assert refresh.n_derived == 0 and refresh.n_from_fingerprints == 20
        # Re-ingesting the identical corpus is a no-op.
        again = bulk_ingest(repo, iter_schema_payloads(jsonl))
        assert again.n_written == 0 and again.n_skipped == 20

    def test_fingerprints_can_be_deferred(self, corpus):
        repo = MetadataRepository()
        schemas = [corpus.by_name(name).schema for name in corpus.names[:5]]
        report = bulk_ingest(repo, schemas, fingerprint=False)
        assert report.n_fingerprinted == 0
        refresh = CorpusIndex(repo).refresh()
        assert refresh.n_derived == 5  # derivation happened at refresh time

    def test_thread_executor_and_validation(self, corpus):
        repo = MetadataRepository()
        schemas = [corpus.by_name(name).schema for name in corpus.names[:5]]
        report = bulk_ingest(repo, schemas, executor="thread", max_workers=2)
        assert report.n_written == 5
        with pytest.raises(ValueError, match="executor"):
            bulk_ingest(repo, schemas, executor="rocket")


class TestRefreshWorker:
    def test_keeps_the_index_fresh(self, corpus, repository):
        sharded = ShardedCorpusIndex(repository, n_shards=3)
        worker = CorpusRefreshWorker(sharded, interval=0.05)
        worker.start()
        try:
            repository.register(_renamed(corpus, "D0S0", "ZLATE"))
            worker.request_refresh()
            deadline = threading.Event()
            for _ in range(200):
                if not sharded.is_stale():
                    break
                deadline.wait(0.02)
            assert not sharded.is_stale()
            stats = worker.stats()
            assert stats.running and stats.n_refreshes >= 1 and stats.n_errors == 0
        finally:
            worker.stop()
        assert not worker.running

    def test_start_is_idempotent_and_stop_is_safe_twice(self, repository):
        worker = CorpusRefreshWorker(ShardedCorpusIndex(repository), interval=0.1)
        assert worker.start() is worker.start()
        worker.stop()
        worker.stop()
        assert not worker.running

    def test_survives_a_failing_refresh(self, repository):
        class Exploding:
            def is_stale(self):
                return True

            def refresh(self):
                raise RuntimeError("backend went away")

        worker = CorpusRefreshWorker(Exploding(), interval=0.02)
        worker.start()
        try:
            for _ in range(100):
                if worker.stats().n_errors >= 2:
                    break
                threading.Event().wait(0.02)
            stats = worker.stats()
            assert stats.n_errors >= 2 and stats.running
            assert "backend went away" in stats.last_error
        finally:
            worker.stop()

    def test_rejects_non_positive_interval(self, repository):
        with pytest.raises(ValueError):
            CorpusRefreshWorker(ShardedCorpusIndex(repository), interval=0)


class TestConcurrencyHammer:
    """Registrations racing the worker racing queries; end state == serial."""

    def test_hammer_converges_to_the_serial_state(self, corpus):
        repo = MetadataRepository()
        for name in corpus.names[:45]:
            repo.register(corpus.by_name(name).schema)
        sharded = ShardedCorpusIndex(repo, n_shards=4)
        worker = CorpusRefreshWorker(sharded, interval=0.01)
        worker.start()
        errors: list[BaseException] = []
        go = threading.Event()

        def registrar():
            go.wait()
            try:
                for name in corpus.names[45:]:
                    repo.register(corpus.by_name(name).schema)
                    worker.request_refresh()
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        def querier():
            go.wait()
            try:
                for _ in range(40):
                    hits = sharded.top_candidates(
                        corpus.by_name("D0S0").schema, limit=5, exclude="D0S0"
                    )
                    assert len(hits) > 0
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=registrar)] + [
            threading.Thread(target=querier) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        go.set()
        for thread in threads:
            thread.join()
        worker.stop()
        assert errors == []
        # Convergence: the hammered index equals a from-scratch serial build.
        sharded.refresh()
        assert len(sharded) == len(repo) == 90
        serial = CorpusIndex(repo)
        query = corpus.by_name("D0S0").schema
        assert sharded.top_candidates(
            query, limit=8, exclude="D0S0"
        ) == serial.top_candidates(query, limit=8, exclude="D0S0")


class TestStatsRoundTrips:
    @given(
        shard=st.integers(min_value=0, max_value=255),
        n_indexed=st.integers(min_value=0, max_value=10**6),
        built_generation=st.none() | st.integers(min_value=0, max_value=10**9),
        n_refreshes=st.integers(min_value=0, max_value=10**6),
        last_refresh_seconds=st.floats(
            min_value=0, allow_nan=False, allow_infinity=False
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_shard_stats(
        self, shard, n_indexed, built_generation, n_refreshes, last_refresh_seconds
    ):
        stats = ShardStats(
            shard=shard,
            n_indexed=n_indexed,
            built_generation=built_generation,
            n_refreshes=n_refreshes,
            last_refresh_seconds=last_refresh_seconds,
        )
        assert ShardStats.from_dict(json.loads(json.dumps(stats.to_dict()))) == stats

    @given(
        running=st.booleans(),
        interval_seconds=st.floats(
            min_value=0.001, allow_nan=False, allow_infinity=False
        ),
        n_cycles=st.integers(min_value=0, max_value=10**9),
        n_refreshes=st.integers(min_value=0, max_value=10**9),
        n_errors=st.integers(min_value=0, max_value=10**9),
        last_refresh_seconds=st.floats(
            min_value=0, allow_nan=False, allow_infinity=False
        ),
        last_error=st.text(max_size=80),
    )
    @settings(max_examples=40, deadline=None)
    def test_worker_stats(
        self,
        running,
        interval_seconds,
        n_cycles,
        n_refreshes,
        n_errors,
        last_refresh_seconds,
        last_error,
    ):
        stats = RefreshWorkerStats(
            running=running,
            interval_seconds=interval_seconds,
            n_cycles=n_cycles,
            n_refreshes=n_refreshes,
            n_errors=n_errors,
            last_refresh_seconds=last_refresh_seconds,
            last_error=last_error,
        )
        assert (
            RefreshWorkerStats.from_dict(json.loads(json.dumps(stats.to_dict())))
            == stats
        )


class TestServiceIntegration:
    def test_corpus_match_is_identical_with_shards(self, corpus, repository):
        flat = MatchService(repository=repository)
        sharded = MatchService(repository=repository, corpus_shards=4)
        request = CorpusMatchRequest(source="D1S0", top_k=3)
        expected = flat.corpus_match(request)
        actual = sharded.corpus_match(request)
        assert [c.target_name for c in actual.candidates] == [
            c.target_name for c in expected.candidates
        ]
        for got, want in zip(actual.candidates, expected.candidates):
            assert got.retrieval_score == want.retrieval_score
            assert got.match_score == want.match_score

    def test_corpus_status_reports_shards_and_worker(self, repository):
        service = MatchService(repository=repository, corpus_shards=3)
        assert service.corpus_status() == {"initialized": False}
        service.start_corpus_refresh(interval=0.1)
        try:
            status = service.corpus_status()
            assert status["initialized"] and status["n_shards"] == 3
            assert len(status["shards"]) == 3
            assert status["refresh_worker"]["running"] is True
            assert RefreshWorkerStats.from_dict(status["refresh_worker"])
        finally:
            service.stop_corpus_refresh()
        assert "refresh_worker" not in service.corpus_status()

    def test_unsharded_service_status_has_no_shard_section(self, repository):
        service = MatchService(repository=repository)
        service.corpus_index().refresh()
        status = service.corpus_status()
        assert status["initialized"] and "shards" not in status
        assert status["n_indexed"] == 90

    def test_service_validates_corpus_shards(self, repository):
        with pytest.raises(ValueError):
            MatchService(repository=repository, corpus_shards=0)

    def test_healthz_payload_carries_the_corpus_section(self, repository):
        from repro.server.app import MatchServer

        service = MatchService(repository=repository, corpus_shards=2)
        server = MatchServer(service, port=0)
        try:
            payload = server.healthz_payload()
            assert payload["corpus"] == {"initialized": False}
            service.corpus_index().refresh()
            assert server.healthz_payload()["corpus"]["n_shards"] == 2
            assert server.metrics_payload()["corpus"]["initialized"] is True
        finally:
            server.server_close()
