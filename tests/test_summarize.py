"""Summaries, manual/automatic summarizers, concept matching, quality."""

import pytest

from repro.match import HarmonyMatchEngine
from repro.summarize import (
    ImportanceSummarizer,
    Summary,
    TokenClusterSummarizer,
    concept_match_matrix,
    match_concepts,
    summarize_by_roots,
    summarize_with_labels,
    summary_agreement,
)
from repro.summarize.quality import inverse_purity, pairwise_f1, purity


class TestSummary:
    def test_add_and_assign(self, sample_relational):
        summary = Summary(sample_relational)
        concept = summary.add_concept("Event")
        summary.assign("all_event_vitals", concept.concept_id)
        assert summary.concept_of("all_event_vitals").label == "Event"
        assert summary.elements_of(concept.concept_id) == ["all_event_vitals"]

    def test_assign_subtree(self, sample_relational):
        summary = Summary(sample_relational)
        concept = summary.add_concept("Person")
        count = summary.assign_subtree("person_master", concept.concept_id)
        assert count == 6  # table + 5 columns
        assert summary.concept_of("person_master.birth_dt").label == "Person"

    def test_one_concept_per_element(self, sample_relational):
        summary = Summary(sample_relational)
        first = summary.add_concept("A")
        second = summary.add_concept("B")
        summary.assign("person_master", first.concept_id)
        summary.assign("person_master", second.concept_id)
        assert summary.concept_of("person_master").label == "B"

    def test_duplicate_concept_id_rejected(self, sample_relational):
        summary = Summary(sample_relational)
        summary.add_concept("Event")
        with pytest.raises(ValueError):
            summary.add_concept("Event")

    def test_unknown_element_rejected(self, sample_relational):
        summary = Summary(sample_relational)
        concept = summary.add_concept("X")
        with pytest.raises(KeyError):
            summary.assign("missing", concept.concept_id)

    def test_unknown_concept_rejected(self, sample_relational):
        summary = Summary(sample_relational)
        with pytest.raises(KeyError):
            summary.assign("person_master", "missing")
        with pytest.raises(KeyError):
            summary.elements_of("missing")

    def test_coverage_and_unassigned(self, sample_relational):
        summary = Summary(sample_relational)
        concept = summary.add_concept("Person")
        summary.assign_subtree("person_master", concept.concept_id)
        assert summary.coverage() == pytest.approx(6 / 15)
        assert "all_event_vitals" in summary.unassigned_ids()

    def test_concept_sizes(self, sample_relational):
        summary = Summary(sample_relational)
        concept = summary.add_concept("Person")
        summary.assign_subtree("person_master", concept.concept_id)
        assert summary.concept_sizes() == {concept.concept_id: 6}


class TestManualSummarizers:
    def test_summarize_by_roots(self, sample_relational):
        summary = summarize_by_roots(sample_relational)
        assert len(summary) == 3
        assert summary.coverage() == 1.0
        labels = {concept.label for concept in summary.concepts}
        # "ALL" is an English stopword and is dropped by the labeler.
        assert "Event Vitals" in labels

    def test_summarize_by_roots_subset(self, sample_relational):
        summary = summarize_by_roots(sample_relational, roots=["person_master"])
        assert len(summary) == 1
        assert summary.coverage() < 1.0

    def test_summarize_with_labels_merges_shared_labels(self, sample_relational):
        summary = summarize_with_labels(
            sample_relational,
            {"person_master": "Person", "active_persons": "Person",
             "all_event_vitals": "Event"},
        )
        assert len(summary) == 2
        person_elements = summary.elements_of(
            next(c.concept_id for c in summary.concepts if c.label == "Person")
        )
        assert "person_master" in person_elements
        assert "active_persons" in person_elements


class TestAutoSummarizers:
    def test_importance_keeps_k(self, sample_relational):
        summary = ImportanceSummarizer(k=2).summarize(sample_relational)
        assert len(summary) == 2

    def test_importance_prefers_bigger_documented_tables(self, sample_relational):
        summarizer = ImportanceSummarizer(k=2)
        summary = summarizer.summarize(sample_relational)
        labels = {concept.label for concept in summary.concepts}
        # The two real tables outrank the 3-element view.
        assert not any("Active" in label for label in labels)

    def test_importance_validates_k(self):
        with pytest.raises(ValueError):
            ImportanceSummarizer(k=0)

    def test_token_cluster_groups_by_head(self, sample_relational):
        summary = TokenClusterSummarizer().summarize(sample_relational)
        # PERSON_MASTER and ACTIVE_PERSONS share the "person" head token
        # only if "active" is dropped -- heads differ here, so >= 2 concepts.
        assert 1 <= len(summary) <= 3
        assert summary.coverage() == 1.0


class TestConceptMatching:
    def test_concept_matrix_and_matches(self, sample_relational, sample_xml):
        result = HarmonyMatchEngine().match(sample_relational, sample_xml)
        source_summary = summarize_by_roots(sample_relational)
        target_summary = summarize_by_roots(sample_xml)
        concepts_a, concepts_b, scores = concept_match_matrix(
            source_summary, target_summary, result
        )
        assert scores.shape == (len(concepts_a), len(concepts_b))
        matches = match_concepts(
            source_summary, target_summary, result, threshold=0.02
        )
        assert matches
        pairs = {(m.source_label, m.target_label) for m in matches}
        assert ("Person Master", "Individual") in pairs

    def test_one_to_one_constraint(self, sample_relational, sample_xml):
        result = HarmonyMatchEngine().match(sample_relational, sample_xml)
        matches = match_concepts(
            summarize_by_roots(sample_relational),
            summarize_by_roots(sample_xml),
            result,
            threshold=0.0,
        )
        sources = [m.source_concept_id for m in matches]
        targets = [m.target_concept_id for m in matches]
        assert len(sources) == len(set(sources))
        assert len(targets) == len(set(targets))


class TestQuality:
    def _two_summaries(self, schema):
        reference = summarize_by_roots(schema)
        candidate = summarize_with_labels(
            schema,
            {root.element_id: "Everything" for root in schema.roots()},
        )
        return candidate, reference

    def test_perfect_agreement(self, sample_relational):
        reference = summarize_by_roots(sample_relational)
        report = summary_agreement(reference, reference)
        assert report["purity"] == 1.0
        assert report["inverse_purity"] == 1.0
        assert report["pairwise_f1"] == 1.0

    def test_lumping_hurts_purity_not_inverse(self, sample_relational):
        candidate, reference = self._two_summaries(sample_relational)
        assert purity(candidate, reference) < 1.0
        assert inverse_purity(candidate, reference) == 1.0

    def test_pairwise_f1_between_zero_and_one(self, sample_relational):
        candidate, reference = self._two_summaries(sample_relational)
        assert 0.0 < pairwise_f1(candidate, reference) < 1.0

    def test_empty_candidate(self, sample_relational):
        empty = Summary(sample_relational)
        reference = summarize_by_roots(sample_relational)
        assert purity(empty, reference) == 0.0
        assert pairwise_f1(empty, reference) == 0.0
