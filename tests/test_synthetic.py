"""The synthetic substrate: ontology, naming, generator, case study, corpus."""

import random

import pytest

from repro.synthetic import (
    DomainOntology,
    NamingStyle,
    PairSpec,
    allocate,
    case_study,
    generate_clustered_corpus,
    generate_pair,
    generate_schema,
    perturb_gloss,
    render_name,
)
from repro.synthetic.casestudy import (
    PAPER_SA_CONCEPTS,
    PAPER_SA_ELEMENTS,
    PAPER_SB_CONCEPTS,
    PAPER_SB_ELEMENTS,
    PAPER_SB_MATCHED_ELEMENTS,
    PAPER_SB_UNMATCHED_ELEMENTS,
    PAPER_SHARED_CONCEPTS,
    extended_study,
)
from repro.synthetic.generator import facet_order


class TestOntology:
    def test_enough_concept_identities_for_the_case_study(self):
        ontology = DomainOntology()
        # 140 + 27 SB-only + family extensions all fit.
        assert ontology.n_combinations > 250

    def test_facet_universe_deduplicates(self):
        ontology = DomainOntology()
        for key in ("person", "person.medical", "supply.qualification"):
            universe = ontology.facet_universe(key)
            tokens = [facet.tokens for facet in universe]
            assert len(tokens) == len(set(tokens))

    def test_universe_large_enough(self):
        ontology = DomainOntology()
        sizes = [len(ontology.facet_universe(key)) for key in ontology.concept_keys()]
        assert min(sizes) >= 18

    def test_sample_concepts_distinct_and_excluding(self):
        ontology = DomainOntology()
        rng = random.Random(1)
        first = ontology.sample_concepts(10, rng)
        second = ontology.sample_concepts(10, rng, exclude=set(first))
        assert len(set(first)) == 10
        assert not set(first) & set(second)

    def test_sample_too_many(self):
        ontology = DomainOntology()
        with pytest.raises(ValueError):
            ontology.sample_concepts(10_000, random.Random(0))

    def test_facet_order_deterministic_across_calls(self):
        ontology = DomainOntology()
        first = facet_order(ontology, "person.medical")
        second = facet_order(DomainOntology(), "person.medical")
        assert [f.tokens for f in first] == [f.tokens for f in second]


class TestAllocate:
    def test_exact_total(self):
        shares = allocate(10, [5, 5, 5])
        assert sum(shares) == 10

    def test_respects_caps(self):
        shares = allocate(10, [2, 3, 100])
        assert sum(shares) == 10
        assert shares[0] <= 2 and shares[1] <= 3

    def test_minimum(self):
        shares = allocate(10, [5, 5, 5], minimum=2)
        assert all(share >= 2 for share in shares)

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            allocate(100, [1, 1])

    def test_minimum_overflow_raises(self):
        with pytest.raises(ValueError):
            allocate(1, [5, 5], minimum=2)

    def test_zero_total(self):
        assert allocate(0, [3, 3]) == [0, 0]


class TestNaming:
    def test_case_renderings(self):
        rng = random.Random(0)
        clean = NamingStyle.clean()
        assert render_name(("date", "begin"), clean, rng) == "date_begin"
        upper = NamingStyle(case="upper_snake", synonym_probability=0,
                            abbreviate_probability=0, drop_probability=0,
                            filler_probability=0, numeric_suffix_probability=0)
        assert render_name(("date", "begin"), upper, rng) == "DATE_BEGIN"
        pascal = NamingStyle(case="pascal", synonym_probability=0,
                             abbreviate_probability=0, drop_probability=0,
                             filler_probability=0, numeric_suffix_probability=0)
        assert render_name(("date", "begin"), pascal, rng) == "DateBegin"
        camel = NamingStyle(case="camel", synonym_probability=0,
                            abbreviate_probability=0, drop_probability=0,
                            filler_probability=0, numeric_suffix_probability=0)
        assert render_name(("date", "begin"), camel, rng) == "dateBegin"

    def test_never_empty(self):
        style = NamingStyle(drop_probability=1.0)
        rng = random.Random(5)
        for _ in range(20):
            assert render_name(("date", "begin", "info"), style, rng)

    def test_numeric_suffix_applied(self):
        style = NamingStyle(case="upper_snake", numeric_suffix_probability=1.0,
                            synonym_probability=0, abbreviate_probability=0,
                            drop_probability=0, filler_probability=0)
        name = render_name(("date", "begin"), style, random.Random(1))
        assert name.startswith("DATE_BEGIN_")
        assert name.rsplit("_", 1)[1].isdigit()

    def test_invalid_style(self):
        with pytest.raises(ValueError):
            NamingStyle(case="shouty")
        with pytest.raises(ValueError):
            NamingStyle(synonym_probability=2.0)

    def test_perturb_gloss_keeps_text(self):
        style = NamingStyle.clean()
        gloss = "date on which the event began"
        assert perturb_gloss(gloss, style, random.Random(0)) == gloss

    def test_perturb_gloss_substitutes(self):
        style = NamingStyle(synonym_probability=1.0)
        result = perturb_gloss("the event began", style, random.Random(3))
        assert result != "the event began"


class TestGeneratePair:
    def test_counts_hit_spec(self, small_pair):
        spec = PairSpec()
        assert len(small_pair.source.schema) == spec.source_elements
        assert len(small_pair.target.schema) == spec.target_elements
        assert len(small_pair.source.schema.roots()) == spec.n_source_concepts
        assert len(small_pair.target.schema.roots()) == spec.n_target_concepts
        assert len(small_pair.matched_target_ids) == spec.matched_target_elements

    def test_deterministic(self):
        first = generate_pair(PairSpec(), seed=7)
        second = generate_pair(PairSpec(), seed=7)
        assert [e.name for e in first.source.schema] == [
            e.name for e in second.source.schema
        ]
        assert first.truth_pairs == second.truth_pairs

    def test_different_seeds_differ(self):
        first = generate_pair(PairSpec(), seed=7)
        second = generate_pair(PairSpec(), seed=8)
        assert [e.name for e in first.source.schema] != [
            e.name for e in second.source.schema
        ]

    def test_truth_pairs_reference_real_elements(self, small_pair):
        for source_id, target_id in small_pair.truth_pairs:
            assert source_id in small_pair.source.schema
            assert target_id in small_pair.target.schema

    def test_shared_roots_in_truth(self, small_pair):
        for key in small_pair.shared_concepts:
            source_root = small_pair.source.root_of_concept(key)
            target_root = small_pair.target.root_of_concept(key)
            assert (source_root, target_root) in small_pair.truth_pairs

    def test_truth_summaries_cover_everything(self, small_pair):
        assert small_pair.source.truth_summary().coverage() == 1.0
        assert small_pair.target.truth_summary().coverage() == 1.0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PairSpec(n_shared_concepts=99)
        with pytest.raises(ValueError):
            PairSpec(matched_target_elements=1)
        with pytest.raises(ValueError):
            PairSpec(source_elements=5)

    def test_kinds(self, small_pair):
        assert small_pair.source.schema.kind == "relational"
        assert small_pair.target.schema.kind == "xml"


class TestHardMode:
    """The decoy / abbreviation-gradient knobs that make E23's hard tier."""

    def test_defaults_leave_generation_bit_identical(self, small_pair):
        explicit = generate_pair(
            PairSpec(decoys=0, abbrev_gradient=0.0), seed=42
        )
        assert explicit.truth_pairs == small_pair.truth_pairs
        assert [e.name for e in explicit.target.schema] == [
            e.name for e in small_pair.target.schema
        ]
        assert [e.name for e in explicit.source.schema] == [
            e.name for e in small_pair.source.schema
        ]
        assert explicit.decoy_target_ids == set()

    def test_decoys_are_planted_and_never_truth(self):
        pair = generate_pair(PairSpec(decoys=15), seed=42)
        assert len(pair.decoy_target_ids) == 15
        assert pair.decoy_target_ids <= {
            e.element_id for e in pair.target.schema
        }
        assert not pair.decoy_target_ids & pair.matched_target_ids
        # Decoys live under target-only concept roots, as non-root children.
        shared = set(pair.shared_concepts)
        for decoy_id in pair.decoy_target_ids:
            parent = pair.target.schema.parent(decoy_id)
            assert parent is not None
            assert pair.target.concept_of_root[parent.element_id] not in shared
        # The baseline ground truth is untouched.
        base = generate_pair(PairSpec(), seed=42)
        assert pair.truth_pairs == base.truth_pairs

    def test_decoys_are_deterministic(self):
        first = generate_pair(PairSpec(decoys=10), seed=3)
        second = generate_pair(PairSpec(decoys=10), seed=3)
        assert first.decoy_target_ids == second.decoy_target_ids
        assert [e.name for e in first.target.schema] == [
            e.name for e in second.target.schema
        ]

    def test_abbrev_gradient_drifts_shared_concepts_only(self):
        base = generate_pair(PairSpec(), seed=11)
        hard = generate_pair(PairSpec(abbrev_gradient=0.8), seed=11)

        # Ground truth is preserved at the *identity* level (element ids
        # derive from the drifted surface names, so compare concept+facet).
        def identities(pair):
            return {
                (
                    pair.source.facet_of_element[source_id],
                    pair.target.facet_of_element[target_id],
                )
                for source_id, target_id in pair.truth_pairs
            }

        assert identities(hard) == identities(base)
        assert len(hard.truth_pairs) == len(base.truth_pairs)

        # Shared-concept renderings drift...
        def names_by_identity(generated):
            return {
                identity: generated.schema.element(element_id).name
                for element_id, identity in generated.facet_of_element.items()
            }

        base_names = names_by_identity(base.source)
        hard_names = names_by_identity(hard.source)
        truth_identities = {s for s, _ in identities(base)}
        changed = sum(
            1
            for identity in truth_identities
            if base_names[identity] != hard_names[identity]
        )
        assert changed > 0
        # ...and the matching task measurably hardens.
        from repro.match import HarmonyMatchEngine

        def truth_score_mean(pair):
            result = HarmonyMatchEngine().match(
                pair.source.schema, pair.target.schema
            )
            scores = [
                result.matrix.score(source_id, target_id)
                for source_id, target_id in pair.truth_pairs
            ]
            return sum(scores) / len(scores)

        assert truth_score_mean(hard) < truth_score_mean(base)

    def test_hard_mode_validation(self):
        with pytest.raises(ValueError):
            PairSpec(decoys=-1)
        with pytest.raises(ValueError):
            PairSpec(abbrev_gradient=1.5)
        with pytest.raises(ValueError):
            PairSpec(
                n_source_concepts=5,
                n_target_concepts=5,
                n_shared_concepts=5,
                decoys=3,
            )


class TestCaseStudy:
    def test_paper_counts(self):
        pair = case_study()
        assert len(pair.source.schema) == PAPER_SA_ELEMENTS
        assert len(pair.target.schema) == PAPER_SB_ELEMENTS
        assert len(pair.source.schema.roots()) == PAPER_SA_CONCEPTS
        assert len(pair.target.schema.roots()) == PAPER_SB_CONCEPTS
        assert len(pair.shared_concepts) == PAPER_SHARED_CONCEPTS
        assert len(pair.matched_target_ids) == PAPER_SB_MATCHED_ELEMENTS
        assert len(pair.unmatched_target_ids) == PAPER_SB_UNMATCHED_ELEMENTS

    def test_overlap_fraction_is_34_percent(self):
        pair = case_study()
        assert pair.overlap_fraction_target() == pytest.approx(0.3406, abs=1e-3)

    def test_cached(self):
        assert case_study() is case_study()

    def test_extended_family(self):
        study = extended_study()
        assert set(study.family) == {"SA", "SC", "SD", "SE", "SF"}
        sa_concepts = study.family["SA"].concept_keys
        for name in ("SC", "SD", "SE", "SF"):
            other = study.family[name].concept_keys
            assert other & sa_concepts          # overlaps SA
            assert other - sa_concepts          # and has its own material
        # The family core is shared by all four new schemata but not SA.
        core = (
            study.family["SC"].concept_keys
            & study.family["SD"].concept_keys
            & study.family["SE"].concept_keys
            & study.family["SF"].concept_keys
        ) - sa_concepts
        assert len(core) >= 5


class TestGenerateSchema:
    def test_prefix_rule_gives_consistent_overlap(self):
        left = generate_schema(
            "L", ["person", "vehicle"], [5, 5],
            style=NamingStyle.clean(), kind="relational", seed="L",
        )
        right = generate_schema(
            "R", ["person", "event"], [3, 4],
            style=NamingStyle.clean(), kind="xml", seed="R",
        )
        left_person = {
            tokens for key, tokens in left.facet_of_element.values()
            if key == "person" and tokens
        }
        right_person = {
            tokens for key, tokens in right.facet_of_element.values()
            if key == "person" and tokens
        }
        # Prefix rule: the smaller side's facets are a subset of the larger's.
        assert right_person <= left_person

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            generate_schema("X", ["person"], [1, 2],
                            style=NamingStyle.clean(), kind="xml", seed=0)


class TestClusteredCorpus:
    def test_structure(self):
        corpus = generate_clustered_corpus(
            n_domains=3, schemata_per_domain=3, seed=11
        )
        assert len(corpus.schemata) == 9
        assert set(corpus.labels()) == {0, 1, 2}
        assert len(corpus.domain_concepts) == 3

    def test_domains_disjoint(self):
        corpus = generate_clustered_corpus(n_domains=3, schemata_per_domain=2, seed=11)
        for i in range(3):
            for j in range(i + 1, 3):
                assert not set(corpus.domain_concepts[i]) & set(
                    corpus.domain_concepts[j]
                )

    def test_by_name(self):
        corpus = generate_clustered_corpus(n_domains=2, schemata_per_domain=2, seed=11)
        assert corpus.by_name("D0S0").schema.name == "D0S0"
        with pytest.raises(KeyError):
            corpus.by_name("missing")

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_clustered_corpus(concepts_per_schema=20, concepts_per_domain=10)
