"""The telemetry subsystem: spans, histograms, fleet stats, trace logs.

Unit level: the tracer's span trees (nesting, validation, sampling), the
fixed-bucket latency histograms (quantiles, exact merges), the mmap-ready
stats board (record/snapshot/aggregate), and the slow-request trace log
(write/read/summarise).

Integration level: traces threaded through MatchService and over HTTP
(envelope ``trace`` block, ``X-Harmonia-Trace`` header, client stamping),
``/metrics`` under a concurrent thread-pool hammer (no lost updates:
histogram counts must equal requests served), prefork fleet aggregation
(any worker's ``/metrics`` fleet totals equal the sum of per-worker
totals), and the ``repro trace`` CLI over a real ``--trace-log`` file.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.repository import MetadataRepository
from repro.server import MatchServer, MatchServiceClient
from repro.service import (
    MatchOptions,
    MatchRequest,
    MatchResponse,
    MatchService,
)
from repro.synthetic import generate_clustered_corpus
from repro.telemetry import (
    BUCKET_BOUNDS_SECONDS,
    N_BUCKETS,
    FleetStats,
    LatencyHistogram,
    StatsBoard,
    Trace,
    TraceLogWriter,
    Tracer,
    activate_trace,
    aggregate_snapshots,
    bucket_index,
    current_trace,
    read_trace_log,
    span,
    stage_totals,
    summarize_trace_log,
    validate_trace,
)


# ----------------------------------------------------------------------
# Tracer: span trees
# ----------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_form_a_valid_tree(self):
        trace = Tracer().start()
        with activate_trace(trace):
            with span("service.match"):
                with span("route.compile", route="exact"):
                    pass
                with span("engine.score"):
                    pass
        payload = trace.to_dict()
        assert validate_trace(payload) == []
        kinds = [entry["kind"] for entry in payload["spans"]]
        assert kinds == ["service.match", "route.compile", "engine.score"]
        root = payload["spans"][0]
        assert root["parent"] is None
        assert payload["spans"][1]["parent"] == 0
        assert payload["spans"][1]["attrs"] == {"route": "exact"}
        assert payload["spans"][2]["parent"] == 0

    def test_span_without_active_trace_is_a_noop(self):
        assert current_trace() is None
        with span("engine.score") as entered:
            # The null span accepts annotations and nesting silently.
            entered.annotate(ignored=True)
            with span("cache.get"):
                pass
        assert current_trace() is None

    def test_disabled_tracer_starts_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.start() is None
        assert tracer.sample() is False

    def test_sampling_quota_is_deterministic(self):
        tracer = Tracer(sample_rate=0.25)
        admitted = [tracer.sample() for _ in range(8)]
        assert sum(admitted) == 2
        # The pattern is a pure function of the arrival index.
        again = Tracer(sample_rate=0.25)
        assert [again.sample() for _ in range(8)] == admitted

    def test_validate_trace_flags_broken_trees(self):
        assert validate_trace({"spans": []})  # no id, no spans
        bad_parent = {
            "trace_id": "t",
            "total_seconds": 1.0,
            "spans": [
                {"kind": "a", "parent": None, "start_seconds": 0.0, "seconds": 1.0},
                {"kind": "b", "parent": 7, "start_seconds": 0.1, "seconds": 0.1},
            ],
        }
        assert any("parent" in problem for problem in validate_trace(bad_parent))

    def test_stage_totals_sums_by_kind(self):
        trace = Tracer().start()
        with activate_trace(trace):
            with span("service.match"):
                with span("engine.score"):
                    pass
                with span("engine.score"):
                    pass
        totals = stage_totals(trace.to_dict())
        assert set(totals) == {"service.match", "engine.score"}
        assert totals["engine.score"] >= 0.0
        assert totals["service.match"] >= totals["engine.score"]


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucket_index_brackets_the_bounds(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(BUCKET_BOUNDS_SECONDS[0]) == 1
        assert bucket_index(999.0) == N_BUCKETS - 1

    def test_observe_and_quantiles(self):
        histogram = LatencyHistogram()
        for _ in range(98):
            histogram.observe(0.002)
        histogram.observe(4.0)
        histogram.observe(4.0)
        snapshot = histogram.to_dict()
        assert snapshot["count"] == 100
        assert sum(snapshot["buckets"]) == 100
        # p50 interpolates inside the (0.001, 0.0025] bucket.
        assert 0.001 <= snapshot["p50"] <= 0.0025
        # The 99th rank lands on the two slow observations.
        assert snapshot["p99"] > 2.0

    def test_merge_is_exact_bucket_addition(self):
        left, right = LatencyHistogram(), LatencyHistogram()
        for value in (0.001, 0.02, 0.3):
            left.observe(value)
            right.observe(value)
        merged = LatencyHistogram()
        merged.merge(left)
        merged.merge(right)
        assert merged.to_dict()["count"] == 6
        assert merged.to_dict()["buckets"] == [
            a + b
            for a, b in zip(left.to_dict()["buckets"], right.to_dict()["buckets"])
        ]


# ----------------------------------------------------------------------
# The stats board and fleet aggregation
# ----------------------------------------------------------------------
class TestStatsBoard:
    def test_record_and_snapshot(self):
        board = StatsBoard()
        board.set_pid(123)
        board.record_endpoint("/match", 0.01, cache="miss")
        board.record_endpoint("/match", 0.02, cache="hit")
        board.record_endpoint("/nope", 0.01, error=True)
        snapshot = board.snapshot()
        assert snapshot["pid"] == 123
        match_block = snapshot["endpoints"]["/match"]
        assert match_block["requests"] == 2
        assert match_block["cache_hits"] == 1
        assert match_block["cache_misses"] == 1
        assert match_block["latency"]["count"] == 2
        assert snapshot["endpoints"]["(unknown)"]["errors"] == 1

    def test_record_trace_folds_span_kinds(self):
        board = StatsBoard()
        trace = Tracer().start()
        with activate_trace(trace):
            with span("service.match"):
                with span("engine.score"):
                    pass
        board.record_trace(trace.to_dict())
        spans = board.snapshot()["spans"]
        assert spans["service.match"]["count"] == 1
        assert spans["engine.score"]["count"] == 1

    def test_aggregate_sums_counters_and_buckets(self):
        boards = [StatsBoard(), StatsBoard()]
        for index, board in enumerate(boards):
            board.set_pid(index + 1)
            for _ in range(5 * (index + 1)):
                board.record_endpoint("/match", 0.005, cache="miss")
        totals = aggregate_snapshots([board.snapshot() for board in boards])
        assert totals["endpoints"]["/match"]["requests"] == 15
        assert totals["endpoints"]["/match"]["latency"]["count"] == 15

    def test_fleet_file_round_trip(self, tmp_path):
        path = str(tmp_path / "stats")
        FleetStats.create(path, n_workers=2)
        fleet = FleetStats.attach(path)
        try:
            for index in range(2):
                board = fleet.worker_board(index)
                board.set_pid(1000 + index)
                board.record_endpoint("/match", 0.01, cache="miss")
            # A SECOND attachment (another process in production) sees
            # both regions through the shared file.
            reader = FleetStats.attach(path)
            try:
                payload = reader.payload()
                assert payload["n_workers"] == 2
                assert len(payload["workers"]) == 2
                assert payload["totals"]["endpoints"]["/match"]["requests"] == 2
            finally:
                reader.close()
        finally:
            fleet.close()
        FleetStats.remove(path)
        assert not os.path.exists(path)


# ----------------------------------------------------------------------
# Trace log: write, read, summarise
# ----------------------------------------------------------------------
class TestTraceLog:
    def _trace_payload(self) -> dict:
        trace = Tracer().start()
        with activate_trace(trace):
            with span("service.match"):
                with span("engine.score"):
                    pass
        return trace.to_dict()

    def test_threshold_gates_writes(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        writer = TraceLogWriter(path, slow_ms=50.0)
        try:
            assert not writer.maybe_write("/match", self._trace_payload(), 0.01)
            assert writer.maybe_write("/match", self._trace_payload(), 0.2)
        finally:
            writer.close()
        records = list(read_trace_log(path))
        assert len(records) == 1
        assert records[0]["endpoint"] == "/match"
        assert validate_trace(records[0]) == []

    def test_summary_shares_and_percentiles(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        writer = TraceLogWriter(path, slow_ms=0.0)
        try:
            for _ in range(3):
                writer.maybe_write("/match", self._trace_payload(), 0.1)
        finally:
            writer.close()
        summary = summarize_trace_log(read_trace_log(path))
        assert summary["n_traces"] == 3
        assert summary["endpoints"] == {"/match": 3}
        assert "service.match" in summary["stages"]
        assert summary["stages"]["service.match"]["spans"] == 3

    def test_bad_json_names_the_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"trace_id": "x"}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            list(read_trace_log(str(path)))


# ----------------------------------------------------------------------
# Service-level tracing
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_service():
    corpus = generate_clustered_corpus(n_domains=2, schemata_per_domain=3, seed=7)
    repository = MetadataRepository()
    for generated in corpus.schemata:
        repository.register(generated.schema)
    service = MatchService(repository=repository)
    yield service, sorted(repository.schema_names())


class TestServiceTracing:
    def test_opt_in_returns_a_valid_span_tree(self, traced_service):
        service, names = traced_service
        response = service.match(
            MatchRequest(
                source=names[0], target=names[1],
                options=MatchOptions(trace=True),
            )
        )
        assert response.trace is not None
        assert validate_trace(response.trace) == []
        kinds = {entry["kind"] for entry in response.trace["spans"]}
        assert "service.match" in kinds
        assert "engine.score" in kinds or "runner.batch" in kinds

    def test_untraced_requests_carry_no_trace(self, traced_service):
        service, names = traced_service
        response = service.match(MatchRequest(source=names[0], target=names[1]))
        assert response.trace is None

    def test_trace_flag_never_changes_scores(self, traced_service):
        service, names = traced_service
        plain = service.match(MatchRequest(source=names[0], target=names[1]))
        traced = service.match(
            MatchRequest(
                source=names[0], target=names[1],
                options=MatchOptions(trace=True),
            )
        )
        assert [c.to_dict() for c in traced.correspondences] == [
            c.to_dict() for c in plain.correspondences
        ]

    def test_trace_survives_envelope_round_trip(self, traced_service):
        service, names = traced_service
        response = service.match(
            MatchRequest(
                source=names[0], target=names[1],
                options=MatchOptions(trace=True),
            )
        )
        rebuilt = MatchResponse.from_dict(json.loads(json.dumps(response.to_dict())))
        assert rebuilt.trace == response.trace


# ----------------------------------------------------------------------
# HTTP integration: headers, envelopes, concurrent metrics
# ----------------------------------------------------------------------
@pytest.fixture
def served(tmp_path):
    corpus = generate_clustered_corpus(n_domains=2, schemata_per_domain=3, seed=7)
    repository = MetadataRepository()
    for generated in corpus.schemata:
        repository.register(generated.schema)
    service = MatchService(repository=repository)
    server = MatchServer(
        service,
        port=0,
        trace_log=str(tmp_path / "slow.jsonl"),
        slow_ms=0.0,
    )
    worker = threading.Thread(target=server.serve_forever, daemon=True)
    worker.start()
    try:
        yield server, MatchServiceClient(server.url), sorted(
            repository.schema_names()
        )
    finally:
        server.shutdown()
        worker.join()
        server.server_close()


class TestHttpTracing:
    def test_opt_in_surfaces_header_and_envelope_fields(self, served):
        server, client, names = served
        response = client.match(
            MatchRequest(
                source=names[0], target=names[1],
                options=MatchOptions(trace=True),
            )
        )
        assert response.trace is not None
        assert validate_trace(response.trace) == []
        assert client.last_trace_id == response.trace["trace_id"]
        # Satellite: the client stamps transport headers onto the envelope.
        assert response.trace_id == response.trace["trace_id"]
        assert response.cache_status == "miss"

    def test_cache_hit_replays_the_stored_trace(self, served):
        server, client, names = served
        request = MatchRequest(
            source=names[0], target=names[1],
            options=MatchOptions(trace=True),
        )
        first = client.match(request)
        second = client.match(request)
        assert second.cache_status == "hit"
        assert second.trace == first.trace
        assert second.trace_id == first.trace_id

    def test_http_spans_include_cache_stages(self, served):
        server, client, names = served
        response = client.match(
            MatchRequest(
                source=names[0], target=names[1],
                options=MatchOptions(trace=True),
            )
        )
        # The envelope snapshot is taken before the response is cached, so
        # it sees cache.get but never cache.put ...
        kinds = {entry["kind"] for entry in response.trace["spans"]}
        assert "cache.get" in kinds
        assert "cache.put" not in kinds
        # ... while the slow-log copy of the SAME trace is serialised after
        # the full request and carries both cache stages.
        server.trace_writer.close()
        logged = list(read_trace_log(server.trace_writer.path))[-1]
        assert logged["trace_id"] == response.trace["trace_id"]
        logged_kinds = {entry["kind"] for entry in logged["spans"]}
        assert "cache.get" in logged_kinds
        assert "cache.put" in logged_kinds

    def test_slow_log_captures_the_request(self, served):
        server, client, names = served
        client.match(
            MatchRequest(
                source=names[0], target=names[1],
                options=MatchOptions(trace=True),
            )
        )
        server.trace_writer.close()
        records = list(read_trace_log(server.trace_writer.path))
        assert records, "slow_ms=0 must log every traced request"
        assert records[0]["endpoint"] == "/match"
        assert validate_trace(records[0]) == []

    def test_metrics_report_histograms_and_spans(self, served):
        server, client, names = served
        client.match(
            MatchRequest(
                source=names[0], target=names[1],
                options=MatchOptions(trace=True),
            )
        )
        metrics = client.metrics()
        match_block = metrics["endpoints"]["/match"]
        assert match_block["requests"] == 1
        assert match_block["latency"]["count"] == 1
        assert sum(match_block["latency"]["buckets"]) == 1
        assert metrics["latency_bucket_bounds"] == list(BUCKET_BOUNDS_SECONDS)
        assert metrics["spans"]["service.match"]["count"] == 1

    def test_healthz_reports_wall_clock_start(self, served):
        server, client, _ = served
        health = client.health()
        assert health["started_at_unix"] == pytest.approx(
            server.started_at_unix
        )
        assert health["started_at_unix"] > 1e9  # a real unix timestamp

    def test_concurrent_hammer_loses_no_updates(self, served):
        """Satellite: histogram counts equal requests served, exactly."""
        server, client, names = served
        n_threads, per_thread = 8, 6
        pairs = [
            (names[i % len(names)], names[(i + 1) % len(names)])
            for i in range(n_threads)
        ]

        def hammer(pair):
            local = MatchServiceClient(server.url)
            for index in range(per_thread):
                local.match(
                    MatchRequest(
                        source=pair[0], target=pair[1],
                        options=MatchOptions(
                            threshold=0.1 + index * 0.01, trace=True
                        ),
                    )
                )

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(hammer, pairs))
        metrics = client.metrics()
        match_block = metrics["endpoints"]["/match"]
        expected = n_threads * per_thread
        assert match_block["requests"] == expected
        assert match_block["latency"]["count"] == expected
        assert sum(match_block["latency"]["buckets"]) == expected
        assert match_block["cache_hits"] + match_block["cache_misses"] == expected


# ----------------------------------------------------------------------
# Prefork fleet aggregation (real subprocess, POSIX only)
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="process-pool serving is POSIX-only"
)
class TestFleetMetrics:
    def test_fleet_totals_equal_sum_of_workers(self, tmp_path):
        db_path = str(tmp_path / "fleet.db")
        corpus = generate_clustered_corpus(
            n_domains=2, schemata_per_domain=3, seed=41
        )
        with MetadataRepository(path=db_path, backend="pooled") as repository:
            for generated in corpus.schemata:
                repository.register(generated.schema)
            names = sorted(repository.schema_names())
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--db", db_path, "--workers", "2", "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            start_new_session=True,
            env={
                **os.environ,
                "PYTHONPATH": str(Path(repro.__file__).resolve().parents[1]),
            },
        )
        try:
            line = process.stdout.readline()
            assert "serving on http://" in line, f"unexpected announce: {line!r}"
            url = line.split("serving on ", 1)[1].split()[0]

            def hammer(index):
                local = MatchServiceClient(url, timeout=60.0)
                for step in range(4):
                    local.match(
                        MatchRequest(
                            source=names[index % len(names)],
                            target=names[(index + 1) % len(names)],
                            options=MatchOptions(threshold=0.1 + step * 0.01),
                        )
                    )

            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(hammer, range(4)))

            metrics = MatchServiceClient(url, timeout=60.0).metrics()
            fleet = metrics["fleet"]
            assert fleet["n_workers"] == 2
            # Exactness: fleet totals are the SUM of the per-worker
            # regions, with nothing lost and nothing double-counted.
            total = fleet["totals"]["endpoints"]["/match"]
            per_worker = [
                worker["endpoints"].get("/match", {"requests": 0})
                for worker in fleet["workers"]
            ]
            assert total["requests"] == 16
            assert total["requests"] == sum(
                block["requests"] for block in per_worker
            )
            assert total["latency"]["count"] == 16
        finally:
            if process.poll() is None:
                try:
                    os.killpg(os.getpgid(process.pid), signal.SIGKILL)
                except ProcessLookupError:
                    pass
            try:
                process.communicate(timeout=30)
            except (ValueError, subprocess.TimeoutExpired):
                pass


# ----------------------------------------------------------------------
# The `repro trace` CLI
# ----------------------------------------------------------------------
class TestTraceCli:
    def _write_log(self, tmp_path) -> str:
        path = str(tmp_path / "slow.jsonl")
        writer = TraceLogWriter(path, slow_ms=0.0)
        try:
            for _ in range(2):
                trace = Tracer().start()
                with activate_trace(trace):
                    with span("service.match"):
                        with span("engine.score"):
                            pass
                writer.maybe_write("/match", trace.to_dict(), 0.05)
        finally:
            writer.close()
        return path

    def test_table_summary(self, tmp_path, capsys):
        path = self._write_log(tmp_path)
        assert main(["trace", path]) == 0
        output = capsys.readouterr().out
        assert "traces: 2" in output
        assert "service.match" in output
        assert "engine.score" in output

    def test_json_summary(self, tmp_path, capsys):
        path = self._write_log(tmp_path)
        assert main(["trace", path, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_traces"] == 2

    def test_missing_file_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as exit_info:
            main(["trace", str(tmp_path / "absent.jsonl")])
        assert exit_info.value.code == 2

    def test_serve_flag_validation(self):
        with pytest.raises(SystemExit) as exit_info:
            main(["serve", "--slow-ms", "-1"])
        assert exit_info.value.code == 2
        with pytest.raises(SystemExit) as exit_info:
            main(["serve", "--trace-sample", "1.5"])
        assert exit_info.value.code == 2
