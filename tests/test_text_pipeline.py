"""Pipeline, stopwords, abbreviations, TF-IDF and thesaurus behaviour."""

import pytest

from repro.text.abbrev import AbbreviationTable
from repro.text.pipeline import LinguisticPipeline, TermBag
from repro.text.stopwords import ENGLISH_STOPWORDS, SCHEMA_STOPWORDS, is_stopword
from repro.text.tfidf import TfidfModel, cosine, tfidf_similarity_matrix
from repro.text.thesaurus import SynonymLexicon


class TestStopwords:
    def test_english_stopword(self):
        assert is_stopword("the")

    def test_schema_stopword_only_in_schema_mode(self):
        assert not is_stopword("id")
        assert is_stopword("id", schema_mode=True)

    def test_case_insensitive(self):
        assert is_stopword("The")

    def test_lists_disjoint_purpose(self):
        # "code" is schema noise but ordinary English keeps it.
        assert "code" in SCHEMA_STOPWORDS
        assert "code" not in ENGLISH_STOPWORDS


class TestAbbreviations:
    def test_expand_known(self):
        assert AbbreviationTable.default().expand("qty") == ["quantity"]

    def test_expand_multiword(self):
        assert AbbreviationTable.default().expand("dob") == ["date", "of", "birth"]

    def test_unknown_passthrough(self):
        assert AbbreviationTable.default().expand("zorp") == ["zorp"]

    def test_extend_does_not_mutate_default(self):
        default = AbbreviationTable.default()
        extended = default.extend({"posn": "position"})
        assert "posn" in extended
        assert "posn" not in default

    def test_expand_all_flattens(self):
        table = AbbreviationTable.default()
        assert table.expand_all(["dob", "qty"]) == [
            "date", "of", "birth", "quantity",
        ]

    def test_contains_and_len(self):
        table = AbbreviationTable({"a": "alpha"})
        assert "A" in table
        assert len(table) == 1

    def test_empty_table(self):
        assert AbbreviationTable.empty().expand("qty") == ["qty"]


class TestPipeline:
    def test_name_pipeline_drops_schema_noise(self):
        pipeline = LinguisticPipeline.for_names()
        # 'cd' expands via the default table; 'code' is schema noise.
        assert "code" not in pipeline.terms("EVENT_TYPE_CD")
        assert "event" in pipeline.terms("EVENT_TYPE_CD")

    def test_doc_pipeline_keeps_schema_words(self):
        pipeline = LinguisticPipeline.for_documentation()
        assert "code" in pipeline.terms("category code of the event")

    def test_digits_dropped(self):
        pipeline = LinguisticPipeline.for_names()
        assert pipeline.terms("DATE_BEGIN_156") == ["date", "begin"]

    def test_stemming_applied(self):
        pipeline = LinguisticPipeline.for_documentation()
        assert "match" in pipeline.terms("matching")

    def test_stemming_disabled(self):
        pipeline = LinguisticPipeline(use_stemming=False)
        assert "matching" in pipeline.terms("matching")

    def test_bag_counts_multiplicity(self):
        pipeline = LinguisticPipeline.for_documentation()
        bag = pipeline.bag("date date begin")
        assert dict(bag.counts)["date"] == 2

    def test_bag_many_unions(self):
        pipeline = LinguisticPipeline.for_documentation()
        bag = pipeline.bag_many(["date begin", "date end"])
        assert dict(bag.counts)["date"] == 2


class TestTermBag:
    def test_term_set(self):
        bag = TermBag.from_terms(["a", "b", "a"])
        assert bag.term_set == {"a", "b"}

    def test_total(self):
        assert TermBag.from_terms(["a", "b", "a"]).total == 3

    def test_union(self):
        merged = TermBag.from_terms(["a"]) | TermBag.from_terms(["a", "b"])
        assert dict(merged.counts) == {"a": 2, "b": 1}

    def test_bool(self):
        assert not TermBag.from_terms([])
        assert TermBag.from_terms(["x"])


class TestTfidf:
    def test_identical_docs_cosine_one(self):
        docs = [["a", "b"], ["a", "b"], ["c"]]
        model = TfidfModel(docs)
        assert cosine(model.vector(docs[0]), model.vector(docs[1])) == pytest.approx(1.0)

    def test_disjoint_docs_cosine_zero(self):
        model = TfidfModel([["a"], ["b"]])
        assert cosine(model.vector(["a"]), model.vector(["b"])) == 0.0

    def test_rare_term_outweighs_common(self):
        docs = [["common", "rare"], ["common"], ["common"], ["common", "other"]]
        model = TfidfModel(docs)
        assert model.idf("rare") > model.idf("common")

    def test_out_of_vocabulary_ignored(self):
        model = TfidfModel([["a"]])
        assert model.vector(["zzz"]) == {}
        assert model.idf("zzz") == 0.0

    def test_similarity_matrix_shape_and_range(self):
        matrix = tfidf_similarity_matrix([["a", "b"], ["c"]], [["a"], ["c"], ["d"]])
        assert matrix.shape == (2, 3)
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0

    def test_similarity_matrix_alignment(self):
        matrix = tfidf_similarity_matrix([["a"]], [["a"], ["b"]])
        assert matrix[0, 0] > matrix[0, 1]

    def test_empty_documents(self):
        matrix = tfidf_similarity_matrix([[]], [["a"]])
        assert matrix[0, 0] == 0.0


class TestThesaurus:
    def test_synonyms_detected(self):
        lexicon = SynonymLexicon.default()
        assert lexicon.are_synonyms("begin", "start")
        assert lexicon.are_synonyms("begin", "first")

    def test_surface_forms_stemmed(self):
        lexicon = SynonymLexicon.default()
        assert lexicon.are_synonyms("beginning", "started")

    def test_self_synonym_even_if_unlisted(self):
        lexicon = SynonymLexicon.default()
        assert lexicon.are_synonyms("frobnicator", "frobnicator")

    def test_non_synonyms(self):
        lexicon = SynonymLexicon.default()
        assert not lexicon.are_synonyms("vehicle", "person")

    def test_canonical_stability(self):
        lexicon = SynonymLexicon.default()
        assert lexicon.canonical("start") == lexicon.canonical("begin")

    def test_expand_includes_self(self):
        lexicon = SynonymLexicon.default()
        assert "begin" in lexicon.expand("begin")

    def test_empty_lexicon(self):
        lexicon = SynonymLexicon.empty()
        assert not lexicon.are_synonyms("begin", "start")
        assert len(lexicon) == 0

    def test_extend(self):
        lexicon = SynonymLexicon.empty().extend([("foo", "bar")])
        assert lexicon.are_synonyms("foo", "bar")

    def test_rejects_collapsing_synset(self):
        with pytest.raises(ValueError):
            SynonymLexicon([("run", "running")])  # both stem to 'run'
