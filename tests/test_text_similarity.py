"""String metrics: known values plus metric-space properties (hypothesis)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.similarity import (
    dice_coefficient,
    jaccard,
    jaro,
    jaro_winkler,
    lcs_similarity,
    levenshtein,
    levenshtein_similarity,
    longest_common_substring,
    monge_elkan,
    ngram_similarity,
    overlap_coefficient,
)

words = st.text(alphabet="abcdefghij", max_size=12)


class TestLevenshtein:
    def test_classic(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_identity(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_single_substitution(self):
        assert levenshtein("cat", "bat") == 1

    @given(words, words)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(words, words)
    def test_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(words)
    def test_identity_of_indiscernibles(self, a):
        assert levenshtein(a, a) == 0

    def test_similarity_normalisation(self):
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    def test_no_common(self):
        assert jaro("abc", "xyz") == 0.0

    @given(words, words)
    def test_bounds(self, a, b):
        assert 0.0 <= jaro(a, b) <= 1.0

    @given(words, words)
    def test_symmetry(self, a, b):
        assert jaro(a, b) == pytest.approx(jaro(b, a))


class TestJaroWinkler:
    def test_prefix_boost(self):
        assert jaro_winkler("prefixed", "prefixes") > jaro("prefixed", "prefixes")

    def test_known_value(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.9611, abs=1e-3)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    @given(words, words)
    def test_bounds(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0

    @given(words, words)
    def test_at_least_jaro(self, a, b):
        assert jaro_winkler(a, b) >= jaro(a, b) - 1e-12


class TestSetMetrics:
    def test_dice_known(self):
        assert dice_coefficient({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    def test_jaccard_known(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_overlap_known(self):
        assert overlap_coefficient({"a"}, {"a", "b", "c"}) == 1.0

    def test_both_empty_is_one(self):
        assert dice_coefficient([], []) == 1.0
        assert jaccard([], []) == 1.0
        assert overlap_coefficient([], []) == 1.0

    def test_one_empty_is_zero(self):
        assert dice_coefficient(["a"], []) == 0.0
        assert jaccard(["a"], []) == 0.0
        assert overlap_coefficient(["a"], []) == 0.0

    @given(st.sets(words, max_size=6), st.sets(words, max_size=6))
    def test_jaccard_leq_dice_leq_overlap(self, a, b):
        if a and b:
            assert jaccard(a, b) <= dice_coefficient(a, b) + 1e-12
            assert dice_coefficient(a, b) <= overlap_coefficient(a, b) + 1e-12

    @given(st.sets(words, max_size=6), st.sets(words, max_size=6))
    def test_symmetry(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)
        assert dice_coefficient(a, b) == dice_coefficient(b, a)


class TestNgramSimilarity:
    def test_related_words_nonzero(self):
        assert ngram_similarity("night", "nacht") > 0.0

    def test_identity(self):
        assert ngram_similarity("vehicle", "vehicle") == 1.0

    @given(words, words)
    def test_bounds(self, a, b):
        assert 0.0 <= ngram_similarity(a, b) <= 1.0


class TestLcs:
    def test_known(self):
        assert longest_common_substring("registration", "regno") == 3  # "reg"

    def test_empty(self):
        assert longest_common_substring("", "abc") == 0

    def test_similarity(self):
        assert lcs_similarity("abc", "abc") == 1.0
        assert lcs_similarity("", "") == 1.0
        assert lcs_similarity("a", "") == 0.0

    @given(words, words)
    def test_lcs_bounded_by_shorter(self, a, b):
        assert longest_common_substring(a, b) <= min(len(a), len(b))


class TestMongeElkan:
    def test_exact_tokens(self):
        assert monge_elkan(["date", "begin"], ["begin", "date"]) == pytest.approx(1.0)

    def test_empty_left(self):
        assert monge_elkan([], ["a"]) == 0.0

    def test_empty_right(self):
        assert monge_elkan(["a"], []) == 0.0

    @given(
        st.lists(words.filter(bool), min_size=1, max_size=4),
        st.lists(words.filter(bool), min_size=1, max_size=4),
    )
    def test_bounds(self, a, b):
        assert 0.0 <= monge_elkan(a, b) <= 1.0
