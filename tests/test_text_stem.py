"""Porter stemmer: canonical vocabulary and structural properties."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.stem import stem, stem_all

# Reference pairs checked against the canonical Porter implementation.
CANONICAL = {
    "caresses": "caress",
    "ponies": "poni",
    "ties": "ti",
    "caress": "caress",
    "cats": "cat",
    "feed": "feed",
    "agreed": "agre",
    "plastered": "plaster",
    "bled": "bled",
    "motoring": "motor",
    "sing": "sing",
    "conflated": "conflat",
    "troubled": "troubl",
    "sized": "size",
    "hopping": "hop",
    "tanned": "tan",
    "falling": "fall",
    "hissing": "hiss",
    "fizzed": "fizz",
    "failing": "fail",
    "filing": "file",
    "happy": "happi",
    "sky": "sky",
    "relational": "relat",
    "conditional": "condit",
    "rational": "ration",
    "valenci": "valenc",
    "hesitanci": "hesit",
    "digitizer": "digit",
    "conformabli": "conform",
    "radicalli": "radic",
    "differentli": "differ",
    "vileli": "vile",
    "analogousli": "analog",
    "vietnamization": "vietnam",
    "predication": "predic",
    "operator": "oper",
    "feudalism": "feudal",
    "decisiveness": "decis",
    "hopefulness": "hope",
    "callousness": "callous",
    "formaliti": "formal",
    "sensitiviti": "sensit",
    "sensibiliti": "sensibl",
    "triplicate": "triplic",
    "formative": "form",
    "formalize": "formal",
    "electriciti": "electr",
    "electrical": "electr",
    "hopeful": "hope",
    "goodness": "good",
    "revival": "reviv",
    "allowance": "allow",
    "inference": "infer",
    "airliner": "airlin",
    "gyroscopic": "gyroscop",
    "adjustable": "adjust",
    "defensible": "defens",
    "irritant": "irrit",
    "replacement": "replac",
    "adjustment": "adjust",
    "dependent": "depend",
    "adoption": "adopt",
    "homologou": "homolog",
    "communism": "commun",
    "activate": "activ",
    "angulariti": "angular",
    "homologous": "homolog",
    "effective": "effect",
    "bowdlerize": "bowdler",
    "probate": "probat",
    "rate": "rate",
    "cease": "ceas",
    "controll": "control",
    "roll": "roll",
    "matching": "match",
    "vehicles": "vehicl",
}


class TestCanonicalVocabulary:
    def test_canonical_pairs(self):
        failures = {
            word: (stem(word), expected)
            for word, expected in CANONICAL.items()
            if stem(word) != expected
        }
        assert not failures, f"stemmer deviates on: {failures}"


class TestEdgeCases:
    def test_short_words_unchanged(self):
        assert stem("go") == "go"
        assert stem("a") == "a"

    def test_lowercases_input(self):
        assert stem("Matching") == stem("matching")

    def test_non_alpha_passthrough(self):
        assert stem("abc123") == "abc123"

    def test_stem_all_preserves_order(self):
        assert stem_all(["ponies", "cats"]) == ["poni", "cat"]


class TestProperties:
    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=15))
    def test_idempotent_on_most_words(self, word):
        # Porter is not strictly idempotent for every string, but double
        # stemming must never crash and must keep producing str output.
        once = stem(word)
        twice = stem(once)
        assert isinstance(twice, str)
        assert twice

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3, max_size=15))
    def test_never_longer_than_input(self, word):
        assert len(stem(word)) <= len(word)

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=15))
    def test_deterministic(self, word):
        assert stem(word) == stem(word)
