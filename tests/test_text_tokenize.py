"""Tokenizer behaviour across naming conventions."""

import pytest

from repro.text.tokenize import char_ngrams, ngrams, split_identifier, tokenize


class TestSplitIdentifier:
    def test_upper_snake(self):
        assert split_identifier("DATETIME_FIRST_INFO") == ["datetime", "first", "info"]

    def test_camel_case(self):
        assert split_identifier("personBirthDate") == ["person", "birth", "date"]

    def test_pascal_case(self):
        assert split_identifier("VehicleRegistrationNumber") == [
            "vehicle",
            "registration",
            "number",
        ]

    def test_acronym_run_kept_whole(self):
        assert split_identifier("XMLSchema") == ["xml", "schema"]

    def test_acronym_at_end(self):
        assert split_identifier("personID") == ["person", "id"]

    def test_digits_split_from_letters(self):
        assert split_identifier("DATE_BEGIN_156") == ["date", "begin", "156"]

    def test_digits_inside_word(self):
        assert split_identifier("addr2line") == ["addr", "2", "line"]

    def test_mixed_separators(self):
        assert split_identifier("a-b.c/d e") == ["a", "b", "c", "d", "e"]

    def test_empty_string(self):
        assert split_identifier("") == []

    def test_only_separators(self):
        assert split_identifier("___--..") == []

    def test_parenthesised(self):
        assert split_identifier("qty(total)") == ["qty", "total"]


class TestTokenize:
    def test_drop_digits(self):
        assert tokenize("DATE_BEGIN_156", drop_digits=True) == ["date", "begin"]

    def test_keep_digits_by_default(self):
        assert tokenize("DATE_BEGIN_156") == ["date", "begin", "156"]

    def test_min_length(self):
        assert tokenize("a of date", min_length=2) == ["of", "date"]

    def test_prose(self):
        assert tokenize("The date the event began") == [
            "the", "date", "the", "event", "began",
        ]


class TestNgrams:
    def test_word_bigrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_n_larger_than_sequence(self):
        assert list(ngrams(["a"], 2)) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))


class TestCharNgrams:
    def test_padded_trigrams(self):
        assert char_ngrams("abc", 3) == ["##a", "#ab", "abc", "bc#", "c##"]

    def test_unpadded(self):
        assert char_ngrams("abcd", 3, pad=False) == ["abc", "bcd"]

    def test_short_string_unpadded(self):
        assert char_ngrams("ab", 3, pad=False) == ["ab"]

    def test_empty_string(self):
        assert char_ngrams("", 3, pad=False) == []

    def test_lowercases(self):
        assert char_ngrams("AB", 2, pad=False) == ["ab"]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            char_ngrams("abc", 0)
