"""Guard: every elapsed-time measurement uses the monotonic clock.

``time.time()`` is wall-clock and can jump backwards under NTP adjustment,
turning bench deltas negative; ``time.perf_counter()`` is monotonic.  An
audit of ``match/incremental.py``, ``batch/runner.py`` and
``service/service.py`` (plus the rest of ``src/``) found every timing
site already on ``perf_counter``; this test keeps it that way.

The guard is scoped to *measurement* sites.  A wall-clock read that is
reported as an absolute timestamp and never subtracted (e.g. the
``started_at_unix`` field on ``/healthz``, there so operators can line
the server up against external logs) is allowed, but must say so on the
same line with a ``# wall clock on purpose`` marker -- the audit skips
exactly those lines, so every exemption is visible in the diff.
"""

import pathlib
import re

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

_WALL_CLOCK = re.compile(r"\btime\.time\(\)")
_EXEMPT = "# wall clock on purpose"


def test_no_wall_clock_timing_in_src():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for line_number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if _WALL_CLOCK.search(line) and _EXEMPT not in line:
                offenders.append(f"{path.relative_to(SRC)}:{line_number}: {line.strip()}")
    assert not offenders, (
        "use time.perf_counter() (monotonic) for elapsed-time measurement, "
        "not time.time():\n" + "\n".join(offenders)
    )
