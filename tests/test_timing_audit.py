"""Guard: every elapsed-time measurement uses the monotonic clock.

``time.time()`` is wall-clock and can jump backwards under NTP adjustment,
turning bench deltas negative; ``time.perf_counter()`` is monotonic.  An
audit of ``match/incremental.py``, ``batch/runner.py`` and
``service/service.py`` (plus the rest of ``src/``) found every timing
site already on ``perf_counter``; this test keeps it that way.
"""

import pathlib
import re

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

_WALL_CLOCK = re.compile(r"\btime\.time\(\)")


def test_no_wall_clock_timing_in_src():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for line_number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if _WALL_CLOCK.search(line):
                offenders.append(f"{path.relative_to(SRC)}:{line_number}: {line.strip()}")
    assert not offenders, (
        "use time.perf_counter() (monotonic) for elapsed-time measurement, "
        "not time.time():\n" + "\n".join(offenders)
    )
