"""Line-drawing clutter model (with brute-force cross-check) and ASCII views."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters import FilterChain, SubtreeFilter
from repro.match import Correspondence, HarmonyMatchEngine
from repro.viz import (
    LineDrawing,
    Viewport,
    clutter_for_result,
    compare_views,
    count_crossings,
    render_match_view,
    render_tree,
)


def brute_force_crossings(positions):
    count = 0
    for (a1, b1), (a2, b2) in itertools.combinations(positions, 2):
        if (a1 - a2) * (b1 - b2) < 0:
            count += 1
    return count


class TestCountCrossings:
    def test_parallel_lines_no_crossing(self):
        assert count_crossings([(0, 0), (1, 1), (2, 2)]) == 0

    def test_full_reversal(self):
        assert count_crossings([(0, 2), (1, 1), (2, 0)]) == 3

    def test_fan_out_not_crossing(self):
        assert count_crossings([(0, 0), (0, 1), (0, 2)]) == 0

    def test_fan_in_not_crossing(self):
        assert count_crossings([(0, 0), (1, 0), (2, 0)]) == 0

    def test_empty(self):
        assert count_crossings([]) == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)),
            max_size=40,
        )
    )
    @settings(max_examples=60)
    def test_matches_brute_force(self, positions):
        assert count_crossings(positions) == brute_force_crossings(positions)


class TestViewport:
    def test_validation(self):
        with pytest.raises(ValueError):
            Viewport(height=0)
        with pytest.raises(ValueError):
            Viewport(height=5, source_offset=-1)

    def test_window_logic(self):
        viewport = Viewport(height=3, source_offset=2, target_offset=0)
        assert viewport.shows_source(2)
        assert viewport.shows_source(4)
        assert not viewport.shows_source(5)
        assert viewport.shows_target(0)
        assert not viewport.shows_target(3)


class TestLineDrawing:
    def _links(self, sample_relational, sample_xml):
        return [
            Correspondence("person_master.birth_dt", "individual.dateofbirth", 0.8),
            Correspondence("all_event_vitals.event_id", "event.eventidentifier", 0.7),
            Correspondence("person_master.last_nm", "individual.familyname", 0.6),
        ]

    def test_positions_and_totals(self, sample_relational, sample_xml):
        drawing = LineDrawing(sample_relational, sample_xml)
        links = self._links(sample_relational, sample_xml)
        assert drawing.total_lines(links) == 3
        assert len(drawing.positions(links)) == 3

    def test_visible_vs_dangling(self, sample_relational, sample_xml):
        drawing = LineDrawing(sample_relational, sample_xml)
        links = self._links(sample_relational, sample_xml)
        # A small viewport at the top shows only the event-area rows.
        viewport = Viewport(height=5)
        visible = drawing.visible_lines(links, viewport)
        dangling = drawing.dangling_lines(links, viewport)
        assert len(visible) + dangling <= len(links)
        full = Viewport(height=100)
        assert len(drawing.visible_lines(links, full)) == 3
        assert drawing.dangling_lines(links, full) == 0

    def test_clutter_report_keys(self, sample_relational, sample_xml):
        drawing = LineDrawing(sample_relational, sample_xml)
        report = drawing.clutter(
            self._links(sample_relational, sample_xml), Viewport(height=100)
        )
        assert report["total_lines"] == 3
        assert report["offscreen_fraction"] == 0.0
        assert set(report) == {
            "total_lines", "visible_lines", "dangling_lines",
            "visible_crossings", "offscreen_fraction",
        }


class TestCompareViews:
    def test_filters_reduce_clutter(self, small_pair, small_pair_result):
        result = small_pair_result
        root_id = small_pair.source.schema.roots()[0].element_id
        views = compare_views(
            result, threshold=0.15, viewport=Viewport(height=30),
            subtree_root_id=root_id,
        )
        by_name = {view.name: view for view in views}
        unfiltered = by_name["unfiltered"]
        subtree = by_name["subtree filter"]
        both = by_name["subtree + confidence"]
        assert subtree.total_lines <= unfiltered.total_lines
        assert both.total_lines <= subtree.total_lines

    def test_clutter_for_result_with_chain(self, small_pair, small_pair_result):
        root_id = small_pair.source.schema.roots()[0].element_id
        state = clutter_for_result(
            small_pair_result,
            threshold=0.15,
            viewport=Viewport(height=30),
            chain=FilterChain(source_filters=[SubtreeFilter(root_id)]),
            name="test",
        )
        assert state.name == "test"
        assert "lines=" in state.as_row()


class TestAsciiRenderers:
    def test_render_tree(self, sample_relational):
        text = render_tree(sample_relational)
        assert "SA_sample" in text
        assert "ALL_EVENT_VITALS" in text
        assert "EVENT_ID" in text

    def test_render_tree_truncation(self, sample_relational):
        text = render_tree(sample_relational, max_elements=3)
        assert "more elements" in text

    def test_render_match_view(self, sample_relational, sample_xml):
        links = [
            Correspondence("person_master.birth_dt", "individual.dateofbirth", 0.8)
        ]
        text = render_match_view(sample_relational, sample_xml, links)
        assert "[1]" in text
        assert "1 match lines" in text
