"""The confidence model and vote mergers (with hypothesis bounds checks)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.voting import (
    AverageMerger,
    ConvictionWeightedMerger,
    MaxMerger,
    MinMerger,
    Vote,
    WeightedLinearMerger,
    confidence,
    confidence_array,
    merger_by_name,
)


class TestConfidence:
    def test_no_evidence_is_complete_uncertainty(self):
        assert confidence(1.0, 0.0) == 0.0
        assert confidence(0.0, 0.0) == 0.0

    def test_high_similarity_high_evidence_approaches_one(self):
        assert confidence(1.0, 100.0) > 0.99

    def test_low_similarity_high_evidence_approaches_minus_one(self):
        assert confidence(0.0, 100.0) < -0.99

    def test_half_similarity_always_zero(self):
        assert confidence(0.5, 50.0) == pytest.approx(0.0)

    def test_more_evidence_more_assertive(self):
        assert confidence(0.9, 10.0) > confidence(0.9, 1.0)
        assert confidence(0.1, 10.0) < confidence(0.1, 1.0)

    def test_invalid_similarity(self):
        with pytest.raises(ValueError):
            confidence(1.5, 1.0)

    def test_negative_evidence(self):
        with pytest.raises(ValueError):
            confidence(0.5, -1.0)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            confidence(0.5, 1.0, tau=0.0)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1e4),
    )
    def test_open_interval_bounds(self, similarity, evidence):
        # Mathematically the range is the open interval (-1, 1); float
        # saturation can round to exactly +/-1 at extreme evidence.
        value = confidence(similarity, evidence)
        assert -1.0 <= value <= 1.0

    def test_array_matches_scalar(self):
        similarity = np.array([[0.9, 0.1]])
        evidence = np.array([[5.0, 5.0]])
        array = confidence_array(similarity, evidence)
        assert array[0, 0] == pytest.approx(confidence(0.9, 5.0))
        assert array[0, 1] == pytest.approx(confidence(0.1, 5.0))

    def test_array_rejects_negative_evidence(self):
        with pytest.raises(ValueError):
            confidence_array(np.array([0.5]), np.array([-1.0]))


class TestVote:
    def test_valid(self):
        vote = Vote(voter="v", score=0.5, evidence=3.0)
        assert vote.conviction == 0.5

    def test_score_out_of_range(self):
        with pytest.raises(ValueError):
            Vote(voter="v", score=1.5)

    def test_negative_evidence(self):
        with pytest.raises(ValueError):
            Vote(voter="v", score=0.0, evidence=-1.0)


def _stack(*layers):
    return np.stack([np.array(layer, dtype=float) for layer in layers])


class TestMergers:
    def test_conviction_weighting_favors_confident_voter(self):
        stacked = _stack([[0.9]], [[0.05]])
        merged = ConvictionWeightedMerger().merge(stacked)
        assert merged[0, 0] > 0.8  # the 0.9 vote dominates

    def test_average_is_plain_mean(self):
        stacked = _stack([[0.9]], [[0.1]])
        assert AverageMerger().merge(stacked)[0, 0] == pytest.approx(0.5)

    def test_conviction_zero_when_all_votes_zero(self):
        stacked = _stack([[0.0]], [[0.0]])
        assert ConvictionWeightedMerger().merge(stacked)[0, 0] == 0.0

    def test_max_keeps_signed_extreme(self):
        stacked = _stack([[-0.8]], [[0.3]])
        assert MaxMerger().merge(stacked)[0, 0] == pytest.approx(-0.8)

    def test_min_merger(self):
        stacked = _stack([[-0.8]], [[0.3]])
        assert MinMerger().merge(stacked)[0, 0] == pytest.approx(-0.8)

    def test_weighted_linear(self):
        stacked = _stack([[1.0]], [[0.0]])
        merger = WeightedLinearMerger([3.0, 1.0])
        assert merger.merge(stacked)[0, 0] == pytest.approx(0.75)

    def test_weighted_linear_validates_weight_count(self):
        merger = WeightedLinearMerger([1.0])
        with pytest.raises(ValueError):
            merger.merge(_stack([[0.0]], [[0.0]]))

    def test_weighted_linear_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            WeightedLinearMerger([])
        with pytest.raises(ValueError):
            WeightedLinearMerger([-1.0])
        with pytest.raises(ValueError):
            WeightedLinearMerger([0.0, 0.0])

    def test_rejects_empty_stack(self):
        with pytest.raises(ValueError):
            AverageMerger().merge(np.zeros((0, 2, 2)))

    def test_rejects_wrong_dimensions(self):
        with pytest.raises(ValueError):
            AverageMerger().merge(np.zeros((2, 2)))

    def test_registry(self):
        assert merger_by_name("average").name == "average"
        assert merger_by_name("conviction_weighted").name == "conviction_weighted"
        with pytest.raises(ValueError):
            merger_by_name("nonsense")

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.randoms(use_true_random=False),
    )
    def test_all_mergers_stay_in_bounds(self, n_voters, rows, cols, rng):
        stacked = np.array(
            [
                [[rng.uniform(-1, 1) for _ in range(cols)] for _ in range(rows)]
                for _ in range(n_voters)
            ]
        )
        for merger in (
            ConvictionWeightedMerger(),
            AverageMerger(),
            MaxMerger(),
            MinMerger(),
        ):
            merged = merger.merge(stacked)
            assert merged.shape == (rows, cols)
            assert merged.min() >= -1.0 - 1e-9
            assert merged.max() <= 1.0 + 1e-9

    def test_unanimous_vote_preserved(self):
        stacked = _stack([[0.7]], [[0.7]], [[0.7]])
        for merger in (ConvictionWeightedMerger(), AverageMerger(), MaxMerger()):
            assert merger.merge(stacked)[0, 0] == pytest.approx(0.7)
