"""Sessions, oracles, effort model, team planning."""

import pytest

from repro.match import MatchStatus
from repro.workflow import (
    EffortModel,
    GroundTruthOracle,
    MatchingSession,
    NoisyOracle,
    TaskState,
    calibrate,
    plan_team,
)


@pytest.fixture(scope="module")
def session_report(small_pair):
    source_summary = small_pair.source.truth_summary()
    target_summary = small_pair.target.truth_summary()
    session = MatchingSession(
        small_pair.source.schema,
        small_pair.target.schema,
        source_summary,
        oracle=GroundTruthOracle(small_pair.truth_pairs),
    )
    report = session.run_all(target_summary=target_summary)
    return session, report


class TestOracles:
    def test_ground_truth_oracle(self, small_pair):
        oracle = GroundTruthOracle(small_pair.truth_pairs)
        true_pair = next(iter(small_pair.truth_pairs))
        assert oracle.judge(*true_pair)
        assert not oracle.judge("nope", "also nope")

    def test_noisy_oracle_deterministic(self, small_pair):
        oracle = NoisyOracle(small_pair.truth_pairs, seed=7)
        pair = next(iter(small_pair.truth_pairs))
        assert oracle.judge(*pair) == oracle.judge(*pair)

    def test_noisy_oracle_error_rates_roughly_honoured(self, small_pair):
        oracle = NoisyOracle(
            small_pair.truth_pairs, false_negative_rate=0.5, seed=3
        )
        judged_true = sum(
            oracle.judge(a, b) for a, b in small_pair.truth_pairs
        )
        fraction = judged_true / len(small_pair.truth_pairs)
        assert 0.25 < fraction < 0.75

    def test_noisy_oracle_validation(self, small_pair):
        with pytest.raises(ValueError):
            NoisyOracle(small_pair.truth_pairs, false_negative_rate=1.5)


class TestSession:
    def test_runs_one_increment_per_concept(self, session_report, small_pair):
        session, report = session_report
        assert len(report.runs) == len(small_pair.source.truth_summary())

    def test_concept_queue_big_first(self, session_report):
        session, _ = session_report
        queue = session.concept_queue()
        sizes = session.summary.concept_sizes()
        assert [sizes[c] for c in queue] == sorted(
            (sizes[c] for c in queue), reverse=True
        )

    def test_validated_pairs_are_truth(self, session_report, small_pair):
        session, report = session_report
        accepted = session.accepted_pairs()
        assert accepted  # the engine surfaced real candidates
        assert accepted <= small_pair.truth_pairs  # perfect oracle accepts truth only

    def test_rejections_recorded(self, session_report):
        _, report = session_report
        assert report.validated.rejected  # some candidates were spurious

    def test_pairs_per_increment_consistent(self, session_report, small_pair):
        _, report = session_report
        target_size = len(small_pair.target.schema)
        for run in report.runs:
            assert run.n_pairs_considered == run.n_subtree_elements * target_size

    def test_concept_matches_found(self, session_report):
        _, report = session_report
        assert report.concept_matches

    def test_summary_must_match_schema(self, small_pair):
        wrong_summary = small_pair.target.truth_summary()
        with pytest.raises(ValueError):
            MatchingSession(
                small_pair.source.schema,
                small_pair.target.schema,
                wrong_summary,
                oracle=GroundTruthOracle(set()),
            )

    def test_matched_target_ids_subset_of_truth(self, session_report, small_pair):
        session, _ = session_report
        assert session.matched_target_ids() <= small_pair.matched_target_ids


class TestEffortModel:
    def test_session_estimate_components(self, session_report):
        _, report = session_report
        model = EffortModel()
        estimate = model.session_estimate(report, n_concepts_labelled=30)
        assert estimate.inspection_seconds == (
            report.total_candidates_inspected * model.seconds_per_candidate
        )
        assert estimate.total_seconds > 0
        assert estimate.person_days == pytest.approx(
            estimate.total_seconds / (8 * 3600)
        )

    def test_wall_days_divides_by_team(self, session_report):
        _, report = session_report
        estimate = EffortModel().session_estimate(report, 30)
        assert estimate.wall_days(2) == pytest.approx(estimate.person_days / 2)
        with pytest.raises(ValueError):
            estimate.wall_days(0)

    def test_naive_estimate_has_single_overhead(self):
        model = EffortModel()
        estimate = model.naive_estimate(10_000)
        assert estimate.increment_overhead_seconds == model.seconds_per_increment
        assert estimate.summarization_seconds == 0.0

    def test_calibration_hits_anchor(self, session_report):
        _, report = session_report
        model = calibrate(EffortModel(), report, n_concepts_labelled=30,
                          anchor_person_days=6.0)
        estimate = model.session_estimate(report, n_concepts_labelled=30)
        assert estimate.person_days == pytest.approx(6.0, rel=1e-6)

    def test_model_validation(self):
        with pytest.raises(ValueError):
            EffortModel(seconds_per_candidate=0)


class TestTeamPlanning:
    def test_plan_covers_all_concepts(self, small_pair):
        summary = small_pair.source.truth_summary()
        plan = plan_team(summary, len(small_pair.target.schema), ["ann", "bob"])
        planned = {task.concept_id for task in plan.all_tasks()}
        assert planned == {concept.concept_id for concept in summary.concepts}

    def test_balance_reasonable(self, small_pair):
        summary = small_pair.source.truth_summary()
        plan = plan_team(summary, len(small_pair.target.schema), ["ann", "bob"])
        assert plan.balance > 0.5

    def test_makespan_positive_and_bounded(self, small_pair):
        summary = small_pair.source.truth_summary()
        solo = plan_team(summary, len(small_pair.target.schema), ["ann"])
        duo = plan_team(summary, len(small_pair.target.schema), ["ann", "bob"])
        assert 0 < duo.makespan_seconds <= solo.makespan_seconds

    def test_task_lifecycle(self, small_pair):
        summary = small_pair.source.truth_summary()
        plan = plan_team(summary, 100, ["ann"])
        queue = plan.queue_of("ann")
        task = queue.next_task()
        assert task.state is TaskState.PENDING
        task.start()
        assert task.state is TaskState.IN_PROGRESS
        assert queue.next_task() is not task  # next pending differs
        task.finish()
        assert task.state is TaskState.DONE
        with pytest.raises(ValueError):
            task.finish()

    def test_plan_validation(self, small_pair):
        summary = small_pair.source.truth_summary()
        with pytest.raises(ValueError):
            plan_team(summary, 100, [])
        with pytest.raises(ValueError):
            plan_team(summary, 100, ["a"], expected_candidate_rate=2.0)

    def test_unknown_member(self, small_pair):
        summary = small_pair.source.truth_summary()
        plan = plan_team(summary, 100, ["ann"])
        with pytest.raises(KeyError):
            plan.queue_of("zoe")
